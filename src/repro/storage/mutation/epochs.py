"""Epoch manifests, the ``CURRENT`` pointer, and refcounted pins.

An epoch is one published, immutable view of a mutable index: a base
generation directory (a normal sharded index, possibly absent when the
index started empty) plus a committed prefix of the generation's WAL.
Publishing epoch *N* is a two-file protocol, each file written with the
classic tmp → fsync → rename → dir-fsync dance::

    manifest.<N>.json   what the epoch consists of
    CURRENT             the single source of truth for "latest epoch"

The rename of ``CURRENT`` is the linearisation point: a crash anywhere
before it leaves the old epoch current (the orphaned manifest is inert
garbage), a crash anywhere after it leaves the new epoch current.
Every step is instrumented with a :class:`~repro.exec.faults.CrashPlan`
commit point so the recovery tests can kill the writer at each
boundary.

Readers *pin* the epoch they start on; the writer's garbage collector
only deletes manifests, WAL files and generation directories that no
current-or-pinned epoch references.
"""

from __future__ import annotations

import os
import re
import shutil
import threading
from typing import Optional

from ...errors import WALError
from ..shards import format as fmt

__all__ = ["EpochManager", "CURRENT_NAME", "MUTABLE_FORMAT",
           "MUTABLE_FORMAT_VERSION", "epoch_manifest_name",
           "generation_dir_name", "read_current", "load_manifest"]

CURRENT_NAME = "CURRENT"
MUTABLE_FORMAT = "repro-mutable-index"
MUTABLE_FORMAT_VERSION = 1

_MANIFEST_RE = re.compile(r"^manifest\.(\d{6,})\.json$")
_GENERATION_RE = re.compile(r"^gen-(\d{4,})$")
_WAL_RE = re.compile(r"^wal-(\d{6,})\.log$")


def epoch_manifest_name(epoch: int) -> str:
    return f"manifest.{epoch:06d}.json"


def generation_dir_name(generation: int) -> str:
    return f"gen-{generation:04d}"


def read_current(path: str) -> Optional[int]:
    """The epoch named by ``CURRENT``, or ``None`` when absent."""
    try:
        with open(os.path.join(path, CURRENT_NAME), "rb") as fh:
            name = fh.read().decode("utf-8", "replace").strip()
    except FileNotFoundError:
        return None
    match = _MANIFEST_RE.match(name)
    if match is None:
        raise WALError(
            f"CURRENT points at {name!r}, not an epoch manifest",
            reason="bad-epoch", path=os.path.join(path, CURRENT_NAME))
    return int(match.group(1))


def load_manifest(path: str, epoch: int) -> dict:
    """Load and validate one epoch manifest."""
    target = os.path.join(path, epoch_manifest_name(epoch))
    try:
        with open(target, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        raise WALError(f"epoch {epoch} manifest missing",
                       reason="missing", path=target) from None
    try:
        import json
        manifest = json.loads(data)
    except ValueError:
        raise WALError(f"epoch {epoch} manifest is not valid JSON",
                       reason="corrupt", path=target) from None
    if manifest.get("format") != MUTABLE_FORMAT:
        raise WALError(
            f"epoch {epoch} manifest has format "
            f"{manifest.get('format')!r}", reason="corrupt", path=target)
    if manifest.get("epoch") != epoch:
        raise WALError(
            f"manifest {target} claims epoch {manifest.get('epoch')!r}",
            reason="bad-epoch", path=target)
    return manifest


class EpochManager:
    """Publish epochs atomically; track pins; collect garbage.

    One instance belongs to one :class:`MutableIndex` (the single
    writer).  Pin bookkeeping is thread-safe — readers in the serving
    process pin/unpin concurrently with commits.
    """

    def __init__(self, path: str, *, faults=None) -> None:
        self.path = path
        self._faults = faults
        self.current_epoch = read_current(path)
        self._pins: dict[int, int] = {}
        self._lock = threading.Lock()

    # -- commit protocol ------------------------------------------------

    def _check(self, point: str) -> None:
        if self._faults is not None:
            self._faults.check(point)

    def _fsync_dir(self) -> None:
        fd = os.open(self.path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _publish_file(self, name: str, data: bytes, prefix: str) -> None:
        """tmp-write → fsync → rename → dir-fsync, with crash points."""
        target = os.path.join(self.path, name)
        tmp = target + ".tmp"
        payload = data
        if self._faults is not None:
            self._faults.check(f"before-{prefix}-write")
            payload = self._faults.torn_write(f"{prefix}-write", data)
        with open(tmp, "wb") as fh:
            fh.write(payload)
            self._check(f"{prefix}-write")
            fh.flush()
            self._check(f"before-{prefix}-fsync")
            os.fsync(fh.fileno())
            self._check(f"{prefix}-fsync")
        self._check(f"before-{prefix}-rename")
        os.replace(tmp, target)
        self._check(f"{prefix}-rename")
        self._check(f"before-{prefix}-dir-fsync")
        self._fsync_dir()
        self._check(f"{prefix}-dir-fsync")

    def publish(self, manifest: dict) -> int:
        """Publish ``manifest`` as the new current epoch.

        The caller has already made the epoch's content durable (WAL
        fsync / generation build); this method only runs the two-file
        pointer flip.  Raises :class:`~repro.exec.faults.CommitCrash`
        mid-protocol under an armed crash plan — on-disk state is then
        exactly what a power cut at that point leaves.
        """
        epoch = int(manifest["epoch"])
        if self.current_epoch is not None and epoch <= self.current_epoch:
            raise WALError(
                f"cannot publish epoch {epoch}: current epoch is "
                f"{self.current_epoch}", reason="bad-epoch", path=self.path)
        name = epoch_manifest_name(epoch)
        self._publish_file(name, fmt.dump_json(manifest) + b"\n",
                           "manifest")
        self._publish_file(CURRENT_NAME, (name + "\n").encode("utf-8"),
                           "current")
        self.current_epoch = epoch
        return epoch

    # -- pins -----------------------------------------------------------

    def pin(self, epoch: int) -> int:
        with self._lock:
            self._pins[epoch] = self._pins.get(epoch, 0) + 1
            return self._pins[epoch]

    def unpin(self, epoch: int) -> int:
        with self._lock:
            count = self._pins.get(epoch, 0) - 1
            if count <= 0:
                self._pins.pop(epoch, None)
                return 0
            self._pins[epoch] = count
            return count

    def pinned_epochs(self) -> dict[int, int]:
        with self._lock:
            return dict(self._pins)

    def live_epochs(self) -> set[int]:
        """Epochs that must survive GC: current plus every pinned one."""
        live = set(self.pinned_epochs())
        if self.current_epoch is not None:
            live.add(self.current_epoch)
        return live

    # -- garbage collection --------------------------------------------

    def collect(self) -> dict:
        """Delete files no live epoch references (writer-only).

        Returns ``{"manifests": n, "wals": n, "generations": n}``.
        Stray ``*.tmp`` files from crashed commits are swept too.
        """
        live = self.live_epochs()
        referenced: set[str] = set()
        for epoch in sorted(live):
            try:
                manifest = load_manifest(self.path, epoch)
            except WALError:
                # A pinned epoch whose manifest is already gone can only
                # mean an earlier GC raced a pin; keep everything else.
                continue
            if manifest.get("base"):
                referenced.add(manifest["base"])
            if manifest.get("wal"):
                referenced.add(manifest["wal"])
        removed = {"manifests": 0, "wals": 0, "generations": 0}
        for entry in sorted(os.listdir(self.path)):
            full = os.path.join(self.path, entry)
            match = _MANIFEST_RE.match(entry)
            if match is not None:
                if int(match.group(1)) not in live:
                    os.unlink(full)
                    removed["manifests"] += 1
                continue
            if _WAL_RE.match(entry) and entry not in referenced:
                os.unlink(full)
                removed["wals"] += 1
                continue
            if _GENERATION_RE.match(entry) and entry not in referenced \
                    and os.path.isdir(full):
                shutil.rmtree(full, ignore_errors=True)
                removed["generations"] += 1
                continue
            if entry.endswith(".tmp") and os.path.isfile(full):
                os.unlink(full)
        return removed

    def __repr__(self) -> str:
        return (f"EpochManager(path={self.path!r}, "
                f"current={self.current_epoch}, "
                f"pinned={len(self.pinned_epochs())})")
