"""Relational schema for shredded document trees (paper ref [13]).

Pradhan's companion paper (WISE'04) implements the tree algebra on a
conventional relational database.  We reproduce that substrate on
sqlite3 with the classic node-table + keyword-table shredding:

``nodes(id, parent, depth, size, post, tag, text, attrs)``
    One row per tree node; ``id`` is the preorder rank, so the interval
    encoding ``id <= x < id + size`` answers descendant tests directly
    in SQL.  ``attrs`` is the node's XML attributes as one JSON object
    whose key order is the document order (schema v2; v1 databases
    without the column still load, with empty attributes).
``keywords(word, node)``
    The inverted keyword relation; ``σ_{keyword=k}`` is a single
    indexed lookup.
``documents(key, value)``
    Small metadata table (document name, node count, schema version).
"""

from __future__ import annotations

SCHEMA_VERSION = 2

CREATE_TABLES = """
CREATE TABLE IF NOT EXISTS documents (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS nodes (
    id     INTEGER PRIMARY KEY,
    parent INTEGER,
    depth  INTEGER NOT NULL,
    size   INTEGER NOT NULL,
    post   INTEGER NOT NULL,
    tag    TEXT    NOT NULL,
    text   TEXT    NOT NULL,
    attrs  TEXT    NOT NULL DEFAULT '{}',
    FOREIGN KEY (parent) REFERENCES nodes(id)
);

CREATE TABLE IF NOT EXISTS keywords (
    word TEXT    NOT NULL,
    node INTEGER NOT NULL,
    PRIMARY KEY (word, node),
    FOREIGN KEY (node) REFERENCES nodes(id)
) WITHOUT ROWID;

CREATE INDEX IF NOT EXISTS idx_nodes_parent ON nodes(parent);
CREATE INDEX IF NOT EXISTS idx_keywords_node ON keywords(node);
"""

DROP_TABLES = """
DROP TABLE IF EXISTS keywords;
DROP TABLE IF EXISTS nodes;
DROP TABLE IF EXISTS documents;
"""
