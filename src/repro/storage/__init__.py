"""Relational (sqlite3) storage substrate — paper ref [13]."""

from .engine import RelationalQueryEngine
from .multistore import CollectionStore
from .relational import RelationalStore
from .schema import CREATE_TABLES, DROP_TABLES, SCHEMA_VERSION
from .sqlalgebra import SqlAlgebra

__all__ = [
    "RelationalStore",
    "RelationalQueryEngine",
    "CollectionStore",
    "SqlAlgebra",
    "CREATE_TABLES",
    "DROP_TABLES",
    "SCHEMA_VERSION",
]
