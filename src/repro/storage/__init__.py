"""Storage substrates: relational (sqlite3, paper ref [13]) and the
persistent sharded mmap index (:mod:`repro.storage.shards`)."""

from .engine import RelationalQueryEngine
from .multistore import CollectionStore
from .relational import RelationalStore
from .schema import CREATE_TABLES, DROP_TABLES, SCHEMA_VERSION
from .sqlalgebra import SqlAlgebra

__all__ = [
    "RelationalStore",
    "RelationalQueryEngine",
    "CollectionStore",
    "SqlAlgebra",
    "CREATE_TABLES",
    "DROP_TABLES",
    "SCHEMA_VERSION",
    "ShardIndex",
    "ShardRouter",
    "build_index",
]


def __getattr__(name):
    # Shard-index entry points resolve lazily: the reader/writer pull
    # in mmap machinery (and the router pulls in repro.exec) that
    # relational-only users never touch.
    if name in ("ShardIndex", "ShardRouter", "build_index"):
        from . import shards
        return getattr(shards, name)
    raise AttributeError(name)
