"""Multi-document relational storage.

The paper's §7 claim — "can accommodate a very large collection of XML
documents [13]" — needs more than one shredded tree per database.
:class:`CollectionStore` extends the single-document schema with a
``docs`` dimension: every node/keyword row carries a ``doc`` id, and
keyword selection can run per document or collection-wide in one SQL
query (the physical counterpart of
:meth:`repro.collection.DocumentCollection.search`'s fan-out).
"""

from __future__ import annotations

import json
import sqlite3
from typing import Optional

from ..collection.collection import DocumentCollection
from ..errors import StorageError
from ..xmltree.document import Document

__all__ = ["CollectionStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS docs (
    doc   INTEGER PRIMARY KEY AUTOINCREMENT,
    name  TEXT NOT NULL UNIQUE,
    nodes INTEGER NOT NULL
);

CREATE TABLE IF NOT EXISTS nodes (
    doc    INTEGER NOT NULL REFERENCES docs(doc),
    id     INTEGER NOT NULL,
    parent INTEGER,
    depth  INTEGER NOT NULL,
    size   INTEGER NOT NULL,
    tag    TEXT    NOT NULL,
    text   TEXT    NOT NULL,
    attrs  TEXT    NOT NULL DEFAULT '{}',
    PRIMARY KEY (doc, id)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS keywords (
    word TEXT    NOT NULL,
    doc  INTEGER NOT NULL,
    node INTEGER NOT NULL,
    PRIMARY KEY (word, doc, node)
) WITHOUT ROWID;
"""


class CollectionStore:
    """A sqlite3 database holding many shredded documents.

    Usable as a context manager, like
    :class:`~repro.storage.relational.RelationalStore`.
    """

    def __init__(self, database: str = ":memory:") -> None:
        try:
            self._conn = sqlite3.connect(database)
        except sqlite3.Error as exc:  # pragma: no cover - env specific
            raise StorageError(f"cannot open database {database!r}: "
                               f"{exc}") from exc
        self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "CollectionStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def add(self, document: Document,
            name: Optional[str] = None) -> int:
        """Shred one document; returns its ``doc`` id.

        Raises
        ------
        StorageError
            If a document of the same name is already stored.
        """
        key = name if name is not None else document.name
        conn = self._conn
        try:
            with conn:
                cursor = conn.execute(
                    "INSERT INTO docs(name, nodes) VALUES (?, ?)",
                    (key, document.size))
                doc_id = cursor.lastrowid
                labels = document.labels
                conn.executemany(
                    "INSERT INTO nodes(doc, id, parent, depth, size, "
                    "tag, text, attrs) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    ((doc_id, nid, document.parent(nid),
                      labels.depth[nid], labels.size[nid],
                      document.tag(nid), document.text(nid),
                      json.dumps(dict(document.attributes(nid)),
                                 ensure_ascii=False))
                     for nid in document.node_ids()))
                conn.executemany(
                    "INSERT INTO keywords(word, doc, node) "
                    "VALUES (?, ?, ?)",
                    ((word, doc_id, nid)
                     for nid in document.node_ids()
                     for word in document.keywords(nid)))
        except sqlite3.IntegrityError as exc:
            raise StorageError(f"document named {key!r} is already "
                               "stored") from exc
        return doc_id

    def add_collection(self, collection: DocumentCollection) -> list[int]:
        """Shred every document of a collection; returns their ids."""
        return [self.add(collection.document(name), name=name)
                for name in collection.names()]

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def names(self) -> list[str]:
        """Stored document names, in insertion order."""
        rows = self._conn.execute(
            "SELECT name FROM docs ORDER BY doc")
        return [name for (name,) in rows]

    def __len__(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM docs"
                                      ).fetchone()
        return count

    def doc_id(self, name: str) -> int:
        """The ``doc`` id of a stored document name."""
        row = self._conn.execute(
            "SELECT doc FROM docs WHERE name = ?", (name,)).fetchone()
        if row is None:
            raise StorageError(f"no document named {name!r} stored")
        return row[0]

    def load(self, name: str) -> Document:
        """Reconstruct one stored document."""
        doc_id = self.doc_id(name)
        conn = self._conn
        try:
            rows = conn.execute(
                "SELECT id, parent, tag, text, attrs FROM nodes "
                "WHERE doc = ? ORDER BY id", (doc_id,)).fetchall()
        except sqlite3.OperationalError:
            # Pre-attrs database: load with empty attributes.
            rows = [(nid, parent, tag, text, "{}")
                    for nid, parent, tag, text in conn.execute(
                        "SELECT id, parent, tag, text FROM nodes "
                        "WHERE doc = ? ORDER BY id", (doc_id,))]
        n = len(rows)
        tags = [""] * n
        texts = [""] * n
        attrs: list[dict] = [{} for _ in range(n)]
        parents: list[Optional[int]] = [None] * n
        children: list[list[int]] = [[] for _ in range(n)]
        for nid, parent, tag, text, attr_json in rows:
            tags[nid] = tag
            texts[nid] = text
            attrs[nid] = json.loads(attr_json)
            parents[nid] = parent
            if parent is not None:
                children[parent].append(nid)
        keyword_sets: list[set[str]] = [set() for _ in range(n)]
        for word, nid in conn.execute(
                "SELECT word, node FROM keywords WHERE doc = ?",
                (doc_id,)):
            keyword_sets[nid].add(word)
        return Document(tags, texts, parents, children,
                        [frozenset(kws) for kws in keyword_sets],
                        attrs=attrs, name=name)

    def load_collection(self) -> DocumentCollection:
        """Reconstruct every stored document as a collection."""
        collection = DocumentCollection(name="stored")
        for name in self.names():
            collection.add(self.load(name), name=name)
        return collection

    # ------------------------------------------------------------------
    # Collection-wide SQL
    # ------------------------------------------------------------------

    def keyword_nodes(self, word: str,
                      name: Optional[str] = None
                      ) -> list[tuple[str, int]]:
        """``(document name, node id)`` pairs containing ``word``.

        With ``name`` given, restricted to that document; otherwise one
        query spans the whole collection.
        """
        needle = word.casefold()
        if name is not None:
            rows = self._conn.execute(
                "SELECT d.name, k.node FROM keywords k "
                "JOIN docs d ON d.doc = k.doc "
                "WHERE k.word = ? AND d.name = ? ORDER BY k.node",
                (needle, name))
        else:
            rows = self._conn.execute(
                "SELECT d.name, k.node FROM keywords k "
                "JOIN docs d ON d.doc = k.doc "
                "WHERE k.word = ? ORDER BY d.doc, k.node", (needle,))
        return [(doc_name, nid) for doc_name, nid in rows]

    def document_frequency(self, word: str) -> int:
        """Number of stored documents containing ``word``."""
        (count,) = self._conn.execute(
            "SELECT COUNT(DISTINCT doc) FROM keywords WHERE word = ?",
            (word.casefold(),)).fetchone()
        return count
