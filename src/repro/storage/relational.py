"""Shred documents into sqlite3 and load them back (paper ref [13]).

:class:`RelationalStore` owns one sqlite3 database holding one shredded
document.  It offers:

* :meth:`RelationalStore.save` / :meth:`RelationalStore.load` — full
  round-trips between :class:`~repro.xmltree.document.Document` and the
  relational schema;
* SQL-side primitives used by the relational query engine:
  keyword selection, interval-encoded descendant tests, and
  recursive-CTE root paths (the relational realisation of the
  path-climbing inside fragment join).

Connections use ``sqlite3`` from the standard library; pass
``":memory:"`` (the default) for an in-memory database or a path for a
persistent one.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Iterable, Optional

from ..errors import StorageError
from ..xmltree.document import Document
from . import schema

__all__ = ["RelationalStore"]


class RelationalStore:
    """A sqlite3-backed store for one shredded document.

    Usable as a context manager::

        with RelationalStore() as store:
            store.save(doc)
            nodes = store.keyword_nodes("optimization")
    """

    def __init__(self, database: str = ":memory:") -> None:
        try:
            self._conn = sqlite3.connect(database)
        except sqlite3.Error as exc:  # pragma: no cover - env specific
            raise StorageError(f"cannot open database {database!r}: "
                               f"{exc}") from exc
        self._conn.executescript(schema.CREATE_TABLES)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "RelationalStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Shredding and loading
    # ------------------------------------------------------------------

    def save(self, document: Document) -> None:
        """Shred ``document`` into the relational tables (replacing any
        previously stored document)."""
        conn = self._conn
        with conn:
            conn.executescript(schema.DROP_TABLES)
            conn.executescript(schema.CREATE_TABLES)
            conn.executemany(
                "INSERT INTO documents(key, value) VALUES (?, ?)",
                [("name", document.name),
                 ("nodes", str(document.size)),
                 ("schema_version", str(schema.SCHEMA_VERSION))])
            labels = document.labels
            # Attributes travel as one JSON object per node;
            # ensure_ascii=False keeps unicode values byte-exact and
            # json preserves the document's attribute order.
            conn.executemany(
                "INSERT INTO nodes(id, parent, depth, size, post, tag, "
                "text, attrs) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                ((nid, document.parent(nid), labels.depth[nid],
                  labels.size[nid], labels.post[nid], document.tag(nid),
                  document.text(nid),
                  json.dumps(dict(document.attributes(nid)),
                             ensure_ascii=False))
                 for nid in document.node_ids()))
            conn.executemany(
                "INSERT INTO keywords(word, node) VALUES (?, ?)",
                ((word, nid) for nid in document.node_ids()
                 for word in document.keywords(nid)))

    def load(self) -> Document:
        """Reconstruct the stored document.

        Raises
        ------
        StorageError
            If no document has been stored.
        """
        conn = self._conn
        meta = dict(conn.execute("SELECT key, value FROM documents"))
        if "nodes" not in meta:
            raise StorageError("no document stored in this database")
        try:
            rows = conn.execute(
                "SELECT id, parent, tag, text, attrs FROM nodes "
                "ORDER BY id").fetchall()
        except sqlite3.OperationalError:
            # Schema v1 database (no attrs column): still loadable,
            # with empty attributes on every node.
            rows = [(nid, parent, tag, text, "{}")
                    for nid, parent, tag, text in conn.execute(
                        "SELECT id, parent, tag, text FROM nodes "
                        "ORDER BY id")]
        n = len(rows)
        if n != int(meta["nodes"]):
            raise StorageError(
                f"corrupt store: metadata says {meta['nodes']} nodes, "
                f"table has {n}")
        tags = [""] * n
        texts = [""] * n
        attrs: list[dict] = [{} for _ in range(n)]
        parents: list[Optional[int]] = [None] * n
        children: list[list[int]] = [[] for _ in range(n)]
        for nid, parent, tag, text, attr_json in rows:
            tags[nid] = tag
            texts[nid] = text
            attrs[nid] = json.loads(attr_json)
            parents[nid] = parent
            if parent is not None:
                children[parent].append(nid)
        keyword_sets: list[set[str]] = [set() for _ in range(n)]
        for word, nid in conn.execute("SELECT word, node FROM keywords"):
            keyword_sets[nid].add(word)
        return Document(tags, texts, parents, children,
                        [frozenset(kws) for kws in keyword_sets],
                        attrs=attrs,
                        name=meta.get("name", "document"))

    # ------------------------------------------------------------------
    # SQL-side primitives
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of stored nodes."""
        (count,) = self._conn.execute("SELECT COUNT(*) FROM nodes"
                                      ).fetchone()
        return count

    def keyword_nodes(self, word: str) -> list[int]:
        """``σ_{keyword=word}`` evaluated in SQL; sorted node ids."""
        rows = self._conn.execute(
            "SELECT node FROM keywords WHERE word = ? ORDER BY node",
            (word.casefold(),))
        return [nid for (nid,) in rows]

    def descendants_sql(self, node_id: int) -> list[int]:
        """Descendant ids of a node via the interval encoding, in SQL."""
        rows = self._conn.execute(
            "SELECT d.id FROM nodes d JOIN nodes a ON a.id = ? "
            "WHERE d.id > a.id AND d.id < a.id + a.size ORDER BY d.id",
            (node_id,))
        return [nid for (nid,) in rows]

    def root_path_sql(self, node_id: int) -> list[int]:
        """Ids on the path node → root via a recursive CTE.

        This is the relational counterpart of the path climbing inside
        fragment join.
        """
        rows = self._conn.execute(
            """
            WITH RECURSIVE path(id, parent) AS (
                SELECT id, parent FROM nodes WHERE id = ?
                UNION ALL
                SELECT n.id, n.parent FROM nodes n
                JOIN path p ON n.id = p.parent
            )
            SELECT id FROM path
            """,
            (node_id,))
        path = [nid for (nid,) in rows]
        if not path:
            raise StorageError(f"node {node_id} not stored")
        return path

    def spanning_nodes_sql(self, node_ids: Iterable[int]) -> frozenset[int]:
        """The minimal-connected-subtree node set, computed relationally.

        Union of root paths, truncated at the deepest common member —
        i.e. fragment join's spanning set via recursive CTEs only.
        """
        ids = list(node_ids)
        if not ids:
            raise StorageError("spanning_nodes_sql needs at least one node")
        paths = [self.root_path_sql(nid) for nid in ids]
        common = set(paths[0])
        for path in paths[1:]:
            common &= set(path)
        if not common:
            raise StorageError("nodes do not share a root; corrupt tree")
        # The LCA is the deepest common ancestor = the last common member
        # along any root path (paths list node → root).
        lca = next(nid for nid in paths[0] if nid in common)
        spanning: set[int] = set()
        for path in paths:
            for nid in path:
                spanning.add(nid)
                if nid == lca:
                    break
        return frozenset(spanning)
