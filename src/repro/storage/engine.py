"""Query evaluation on top of the relational store.

:class:`RelationalQueryEngine` realises the split Pradhan's ref [13]
describes: keyword *selection* runs as SQL against the shredded tables,
while the join-heavy algebra runs over the reconstructed tree.  Results
are guaranteed identical to pure in-memory evaluation (tested), so the
S4 bench can attribute any latency difference to the storage layer.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.algebra import JoinCache
from ..core.fragment import Fragment
from ..core.query import Query, QueryResult
from ..core.strategies import Strategy, evaluate
from ..obs import NOOP, Observability
from ..xmltree.document import Document
from .relational import RelationalStore

__all__ = ["RelationalQueryEngine"]


class RelationalQueryEngine:
    """Evaluate keyword queries against a shredded document.

    Parameters
    ----------
    store:
        A :class:`RelationalStore` with a saved document.
    cache:
        Optional join memo cache shared across queries.
    obs:
        Optional :class:`~repro.obs.Observability` handle; when enabled,
        SQL keyword selections get ``sql-scan`` spans and evaluations
        flow through the instrumented :func:`evaluate`.
    """

    def __init__(self, store: RelationalStore,
                 cache: Optional[JoinCache] = None,
                 obs: Optional[Observability] = None) -> None:
        self._store = store
        self._cache = cache
        self._document: Optional[Document] = None
        self._obs = obs if obs is not None else NOOP

    @property
    def document(self) -> Document:
        """The reconstructed document (loaded lazily, then cached)."""
        if self._document is None:
            self._document = self._store.load()
        return self._document

    def keyword_fragments(self, term: str) -> frozenset[Fragment]:
        """``σ_{keyword=term}`` via SQL, materialised as fragments."""
        doc = self.document
        with self._obs.span("sql-scan", term=term) as span:
            fragments = frozenset(
                Fragment(doc, (nid,), validate=False)
                for nid in self._store.keyword_nodes(term))
            span.set(rows=len(fragments))
        return fragments

    def evaluate(self, query: Query,
                 strategy: Strategy = Strategy.PUSHDOWN) -> QueryResult:
        """Evaluate ``query``; selection in SQL, joins in the algebra."""
        result = evaluate(self.document, query, strategy=strategy,
                          cache=self._cache,
                          keyword_source=self.keyword_fragments,
                          obs=self._obs)
        return replace(result, strategy=f"relational/{strategy.value}")
