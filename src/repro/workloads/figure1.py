"""Reconstruction of the paper's Figure 1 document.

Figure 1 shows an 82-node document-centric XML tree (nodes n0–n81) used
by the running example query ``{XQuery, optimization}``.  The paper
fully determines the parts of the topology and keyword placement the
example depends on:

* ``F1 = σ_{keyword=XQuery} = {⟨n17⟩, ⟨n18⟩}``
* ``F2 = σ_{keyword=optimization} = {⟨n16⟩, ⟨n17⟩, ⟨n81⟩}``
* ``n17 ⋈ n18 = ⟨n16, n17, n18⟩`` (target fragment: n16 parent of both)
* ``n17 ⋈ n81 = ⟨n0, n1, n14, n16, n17, n79, n80, n81⟩`` — so the root
  path of n17 is n17→n16→n14→n1→n0 and that of n81 is n81→n80→n79→n0.

Everything else (the contents of nodes n2–n13 and n19–n78) only has to
exist and *not* contain the two query keywords; we fill those ranges
with plausible article content.  Node ids below equal preorder ranks,
so ``doc.node(17)`` really is the paper's n17.
"""

from __future__ import annotations

from ..xmltree.builder import DocumentBuilder
from ..xmltree.document import Document

__all__ = ["build_figure1_document", "FIGURE1_QUERY_TERMS"]

#: The running example query of the paper.
FIGURE1_QUERY_TERMS = ("xquery", "optimization")

# Filler paragraph text for the unconstrained node ranges.  None of the
# words below tokenizes to "xquery" or "optimization".
_FILLER_SENTENCES = (
    "Tree structured documents are commonly stored as rooted trees.",
    "Logical components such as sections and paragraphs form nodes.",
    "Keyword search offers the most friendly interface to casual users.",
    "Structural relationships alone must guide answer construction.",
    "Document centric collections rarely conform to a rigid schema.",
    "Retrieval units should be self contained and informative.",
    "Answers that sprawl across unrelated parts overwhelm readers.",
    "Indexes over element content accelerate term lookups.",
    "Ranking heuristics complement strict database style filtering.",
    "Evaluation cost grows quickly with candidate enumeration.",
)


def _filler(i: int) -> str:
    return _FILLER_SENTENCES[i % len(_FILLER_SENTENCES)]


def build_figure1_document() -> Document:
    """Build the Figure 1 document; node ids match the paper's n0–n81."""
    b = DocumentBuilder(name="figure1")

    n0 = b.add_root("article", "Querying Tree Structured Documents")

    # --- n1: first section, subtree n1..n18 --------------------------
    n1 = b.add_child(n0, "section", "Background on query processing")
    b.add_child(n1, "title", "Background")                          # n2
    n3 = b.add_child(n1, "subsection", "Models of semistructured data")
    b.add_child(n3, "title", "Data models")                         # n4
    b.add_child(n3, "par", _filler(0))                              # n5
    b.add_child(n3, "par", _filler(1))                              # n6
    n7 = b.add_child(n3, "subsubsection", "Ordered tree encodings")
    b.add_child(n7, "par", _filler(2))                              # n8
    b.add_child(n7, "par", _filler(3))                              # n9
    n10 = b.add_child(n3, "subsubsection", "Labelling schemes")
    b.add_child(n10, "par", _filler(4))                             # n11
    b.add_child(n10, "par", _filler(5))                             # n12
    b.add_child(n10, "par", _filler(6))                             # n13
    n14 = b.add_child(n1, "subsection",
                      "Processing queries over document trees")
    b.add_child(n14, "title", "Query processing")                   # n15
    n16 = b.add_child(n14, "subsubsection",
                      "Techniques for optimization of queries")
    n17 = b.add_child(n16, "par",
                      "Optimization of XQuery expressions relies on "
                      "algebraic rewriting of the query plan.")
    n18 = b.add_child(n16, "par",
                      "An XQuery processor may reorder joins and prune "
                      "candidate results early.")

    # --- n19: second section, subtree n19..n48 -----------------------
    n19 = b.add_child(n0, "section", "Keyword search over documents")
    b.add_child(n19, "title", "Keyword search")                     # n20
    n21 = b.add_child(n19, "subsection", "Answer granularity")
    for i in range(6):                                              # n22-27
        b.add_child(n21, "par", _filler(i))
    n28 = b.add_child(n19, "subsection", "Result presentation")
    for i in range(6):                                              # n29-34
        b.add_child(n28, "par", _filler(i + 3))
    n35 = b.add_child(n19, "subsection", "Effectiveness measures")
    for i in range(6):                                              # n36-41
        b.add_child(n35, "par", _filler(i + 1))
    n42 = b.add_child(n19, "subsection", "Efficiency considerations")
    for i in range(6):                                              # n43-48
        b.add_child(n42, "par", _filler(i + 2))

    # --- n49: third section, subtree n49..n78 ------------------------
    n49 = b.add_child(n0, "section", "System architecture")
    b.add_child(n49, "title", "Architecture")                       # n50
    n51 = b.add_child(n49, "subsection", "Storage layer")
    for i in range(8):                                              # n52-59
        b.add_child(n51, "par", _filler(i))
    n60 = b.add_child(n49, "subsection", "Index layer")
    for i in range(8):                                              # n61-68
        b.add_child(n60, "par", _filler(i + 4))
    n69 = b.add_child(n49, "subsection", "Execution layer")
    for i in range(9):                                              # n70-78
        b.add_child(n69, "par", _filler(i + 5))

    # --- n79: final section, subtree n79..n81 ------------------------
    n79 = b.add_child(n0, "section", "Concluding remarks")
    n80 = b.add_child(n79, "subsection", "Future directions")
    n81 = b.add_child(n80, "par",
                      "Cost based optimization of physical operators "
                      "remains an open problem.")

    document = b.build()

    # The construction above is order-sensitive; fail fast if an edit
    # ever shifts the preorder ranks the paper's example depends on.
    expected = {"n1": (n1, 1), "n14": (n14, 14), "n16": (n16, 16),
                "n17": (n17, 17), "n18": (n18, 18), "n79": (n79, 79),
                "n80": (n80, 80), "n81": (n81, 81)}
    for label, (builder_id, rank) in expected.items():
        if builder_id != rank:
            raise AssertionError(
                f"figure1 construction drifted: {label} got builder id "
                f"{builder_id}, expected preorder rank {rank}")
    if document.size != 82:
        raise AssertionError(
            f"figure1 document must have 82 nodes, built {document.size}")
    return document
