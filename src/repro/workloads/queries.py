"""Query workload generation.

Builds query mixes against a document, controlling the two parameters
query cost actually depends on:

* the number of terms (m-way joins), and
* per-term selectivity (``|Fi|`` — how many nodes match each term).

Terms are drawn from the document's own vocabulary via its inverted
index, so generated workloads never degenerate into empty-posting
no-ops unless explicitly requested.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.filters import Filter, SizeAtMost, TrueFilter
from ..core.query import Query
from ..errors import WorkloadError
from ..index.inverted import InvertedIndex

__all__ = ["QuerySpec", "generate_queries", "pick_terms_by_frequency"]


@dataclass(frozen=True)
class QuerySpec:
    """Parameters for a batch of random keyword queries.

    Attributes
    ----------
    count:
        Number of queries to generate.
    terms_per_query:
        Keywords per query (2 reproduces the paper's running example).
    min_frequency / max_frequency:
        Admissible document frequency range for each chosen term —
        i.e. the selectivity band.
    size_limit:
        When set, every query carries a ``size <= limit`` filter
        (anti-monotonic); when ``None`` queries are unfiltered.
    seed:
        RNG seed for deterministic workloads.
    """

    count: int = 10
    terms_per_query: int = 2
    min_frequency: int = 2
    max_frequency: int = 12
    size_limit: Optional[int] = 6
    seed: int = 13

    def __post_init__(self) -> None:
        if self.count < 1:
            raise WorkloadError("count must be >= 1")
        if self.terms_per_query < 1:
            raise WorkloadError("terms_per_query must be >= 1")
        if self.min_frequency < 1 or self.max_frequency < self.min_frequency:
            raise WorkloadError("need 1 <= min_frequency <= max_frequency")


def pick_terms_by_frequency(index: InvertedIndex, min_frequency: int,
                            max_frequency: int) -> list[str]:
    """Vocabulary terms whose document frequency lies in the band."""
    return sorted(
        term for term in index.vocabulary()
        if min_frequency <= index.document_frequency(term) <= max_frequency)


def generate_queries(index: InvertedIndex, spec: QuerySpec) -> list[Query]:
    """Generate ``spec.count`` queries over the indexed document.

    Raises
    ------
    WorkloadError
        If the document's vocabulary cannot satisfy the frequency band
        with enough distinct terms.
    """
    eligible = pick_terms_by_frequency(index, spec.min_frequency,
                                       spec.max_frequency)
    if len(eligible) < spec.terms_per_query:
        raise WorkloadError(
            f"only {len(eligible)} terms have document frequency in "
            f"[{spec.min_frequency}, {spec.max_frequency}]; need at "
            f"least {spec.terms_per_query}")
    rng = random.Random(spec.seed)
    predicate: Filter = (SizeAtMost(spec.size_limit)
                         if spec.size_limit is not None else TrueFilter())
    queries = []
    for _ in range(spec.count):
        terms = rng.sample(eligible, spec.terms_per_query)
        queries.append(Query(tuple(terms), predicate))
    return queries


def selectivity_ladder(index: InvertedIndex, rungs: Sequence[int],
                       terms_per_query: int = 2,
                       size_limit: Optional[int] = 6,
                       seed: int = 29) -> list[tuple[int, Query]]:
    """One query per selectivity rung: terms with frequency ≈ the rung.

    Used by the strategy-sweep bench (S1) to scale ``|Fi|`` while
    holding everything else fixed.  Returns ``(rung, query)`` pairs,
    skipping rungs the vocabulary cannot serve.
    """
    rng = random.Random(seed)
    predicate: Filter = (SizeAtMost(size_limit)
                         if size_limit is not None else TrueFilter())
    ladder: list[tuple[int, Query]] = []
    for rung in rungs:
        lo = max(1, rung - max(1, rung // 4))
        hi = rung + max(1, rung // 4)
        eligible = pick_terms_by_frequency(index, lo, hi)
        if len(eligible) < terms_per_query:
            continue
        terms = rng.sample(eligible, terms_per_query)
        ladder.append((rung, Query(tuple(terms), predicate)))
    return ladder
