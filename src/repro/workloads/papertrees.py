"""Small trees reconstructed from the paper's illustrative figures.

Each builder returns a :class:`LabeledTree`: the document plus a mapping
from the paper's node labels (``"n3"`` …) to our preorder node ids, and
fragment helpers, so tests and benches can phrase assertions in the
paper's own vocabulary.

* :func:`build_figure3_tree` — the 9-node tree of Figure 3, with the
  documented join ``⟨n4,n5⟩ ⋈ ⟨n7,n9⟩ = ⟨n3,n4,n5,n6,n7,n9⟩`` and the
  fragment sets ``F1 = {f11, f12}``, ``F2 = {f21, f22}``.
* :func:`build_figure4_tree` — a tree realising Figure 4's reduction
  ``⊖({⟨n1⟩,⟨n3⟩,⟨n5⟩,⟨n6⟩,⟨n7⟩}) = {⟨n1⟩,⟨n5⟩,⟨n7⟩}``: n3 lies on the
  n1–n5 path and n6 on the n1–n7 path, while no join of two *other*
  fragments covers n1, n5 or n7.
* :func:`build_figure7_tree` — a tree witnessing that the equal-depth
  filter is not anti-monotonic: the fragment ``f`` satisfies it via an
  equal-depth keyword pair, but a sub-fragment ``f'`` that only retains
  a different-depth occurrence of the second keyword does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.fragment import Fragment
from ..xmltree.builder import DocumentBuilder
from ..xmltree.document import Document

__all__ = [
    "LabeledTree",
    "build_figure3_tree",
    "build_figure4_tree",
    "build_figure7_tree",
]


@dataclass(frozen=True)
class LabeledTree:
    """A document plus the paper's node-label → node-id mapping."""

    document: Document
    ids: dict[str, int]

    def node(self, label: str) -> int:
        """The node id for a paper label such as ``"n4"``."""
        return self.ids[label]

    def fragment(self, *labels: str) -> Fragment:
        """The fragment ⟨labels…⟩ phrased with paper labels."""
        return Fragment(self.document, (self.ids[lb] for lb in labels))

    def fragment_set(self, groups: Iterable[Iterable[str]]
                     ) -> frozenset[Fragment]:
        """A fragment set from groups of paper labels."""
        return frozenset(self.fragment(*group) for group in groups)

    def labels_of(self, fragment: Fragment) -> frozenset[str]:
        """Paper labels of a fragment's nodes (for readable assertions)."""
        reverse = {nid: label for label, nid in self.ids.items()}
        return frozenset(reverse[n] for n in fragment.nodes)


def build_figure3_tree() -> LabeledTree:
    """The Figure 3 document tree (paper labels n1–n9).

    Topology (children left to right)::

        n1 ── n2
           └─ n3 ── n4 ── n5
                 └─ n6 ── n7 ── n9
                       └─ n8

    which realises the documented fragment join
    ``⟨n4,n5⟩ ⋈ ⟨n7,n9⟩ = ⟨n3,n4,n5,n6,n7,n9⟩``.
    """
    b = DocumentBuilder(name="figure3")
    n1 = b.add_root("a", "root component")
    n2 = b.add_child(n1, "b", "left leaf")
    n3 = b.add_child(n1, "c", "inner component")
    n4 = b.add_child(n3, "d", "first child branch")
    n5 = b.add_child(n4, "e", "leaf under d")
    n6 = b.add_child(n3, "f", "second child branch")
    n7 = b.add_child(n6, "g", "inner leaf parent")
    n9 = b.add_child(n7, "i", "deep leaf")
    n8 = b.add_child(n6, "h", "right leaf")
    # Insertion above follows preorder except n8/n9 (n9 precedes n8 in
    # preorder because it hangs under n7); build() renumbers, so map
    # labels through the builder ids' preorder ranks explicitly.
    ids = {"n1": n1, "n2": n2, "n3": n3, "n4": n4, "n5": n5,
           "n6": n6, "n7": n7, "n8": n8, "n9": n9}
    document = b.build()
    return LabeledTree(document, _remap(ids, document, b))


def build_figure4_tree() -> LabeledTree:
    """A tree realising Figure 4's fragment set reduction.

    Topology::

        n0 ── n6 ── n3 ── n1
                 │     └─ n5
                 └─ n7

    With ``F = {⟨n1⟩,⟨n3⟩,⟨n5⟩,⟨n6⟩,⟨n7⟩}``:
    ``n3 ⊆ ⟨n1⟩⋈⟨n5⟩ = ⟨n3,n1,n5⟩`` and
    ``n6 ⊆ ⟨n1⟩⋈⟨n7⟩ = ⟨n6,n3,n1,n7⟩``, while no join of two fragments
    other than f covers n1, n5 or n7 — hence ``⊖(F) = {n1, n5, n7}``
    and Theorem 1 predicts the fixed point in 3 iterations.
    """
    b = DocumentBuilder(name="figure4")
    n0 = b.add_root("root", "document root")
    n6 = b.add_child(n0, "sec", "outer component")
    n3 = b.add_child(n6, "sub", "middle component")
    n1 = b.add_child(n3, "par", "alpha content")
    n5 = b.add_child(n3, "par", "beta content")
    n7 = b.add_child(n6, "par", "gamma content")
    ids = {"n0": n0, "n6": n6, "n3": n3, "n1": n1, "n5": n5, "n7": n7}
    document = b.build()
    return LabeledTree(document, _remap(ids, document, b))


def build_figure7_tree() -> LabeledTree:
    """A tree witnessing Figure 7 (equal-depth filter, not a.m.).

    Topology (keywords in parentheses)::

        n0 ── n1 ── n2 (k1)
           │     └─ n3 (k2)
           └─ n4 (k2)

    The fragment ``f = ⟨n0,n1,n2,n3,n4⟩`` satisfies equal-depth(k1,k2)
    through the depth-2 pair (n2, n3); its sub-fragment
    ``f' = ⟨n0,n1,n2,n4⟩`` retains only the depth-1 occurrence n4 of k2
    and fails the filter.
    """
    b = DocumentBuilder(name="figure7")
    n0 = b.add_root("root", "top")
    n1 = b.add_child(n0, "sec", "branch")
    n2 = b.add_child(n1, "par", "k1 content here")
    n3 = b.add_child(n1, "par", "k2 content here")
    n4 = b.add_child(n0, "par", "k2 content again")
    ids = {"n0": n0, "n1": n1, "n2": n2, "n3": n3, "n4": n4}
    document = b.build()
    return LabeledTree(document, _remap(ids, document, b))


def _remap(ids: dict[str, int], document: Document,
           builder: DocumentBuilder) -> dict[str, int]:
    """Translate builder ids to final preorder ids via the build mapping."""
    mapping = builder.last_id_mapping
    if mapping is None:  # pragma: no cover - build() always sets it
        raise RuntimeError("build() must run before _remap")
    return {label: mapping[old] for label, old in ids.items()}
