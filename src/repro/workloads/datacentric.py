"""A DBLP-like *data-centric* synthetic corpus.

The paper's introduction contrasts document-centric XML (non-schematic,
structural tags, long text) with data-centric XML (highly schematic,
semantically named tags like ``<book>``/``<author>``) and argues the
smallest-subtree semantics is adequate only for the latter.  This
module generates the data-centric side of that contrast — a
bibliography of uniform records — so the E1 experiment can show *when*
the conventional semantics suffices and when the algebra's enlarged
units matter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import WorkloadError
from ..xmltree.builder import DocumentBuilder
from ..xmltree.document import Document

__all__ = ["BibliographySpec", "generate_bibliography"]

_FIRST_NAMES = ("ada grace alan edgar barbara donald leslie john "
                "frances tim").split()
_LAST_NAMES = ("lovelace hopper turing codd liskov knuth lamport "
               "mccarthy allen berners").split()
_TOPIC_WORDS = ("database retrieval indexing transaction concurrency "
                "optimization algebra storage query fragment xml "
                "keyword search tree semantics").split()
_VENUES = ("sigmod vldb icde edbt cikm".split())


@dataclass(frozen=True)
class BibliographySpec:
    """Parameters of a synthetic bibliography.

    Attributes
    ----------
    records:
        Number of ``<paper>`` records.
    max_authors:
        Authors per record (1..max, uniform).
    title_words:
        Topic words per title.
    seed:
        RNG seed; generation is deterministic.
    """

    records: int = 100
    max_authors: int = 3
    title_words: int = 4
    seed: int = 41

    def __post_init__(self) -> None:
        if self.records < 1:
            raise WorkloadError("records must be >= 1")
        if self.max_authors < 1:
            raise WorkloadError("max_authors must be >= 1")
        if self.title_words < 1:
            raise WorkloadError("title_words must be >= 1")


def generate_bibliography(spec: BibliographySpec) -> Document:
    """Generate the data-centric bibliography document.

    Shape (schematic, uniform — the data-centric hallmark)::

        bibliography
          paper*           (one per record)
            title          (topic words)
            author*        (first + last name)
            venue
            year
    """
    rng = random.Random(spec.seed)
    builder = DocumentBuilder(name="bibliography")
    root = builder.add_root("bibliography")
    for _ in range(spec.records):
        paper = builder.add_child(root, "paper")
        builder.add_child(paper, "title",
                          " ".join(rng.sample(_TOPIC_WORDS,
                                              spec.title_words)))
        for _ in range(rng.randint(1, spec.max_authors)):
            builder.add_child(
                paper, "author",
                f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}")
        builder.add_child(paper, "venue", rng.choice(_VENUES))
        builder.add_child(paper, "year",
                          str(rng.randint(1995, 2006)))
    return builder.build()
