"""Canned realistic corpora for examples and integration tests.

Two hand-written document-centric XML documents:

* :func:`book_corpus` — a short technical book (chapters / sections /
  paragraphs) about XML retrieval; exercises multi-level nesting.
* :func:`thesis_corpus` — a thesis-like document with front matter,
  chapters and an appendix; exercises wider fanout and mixed tags.

Both are parsed from literal XML via :func:`repro.xmltree.parser.parse`,
so they also serve as end-to-end parser fixtures.
"""

from __future__ import annotations

from ..xmltree.document import Document
from ..xmltree.parser import parse

__all__ = ["book_corpus", "thesis_corpus", "BOOK_XML", "THESIS_XML"]

BOOK_XML = """\
<book>
  <title>Fragment Retrieval in Practice</title>
  <chapter>
    <title>Foundations</title>
    <section>
      <title>Trees and fragments</title>
      <par>A document is modelled as a rooted ordered tree whose nodes
      carry textual content.</par>
      <par>A fragment is any connected set of nodes, and answers to a
      keyword query are fragments.</par>
    </section>
    <section>
      <title>Keyword queries</title>
      <par>Users type plain keywords; the engine must decide which
      fragment constitutes a good retrieval unit.</par>
      <par>The smallest subtree is often too narrow for document
      centric data.</par>
    </section>
  </chapter>
  <chapter>
    <title>Algebra</title>
    <section>
      <title>Join operations</title>
      <par>The fragment join of two fragments is the minimal fragment
      containing both.</par>
      <par>Pairwise and powerset variants lift the join to fragment
      sets.</par>
      <note>Powerset join is exponential when evaluated naively.</note>
    </section>
    <section>
      <title>Filters</title>
      <par>Anti monotonic filters such as size bounds commute with join
      and enable pushdown optimization.</par>
      <par>Equal depth filters lack the property and must run last.</par>
    </section>
  </chapter>
  <appendix>
    <title>Proofs</title>
    <par>The fixed point of a fragment set is reached after as many
    iterations as its reduced set has elements.</par>
  </appendix>
</book>
"""

THESIS_XML = """\
<thesis>
  <front>
    <title>Effective Retrieval of Structured Document Fragments</title>
    <abstract>We study keyword search over document centric XML and
    develop an algebraic query model with database style filters.</abstract>
  </front>
  <chapter n="1">
    <title>Introduction</title>
    <par>Keyword search is the friendliest interface for casual users
    of document collections.</par>
    <par>Existing smallest subtree semantics retrieves fragments that
    are too small to be self contained.</par>
    <section>
      <title>Motivation</title>
      <par>A paragraph mentioning both query terms may be less useful
      than the enclosing subsection.</par>
    </section>
  </chapter>
  <chapter n="2">
    <title>Query Model</title>
    <section>
      <title>Selection</title>
      <par>Selection keeps the fragments satisfying a predicate.</par>
    </section>
    <section>
      <title>Join</title>
      <par>Fragment join computes minimal covering fragments.</par>
      <par>The operation is idempotent commutative associative and
      absorptive.</par>
    </section>
    <section>
      <title>Optimization</title>
      <par>Anti monotonic predicates can be evaluated before join
      operations without changing the answer.</par>
    </section>
  </chapter>
  <chapter n="3">
    <title>Evaluation</title>
    <par>We compare brute force set reduction and pushdown strategies
    over synthetic corpora.</par>
    <par>Pushdown wins whenever the filter is selective.</par>
  </chapter>
  <appendix>
    <title>Notation</title>
    <item>F denotes a fragment set.</item>
    <item>P denotes a selection predicate.</item>
  </appendix>
</thesis>
"""


def book_corpus() -> Document:
    """The canned technical-book document."""
    return parse(BOOK_XML, name="book")


def thesis_corpus() -> Document:
    """The canned thesis document."""
    return parse(THESIS_XML, name="thesis")
