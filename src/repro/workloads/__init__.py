"""Workload substrate: paper fixtures, synthetic corpora, query mixes."""

from .corpora import BOOK_XML, THESIS_XML, book_corpus, thesis_corpus
from .datacentric import BibliographySpec, generate_bibliography
from .figure1 import FIGURE1_QUERY_TERMS, build_figure1_document
from .generator import (DocumentSpec, generate_document, plant_keyword,
                        zipf_vocabulary)
from .inexlike import InexSpec, generate_collection
from .papertrees import (LabeledTree, build_figure3_tree,
                         build_figure4_tree, build_figure7_tree)
from .queries import (QuerySpec, generate_queries,
                      pick_terms_by_frequency, selectivity_ladder)

__all__ = [
    "build_figure1_document",
    "FIGURE1_QUERY_TERMS",
    "LabeledTree",
    "build_figure3_tree",
    "build_figure4_tree",
    "build_figure7_tree",
    "BibliographySpec",
    "generate_bibliography",
    "DocumentSpec",
    "InexSpec",
    "generate_collection",
    "generate_document",
    "plant_keyword",
    "zipf_vocabulary",
    "QuerySpec",
    "generate_queries",
    "pick_terms_by_frequency",
    "selectivity_ladder",
    "book_corpus",
    "thesis_corpus",
    "BOOK_XML",
    "THESIS_XML",
]
