"""Synthetic document-centric XML generation.

The paper's examples are articles with sections/subsections/paragraphs
and long textual content, no meaningful schema — the INEX-style shape.
:class:`DocumentSpec` parameterises that shape (node budget, fanout,
depth, vocabulary) and :func:`generate_document` produces deterministic
pseudo-random documents from a seed.

Two knobs matter to the experiments:

* **selectivity** — how many nodes contain a planted query term; this
  controls ``|Fi|``, the operand sizes every strategy is exponential or
  polynomial in;
* **clustering** — whether planted term occurrences huddle inside one
  subtree (high reduction factor, small joins) or scatter across the
  document (low RF, root-spanning joins).

Both are exposed by :func:`plant_keyword`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import WorkloadError
from ..xmltree.builder import DocumentBuilder
from ..xmltree.document import Document

__all__ = ["DocumentSpec", "generate_document", "plant_keyword",
           "zipf_vocabulary"]

_SECTION_TAGS = ("section", "subsection", "subsubsection", "division")
_LEAF_TAGS = ("par", "note", "item", "caption")

# Base word list for synthetic prose; combined with numeric suffixes to
# reach arbitrary vocabulary sizes.
_BASE_WORDS = (
    "tree document fragment keyword search retrieval answer element "
    "content structure component section paragraph schema index node "
    "join algebra filter predicate evaluation cost model selection "
    "operator semantics measure system storage engine result ranking "
    "granularity overlap collection corpus term posting traversal"
).split()


def zipf_vocabulary(size: int, prefix: str = "w") -> list[str]:
    """A vocabulary of ``size`` distinct words.

    The first words are natural English (for readable documents), the
    remainder synthetic ``w<k>`` tokens.  Word *ranks* matter to the
    Zipf sampler in :func:`generate_document`: rank 0 is the most
    frequent.
    """
    if size < 1:
        raise WorkloadError("vocabulary size must be >= 1")
    vocab = list(_BASE_WORDS[:size])
    for k in range(len(vocab), size):
        vocab.append(f"{prefix}{k}")
    return vocab


@dataclass(frozen=True)
class DocumentSpec:
    """Shape parameters for synthetic document-centric XML.

    Attributes
    ----------
    nodes:
        Approximate total node count (the generator stops adding
        children once the budget is exhausted; the result has exactly
        this many nodes).
    max_depth:
        Maximum tree depth (root = 0).
    max_fanout:
        Maximum children per internal node.
    vocabulary_size:
        Number of distinct content words.
    zipf_s:
        Zipf skew of word frequencies (1.0 ≈ natural text).
    words_per_leaf:
        Content words sampled into each leaf's text.
    seed:
        RNG seed; equal specs generate equal documents.
    """

    nodes: int = 500
    max_depth: int = 6
    max_fanout: int = 8
    vocabulary_size: int = 400
    zipf_s: float = 1.1
    words_per_leaf: int = 12
    seed: int = 7
    name: str = field(default="synthetic")

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise WorkloadError("nodes must be >= 1")
        if self.max_depth < 1:
            raise WorkloadError("max_depth must be >= 1")
        if self.max_fanout < 1:
            raise WorkloadError("max_fanout must be >= 1")
        if self.words_per_leaf < 1:
            raise WorkloadError("words_per_leaf must be >= 1")


def _zipf_weights(size: int, s: float) -> list[float]:
    return [1.0 / ((rank + 1) ** s) for rank in range(size)]


def generate_document(spec: DocumentSpec) -> Document:
    """Generate a deterministic synthetic document matching ``spec``."""
    rng = random.Random(spec.seed)
    vocab = zipf_vocabulary(spec.vocabulary_size)
    weights = _zipf_weights(spec.vocabulary_size, spec.zipf_s)

    def sample_text(words: int) -> str:
        return " ".join(rng.choices(vocab, weights=weights, k=words))

    builder = DocumentBuilder(name=spec.name)
    root = builder.add_root("article", sample_text(4))
    budget = spec.nodes - 1
    # Frontier of internal nodes that may still receive children, with
    # their depths; expansion is randomised breadth-ish to create the
    # bushy-but-deep shape of real articles.  `attachable` remembers
    # every node shallower than max_depth so the budget can always be
    # spent exactly even if the frontier runs dry.
    frontier: list[tuple[int, int]] = [(root, 0)]
    attachable: list[tuple[int, int]] = [(root, 0)]
    while budget > 0 and frontier:
        idx = rng.randrange(len(frontier))
        parent, depth = frontier[idx]
        fanout = min(budget, rng.randint(1, spec.max_fanout))
        for _ in range(fanout):
            make_leaf = (depth + 1 >= spec.max_depth
                         or rng.random() < 0.55)
            if make_leaf:
                tag = rng.choice(_LEAF_TAGS)
                child = builder.add_child(parent, tag,
                                          sample_text(spec.words_per_leaf))
            else:
                tag = _SECTION_TAGS[min(depth, len(_SECTION_TAGS) - 1)]
                child = builder.add_child(parent, tag, sample_text(3))
                frontier.append((child, depth + 1))
            if depth + 1 < spec.max_depth:
                attachable.append((child, depth + 1))
            budget -= 1
            if budget == 0:
                break
        # A parent is expanded once; drop it from the frontier.
        frontier.pop(idx)
    # The frontier can run dry with budget left (every expansion chose
    # leaves); attach the remainder as leaves under random non-maximal
    # nodes so the document has exactly spec.nodes nodes.
    while budget > 0:
        parent, _depth = attachable[rng.randrange(len(attachable))]
        builder.add_child(parent, rng.choice(_LEAF_TAGS),
                          sample_text(spec.words_per_leaf))
        budget -= 1
    return builder.build()


def plant_keyword(document: Document, keyword: str, occurrences: int,
                  clustering: float = 0.0, seed: int = 0,
                  eligible: Optional[Sequence[int]] = None) -> Document:
    """Return a copy of ``document`` with ``keyword`` planted at nodes.

    Parameters
    ----------
    occurrences:
        How many nodes receive the keyword (the term's selectivity).
    clustering:
        0.0 scatters occurrences uniformly over the document; 1.0 plants
        them *vertically*, along a single root-to-leaf path.  Values in
        between interpolate (a fraction is path-clustered, the rest
        scattered).  Vertical runs are what makes keyword sets
        reducible: a keyword node lying on the tree path between two
        other keyword nodes is subsumed by their join (Definition 10),
        so path-clustered terms have high reduction factors while
        scattered or sibling-packed terms have low ones.
    eligible:
        Restrict planting to these node ids (default: all non-root
        nodes).

    Raises
    ------
    WorkloadError
        If fewer than ``occurrences`` eligible nodes exist.
    """
    if occurrences < 1:
        raise WorkloadError("occurrences must be >= 1")
    if not 0.0 <= clustering <= 1.0:
        raise WorkloadError("clustering must be within [0, 1]")
    candidates = (list(eligible) if eligible is not None
                  else [n for n in document.node_ids() if n != document.root])
    if len(candidates) < occurrences:
        raise WorkloadError(
            f"cannot plant {occurrences} occurrences into "
            f"{len(candidates)} eligible nodes")
    rng = random.Random(seed)
    clustered_count = round(occurrences * clustering)
    candidate_set = set(candidates)
    chosen: set[int] = set()
    if clustered_count:
        # Plant the clustered share along one root-to-leaf path: pick
        # the eligible node with the longest eligible ancestor line and
        # walk upward.  Interior nodes of such a run are subsumed by
        # the join of its endpoints, which is what gives the set a high
        # reduction factor.
        def eligible_path(node: int) -> list[int]:
            path = [node] if node in candidate_set else []
            for ancestor in document.ancestors(node):
                if ancestor in candidate_set:
                    path.append(ancestor)
            return path

        deep_nodes = sorted(candidate_set,
                            key=lambda n: (-document.depth(n), n))
        best: list[int] = []
        for node in deep_nodes[:64]:
            path = eligible_path(node)
            if len(path) > len(best):
                best = path
            if len(best) >= clustered_count:
                break
        chosen.update(best[:clustered_count])
    remaining = [n for n in candidates if n not in chosen]
    still_needed = occurrences - len(chosen)
    chosen.update(rng.sample(remaining, still_needed))
    return _with_extra_keyword(document, keyword, chosen)


def _with_extra_keyword(document: Document, keyword: str,
                        nodes: set[int]) -> Document:
    """Rebuild ``document`` with ``keyword`` added to ``nodes``' texts."""
    builder = DocumentBuilder(name=document.name)
    id_map: dict[int, int] = {}
    for nid in document.node_ids():
        text = document.text(nid)
        if nid in nodes:
            text = f"{text} {keyword}".strip()
        parent = document.parent(nid)
        if parent is None:
            new_id = builder.add_root(document.tag(nid), text,
                                      attrs=document.attributes(nid))
        else:
            new_id = builder.add_child(id_map[parent], document.tag(nid),
                                       text, attrs=document.attributes(nid))
        id_map[nid] = new_id
    return builder.build()
