"""INEX-style synthetic collections.

The INEX initiative (the paper cites its fragment analyses, ref [8])
evaluates XML retrieval over collections of journal articles.  We have
no INEX data offline, so this module synthesises the same *shape*: a
collection of article documents with shared vocabulary, plus planted
query terms whose per-document selectivity and clustering are
controlled — the corpus the collection-level experiments run on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..collection.collection import DocumentCollection
from ..errors import WorkloadError
from .generator import DocumentSpec, generate_document, plant_keyword

__all__ = ["InexSpec", "generate_collection"]


@dataclass(frozen=True)
class InexSpec:
    """Parameters of a synthetic article collection.

    Attributes
    ----------
    articles:
        Number of documents.
    nodes_per_article:
        Approximate node count of each article.
    planted_terms:
        Terms planted into a subset of the articles (the query
        workload's targets).
    planted_fraction:
        Fraction of articles receiving each planted term.
    occurrences:
        Occurrences of a planted term within one receiving article.
    clustering:
        Vertical clustering of planted occurrences (see
        :func:`repro.workloads.generator.plant_keyword`).
    seed:
        Master RNG seed; the collection is fully deterministic.
    """

    articles: int = 20
    nodes_per_article: int = 300
    planted_terms: tuple[str, ...] = ("needle", "thread")
    planted_fraction: float = 0.4
    occurrences: int = 5
    clustering: float = 0.5
    seed: int = 97

    def __post_init__(self) -> None:
        if self.articles < 1:
            raise WorkloadError("articles must be >= 1")
        if not 0.0 < self.planted_fraction <= 1.0:
            raise WorkloadError("planted_fraction must be in (0, 1]")
        if self.occurrences < 1:
            raise WorkloadError("occurrences must be >= 1")


def generate_collection(spec: InexSpec) -> DocumentCollection:
    """Generate the collection described by ``spec``.

    Each planted term lands in ``ceil(articles · planted_fraction)``
    articles chosen deterministically from the seed; articles receiving
    several terms exist by design so conjunctive collection queries
    have non-trivial answers.
    """
    rng = random.Random(spec.seed)
    collection = DocumentCollection(name=f"inex-{spec.seed}")
    receivers: dict[str, set[int]] = {}
    count = max(1, round(spec.articles * spec.planted_fraction))
    for term in spec.planted_terms:
        receivers[term] = set(rng.sample(range(spec.articles), count))
    for i in range(spec.articles):
        doc = generate_document(DocumentSpec(
            nodes=spec.nodes_per_article,
            seed=spec.seed * 1000 + i,
            name=f"article-{i:03d}"))
        for term in spec.planted_terms:
            if i in receivers[term]:
                doc = plant_keyword(doc, term,
                                    occurrences=spec.occurrences,
                                    clustering=spec.clustering,
                                    seed=spec.seed * 100 + i)
        collection.add(doc)
    return collection
