"""Node view objects for document trees.

A :class:`repro.xmltree.document.Document` stores its tree in flat arrays
for speed; :class:`NodeView` is a lightweight, read-only facade over one
index of those arrays.  Algorithms in the algebra work directly with
integer node ids — node views exist for user-facing inspection, examples
and debugging.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .document import Document

__all__ = ["NodeView"]


class NodeView:
    """Read-only view of a single node of a :class:`Document`.

    Instances compare equal when they refer to the same node of the same
    document, and are hashable so they can live in sets and dict keys.
    """

    __slots__ = ("_doc", "_nid")

    def __init__(self, document: "Document", node_id: int) -> None:
        if not 0 <= node_id < document.size:
            raise IndexError(f"node id {node_id} out of range for document "
                             f"of {document.size} nodes")
        self._doc = document
        self._nid = node_id

    @property
    def document(self) -> "Document":
        """The document this node belongs to."""
        return self._doc

    @property
    def id(self) -> int:
        """The integer node id (also its depth-first preorder rank)."""
        return self._nid

    @property
    def tag(self) -> str:
        """The element tag name (e.g. ``section``, ``par``)."""
        return self._doc.tag(self._nid)

    @property
    def text(self) -> str:
        """The textual content directly attached to this node."""
        return self._doc.text(self._nid)

    @property
    def depth(self) -> int:
        """Distance from the document root (root has depth 0)."""
        return self._doc.depth(self._nid)

    @property
    def parent(self) -> Optional["NodeView"]:
        """The parent node view, or ``None`` for the root."""
        pid = self._doc.parent(self._nid)
        if pid is None:
            return None
        return NodeView(self._doc, pid)

    @property
    def children(self) -> tuple["NodeView", ...]:
        """Child node views in document order."""
        return tuple(NodeView(self._doc, c)
                     for c in self._doc.children(self._nid))

    @property
    def is_leaf(self) -> bool:
        """Whether this node has no children."""
        return not self._doc.children(self._nid)

    @property
    def keywords(self) -> frozenset[str]:
        """The representative keywords of this node (paper's keywords(n))."""
        return self._doc.keywords(self._nid)

    @property
    def label(self) -> str:
        """A short human-readable label such as ``n17:par``."""
        return f"n{self._nid}:{self.tag}"

    def iter_descendants(self) -> Iterator["NodeView"]:
        """Yield every descendant of this node in document order."""
        for nid in self._doc.descendants(self._nid):
            yield NodeView(self._doc, nid)

    def iter_ancestors(self) -> Iterator["NodeView"]:
        """Yield ancestors from the parent up to (and including) the root."""
        for nid in self._doc.ancestors(self._nid):
            yield NodeView(self._doc, nid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeView):
            return NotImplemented
        return self._nid == other._nid and self._doc is other._doc

    def __hash__(self) -> int:
        return hash((id(self._doc), self._nid))

    def __repr__(self) -> str:
        snippet = self.text[:24]
        if len(self.text) > 24:
            snippet += "..."
        return f"NodeView(n{self._nid}, tag={self.tag!r}, text={snippet!r})"
