"""A small path-expression language over documents (XPath-lite).

Keyword search is the paper's interface, but examples, tests and
downstream tools constantly need "give me the ``section/par`` nodes".
This module implements the useful fragment of abbreviated XPath:

* ``a/b``    — child steps,
* ``a//b``   — descendant-or-self steps,
* ``*``      — any tag,
* ``//a``    — descendants of the root (leading ``//``),
* a leading ``/`` anchors at the root (the default).

No predicates, attributes or axes beyond child/descendant — by design;
anything more belongs to a real XPath engine.  Matching is performed
against node *tags* and returns node ids in document order.

>>> select(doc, "chapter/section/par")
[4, 5, 9]
>>> select(doc, "//par")
[4, 5, 9, 12]
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .document import Document

__all__ = ["select", "parse_steps"]


def parse_steps(expression: str) -> list[tuple[str, str]]:
    """Parse a path expression into ``(axis, tag)`` steps.

    ``axis`` is ``"child"`` or ``"descendant"``; ``tag`` is a tag name
    or ``"*"``.

    Raises
    ------
    QueryError
        On empty expressions, empty steps, or stray slashes.
    """
    text = expression.strip()
    if not text:
        raise QueryError("empty path expression")
    steps: list[tuple[str, str]] = []
    axis = "child"
    if text.startswith("//"):
        axis = "descendant"
        text = text[2:]
    elif text.startswith("/"):
        text = text[1:]
    if not text:
        raise QueryError("path expression has no steps")
    i = 0
    token = ""
    while i <= len(text):
        ch = text[i] if i < len(text) else "/"
        if ch == "/":
            if not token:
                # '//' in the middle: next step is a descendant step.
                if axis == "descendant":
                    raise QueryError(
                        f"malformed path near {expression!r}")
                axis = "descendant"
            else:
                steps.append((axis, token))
                token = ""
                axis = "child"
            i += 1
        else:
            token += ch
            i += 1
    # The loop's virtual trailing '/' flushed the last token; a real
    # trailing slash leaves an empty final step.
    if text.endswith("/"):
        raise QueryError(f"trailing slash in path {expression!r}")
    if not steps:
        raise QueryError("path expression has no steps")
    for _, tag in steps:
        if not tag.replace("_", "").replace("-", "").isalnum() \
                and tag != "*":
            raise QueryError(f"invalid tag name {tag!r}")
    return steps


def select(document: "Document", expression: str) -> list[int]:
    """Node ids matching the path expression, in document order.

    The expression is anchored at the root: the first step matches
    children of the root (or any descendant with a leading ``//``).
    Matching the root itself is expressed as its tag name alone being
    the first child step of a virtual super-root, i.e. ``select(doc,
    doc.tag(0))`` returns ``[0]``.
    """
    steps = parse_steps(expression)
    # Virtual super-root: the root node is a "child" candidate of it.
    current: set[int] = {-1}
    for axis, tag in steps:
        matched: set[int] = set()
        for node in current:
            candidates: list[int]
            if axis == "child":
                if node == -1:
                    candidates = [document.root]
                else:
                    candidates = list(document.children(node))
            else:  # descendant-or-self of the node's children
                if node == -1:
                    candidates = list(document.node_ids())
                else:
                    candidates = list(document.descendants(node))
            for candidate in candidates:
                if tag == "*" or document.tag(candidate) == tag:
                    matched.add(candidate)
        current = matched
        if not current:
            return []
    return sorted(current)
