"""Interval-bitset join kernel: spanning-tree closure on flat arrays.

:func:`repro.xmltree.navigation.spanning_nodes` — the hot core of
fragment join — climbs parent pointers while testing membership in a
growing Python ``set``.  Every step pays a hash lookup and an insert.
This module provides :class:`IntervalKernel`, a per-document kernel
that performs the same closure on **integer arithmetic only**:

* the parent and depth labels are unpacked once into flat lists so the
  climb is plain list indexing;
* "already covered" is an *epoch-stamped bitset*: one preallocated
  ``array('Q')`` slot per node holding the epoch of its last visit.
  Membership is ``stamp[n] == epoch`` — O(1), allocation-free, and the
  array never needs clearing between joins (bumping the epoch
  invalidates every stale bit at once);
* the closure root comes from the preorder-interval property: the LCA
  of a node set is the LCA of its minimum and maximum preorder ids,
  answered in O(1) by the document's Euler-tour index.

The kernel also exposes integer-arithmetic versions of the
anti-monotonic filter measures (``size`` / ``height`` / ``width``) so
push-down checks can run without materialising a :class:`Fragment`.

The kernel is *selected*, never mandatory: the algebra keeps the
reference ``frozenset``-based implementation and the two are
cross-checked property-based in the test suite (they must produce
identical node sets on every input).
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .document import Document

__all__ = ["IntervalKernel"]


class IntervalKernel:
    """Per-document spanning/join kernel over flat interval labels.

    Instances are cheap to build (three flat copies of existing label
    arrays) and are cached on the document via
    :meth:`repro.xmltree.document.Document.interval_kernel`.  They are
    **not** shared across documents.

    Not thread-safe: the epoch-stamped scratch array is mutable state.
    Per-process use (one kernel per worker) is the intended deployment.
    """

    __slots__ = ("document", "_parents", "_depth", "_pre", "_size",
                 "_stamp", "_epoch")

    def __init__(self, document: "Document") -> None:
        labels = document.labels
        n = document.size
        # Root gets parent -1 so the climb can use plain ints throughout.
        parents = array("l", ((-1 if (p := document.parent(i)) is None
                               else p) for i in range(n)))
        self.document = document
        self._parents = parents
        self._depth = array("l", labels.depth)
        self._pre = array("l", labels.pre)
        self._size = array("l", labels.size)
        self._stamp = array("Q", bytes(8 * n))
        self._epoch = 0
        # Force the O(1) LCA index so spanning() never pays the lazy
        # build inside a timed region.
        if n > 1:
            document.lca(0, n - 1)

    @classmethod
    def from_arrays(cls, document: "Document", parents, depth, pre,
                    size) -> "IntervalKernel":
        """Zero-copy construction over pre-built flat label arrays.

        ``parents``/``depth``/``pre``/``size`` are any integer sequences
        supporting ``seq[i] -> int`` — in the sharded index they are
        ``memoryview.cast("q")`` windows onto an ``mmap`` (or shared
        memory segment), so building a kernel costs only the scratch
        bitset, never a per-node Python loop.  ``parents`` must encode
        the root as ``-1``, exactly as :meth:`__init__` does.
        """
        n = document.size
        if not (len(parents) == len(depth) == len(pre) == len(size) == n):
            raise ValueError("kernel arrays do not match document size")
        self = object.__new__(cls)
        self.document = document
        self._parents = parents
        self._depth = depth
        self._pre = pre
        self._size = size
        self._stamp = array("Q", bytes(8 * n))
        self._epoch = 0
        if n > 1:
            document.lca(0, n - 1)
        return self

    # ------------------------------------------------------------------
    # Closure
    # ------------------------------------------------------------------

    def spanning(self, nodes: Iterable[int]) -> frozenset[int]:
        """The tree-Steiner closure of ``nodes`` as a frozenset.

        Exact drop-in for
        :func:`repro.xmltree.navigation.spanning_nodes`; the property
        suite asserts equality on randomized trees.
        """
        ids = list(nodes)
        if not ids:
            raise ValueError("spanning requires at least one node")
        self._epoch += 1
        epoch = self._epoch
        stamp = self._stamp
        parents = self._parents
        lo = min(ids)
        hi = max(ids)
        root = lo if lo == hi else self.document.lca(lo, hi)
        out = []
        for n in ids:
            if stamp[n] != epoch:
                stamp[n] = epoch
                out.append(n)
        if stamp[root] != epoch:
            stamp[root] = epoch
            out.append(root)
        for n in ids:
            if n == root:
                continue
            cur = parents[n]
            while stamp[cur] != epoch:
                stamp[cur] = epoch
                out.append(cur)
                cur = parents[cur]
        return frozenset(out)

    def spanning_of_union(self, nodes1: Iterable[int],
                          nodes2: Iterable[int]) -> frozenset[int]:
        """Closure of ``nodes1 ∪ nodes2`` without building the union."""
        ids1 = list(nodes1)
        ids2 = list(nodes2)
        ids1.extend(ids2)
        return self.spanning(ids1)

    def join_nodes(self, n1: frozenset, n2: frozenset,
                   r1: int, r2: int) -> frozenset:
        """Closure of the union of two *connected* node sets.

        ``r1`` / ``r2`` are the sets' roots (their minimum preorder
        ids).  Connectivity makes the closure cheap: every node of a
        connected set is a descendant of its root, so joining the sets
        only requires climbing from the two roots to their LCA ``a`` —
        the closure is ``n1 ∪ n2 ∪ {a} ∪ path(r1→a) ∪ path(r2→a)``,
        with each climb stopping early at any already-covered node.
        That is O(path length) integer steps plus C-speed frozenset
        unions, versus the reference's climb from *every* member node.
        """
        parents = self._parents
        a = r1 if r1 == r2 else self.document.lca(r1, r2)
        extra = [a]
        if r1 != a:
            # Ancestors of r1 are never inside n1 (r1 is its root), so
            # only n2 membership can stop the climb before a.
            cur = parents[r1]
            while cur != a and cur not in n2:
                extra.append(cur)
                cur = parents[cur]
        if r2 != a:
            # The second climb may also stop on the first climb's path.
            first_path = extra
            cur = parents[r2]
            while cur != a and cur not in n1 and cur not in first_path:
                extra.append(cur)
                cur = parents[cur]
        return n1 | n2 | frozenset(extra)

    # ------------------------------------------------------------------
    # Integer-arithmetic structural measures
    # ------------------------------------------------------------------

    def is_ancestor_or_self(self, u: int, v: int) -> bool:
        """Preorder-interval containment check (O(1))."""
        pu = self._pre[u]
        return pu <= self._pre[v] < pu + self._size[u]

    def height_of(self, nodes: Iterable[int]) -> int:
        """``height(f)`` of a connected node set (root = min id)."""
        depth = self._depth
        root_depth = None
        deepest = 0
        for n in nodes:
            d = depth[n]
            if root_depth is None or d < root_depth:
                root_depth = d
            if d > deepest:
                deepest = d
        if root_depth is None:
            raise ValueError("height_of requires at least one node")
        return deepest - root_depth

    @staticmethod
    def width_of(nodes: Iterable[int]) -> int:
        """``width(f)``: preorder span between extreme nodes."""
        ids = list(nodes)
        return max(ids) - min(ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IntervalKernel(document={self.document.name!r}, "
                f"nodes={self.document.size})")
