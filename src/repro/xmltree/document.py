"""The document tree model (paper Definition 1).

An XML document is a rooted *ordered* tree.  :class:`Document` stores the
tree in flat arrays indexed by node id and exposes the structural
primitives the algebra is built on:

* parent / children / depth / tag / text lookups,
* ``keywords(n)`` — the representative keywords of a node,
* O(1) ancestor tests via preorder-interval encoding,
* O(1) lowest-common-ancestor queries (Euler tour + sparse table),
* preorder/descendant iteration.

Node ids are normalised to **preorder ranks**: node ``0`` is the root and
``pre(n) == n`` for every node.  This makes document order comparisons a
plain integer comparison and lets fragments be plain ``frozenset[int]``.

Documents are immutable once built; use
:class:`repro.xmltree.builder.DocumentBuilder` or
:func:`repro.xmltree.parser.parse` to create one.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..errors import DocumentError
from .labeling import TreeLabels, compute_labels
from .node import NodeView

__all__ = ["Document"]

# Process-wide monotonic document tokens.  Unlike id(), a token is never
# reused after a document is garbage collected, so caches keyed on it
# (e.g. repro.core.algebra.JoinCache) can never serve stale entries.
_DOCUMENT_TOKENS = itertools.count(1)


class Document:
    """An immutable rooted ordered tree with per-node keywords.

    Do not call the constructor directly in application code; it assumes
    the arrays are consistent and already in preorder.  Use
    :class:`~repro.xmltree.builder.DocumentBuilder` (programmatic
    construction) or :func:`~repro.xmltree.parser.parse` (from XML text).
    """

    __slots__ = ("_tags", "_texts", "_parents", "_children", "_keywords",
                 "_attrs", "_labels", "_lca_index", "_interval_kernel",
                 "_kernel_arrays", "_token", "name")

    def __init__(self, tags: Sequence[str], texts: Sequence[str],
                 parents: Sequence[Optional[int]],
                 children: Sequence[Sequence[int]],
                 keywords: Sequence[frozenset[str]],
                 attrs: Optional[Sequence[Mapping[str, str]]] = None,
                 name: str = "document", *,
                 labels: Optional[TreeLabels] = None) -> None:
        n = len(tags)
        if not (len(texts) == len(parents) == len(children)
                == len(keywords) == n):
            raise DocumentError("document arrays have inconsistent lengths")
        self._tags = list(tags)
        self._texts = list(texts)
        self._parents = list(parents)
        self._children = [tuple(c) for c in children]
        self._keywords = [frozenset(k) for k in keywords]
        self._attrs = ([dict(a) for a in attrs] if attrs is not None
                       else [{} for _ in range(n)])
        if labels is not None:
            # Trusted fast path for storage backends that persisted the
            # label bundle alongside the tree (the labels were computed
            # from these exact arrays at build time, so recomputing them
            # at load would only burn CPU).  Length is still validated.
            if len(labels.pre) != n:
                raise DocumentError(
                    "supplied label bundle does not match tree size")
            self._labels = labels
        else:
            self._labels = compute_labels(self._parents, self._children)
            if self._labels.pre != list(range(n)):
                raise DocumentError(
                    "node ids must equal preorder ranks; build documents "
                    "via DocumentBuilder or parser, which normalise ids")
        self._lca_index = None  # built lazily on first lca() call
        self._interval_kernel = None  # built lazily on first use
        self._kernel_arrays = None  # mapped views set by shard loads
        self._token = next(_DOCUMENT_TOKENS)
        self.name = name

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of nodes in the document."""
        return len(self._tags)

    def __len__(self) -> int:
        return self.size

    @property
    def root(self) -> int:
        """The root node id (always 0 under preorder normalisation)."""
        return 0

    def node_ids(self) -> range:
        """All node ids, in document (preorder) order."""
        return range(self.size)

    def nodes(self) -> Iterator[NodeView]:
        """Iterate :class:`NodeView` objects in document order."""
        for nid in self.node_ids():
            yield NodeView(self, nid)

    def node(self, node_id: int) -> NodeView:
        """Return a :class:`NodeView` for ``node_id``."""
        return NodeView(self, node_id)

    def tag(self, node_id: int) -> str:
        """The tag name of a node."""
        return self._tags[node_id]

    def text(self, node_id: int) -> str:
        """The text content directly attached to a node."""
        return self._texts[node_id]

    def attributes(self, node_id: int) -> Mapping[str, str]:
        """The XML attributes of a node (may be empty)."""
        return self._attrs[node_id]

    def parent(self, node_id: int) -> Optional[int]:
        """The parent id, or ``None`` for the root."""
        return self._parents[node_id]

    def children(self, node_id: int) -> tuple[int, ...]:
        """Child ids in document order."""
        return self._children[node_id]

    def depth(self, node_id: int) -> int:
        """Distance from the root (root = 0)."""
        return self._labels.depth[node_id]

    def subtree_size(self, node_id: int) -> int:
        """Number of nodes in the subtree rooted at ``node_id``."""
        return self._labels.size[node_id]

    def is_leaf(self, node_id: int) -> bool:
        """Whether the node has no children."""
        return not self._children[node_id]

    def keywords(self, node_id: int) -> frozenset[str]:
        """The representative keywords of the node (paper's keywords(n))."""
        return self._keywords[node_id]

    @property
    def labels(self) -> TreeLabels:
        """The structural label bundle (depth/pre/size/post)."""
        return self._labels

    @property
    def token(self) -> int:
        """A process-wide unique, never-reused identity token.

        Safe to key caches on where ``id()`` is not: tokens survive the
        document's own lifetime and are reassigned on unpickling, so two
        distinct documents never share one within a process.
        """
        return self._token

    def interval_kernel(self):
        """The (lazily built, cached) interval-bitset join kernel.

        See :class:`repro.xmltree.intervals.IntervalKernel` — the
        integer-arithmetic fast path selected by ``kernel="bitset"``.
        """
        if self._interval_kernel is None:
            from .intervals import IntervalKernel
            if self._kernel_arrays is not None:
                # Zero-copy construction over the mapped shard arrays
                # (set by repro.storage.shards at materialisation time).
                self._interval_kernel = IntervalKernel.from_arrays(
                    self, *self._kernel_arrays)
            else:
                self._interval_kernel = IntervalKernel(self)
        return self._interval_kernel

    @property
    def max_depth(self) -> int:
        """The depth of the deepest node."""
        return max(self._labels.depth)

    # ------------------------------------------------------------------
    # Structural predicates and queries
    # ------------------------------------------------------------------

    def is_ancestor_or_self(self, u: int, v: int) -> bool:
        """O(1) test: is ``u`` equal to or an ancestor of ``v``?"""
        return self._labels.is_ancestor_or_self(u, v)

    def is_proper_ancestor(self, u: int, v: int) -> bool:
        """O(1) test: is ``u`` a strict ancestor of ``v``?"""
        return self._labels.is_proper_ancestor(u, v)

    def ancestors(self, node_id: int) -> Iterator[int]:
        """Yield ancestor ids from the parent up to the root."""
        p = self._parents[node_id]
        while p is not None:
            yield p
            p = self._parents[p]

    def descendants(self, node_id: int) -> range:
        """All descendant ids of ``node_id`` (excluding itself).

        Because ids are preorder ranks, the descendants of a node form the
        contiguous id range ``(n, n + size(n))``.
        """
        return range(node_id + 1, node_id + self._labels.size[node_id])

    def subtree(self, node_id: int) -> range:
        """The id range of the subtree rooted at ``node_id`` (inclusive)."""
        return range(node_id, node_id + self._labels.size[node_id])

    def lca(self, u: int, v: int) -> int:
        """The lowest common ancestor of two nodes, in O(1).

        The underlying Euler-tour/sparse-table index is built lazily on
        the first call and cached for the document's lifetime.
        """
        if self._lca_index is None:
            from ..index.lca import LcaIndex
            self._lca_index = LcaIndex(self)
        return self._lca_index.lca(u, v)

    def lca_of(self, node_ids: Iterable[int]) -> int:
        """The lowest common ancestor of a non-empty set of nodes.

        Because ids are preorder ranks, the LCA of a set equals the LCA
        of its minimum and maximum elements.
        """
        ids = list(node_ids)
        if not ids:
            raise ValueError("lca_of requires at least one node id")
        lo = min(ids)
        hi = max(ids)
        if lo == hi:
            return lo
        return self.lca(lo, hi)

    # ------------------------------------------------------------------
    # Keyword access
    # ------------------------------------------------------------------

    def nodes_with_keyword(self, keyword: str) -> list[int]:
        """Node ids whose keyword set contains ``keyword`` (linear scan).

        For repeated queries build a
        :class:`repro.index.inverted.InvertedIndex` instead.
        """
        return [nid for nid in self.node_ids()
                if keyword in self._keywords[nid]]

    def vocabulary(self) -> frozenset[str]:
        """The union of all node keyword sets."""
        vocab: set[str] = set()
        for kws in self._keywords:
            vocab |= kws
        return frozenset(vocab)

    # ------------------------------------------------------------------
    # Pickling (documents are shipped to pool workers at init)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the structural arrays only.

        The LCA index and interval kernel are derived state, rebuilt
        lazily on the receiving side, and the identity token must not
        travel: tokens are process-wide unique, so the unpickled copy
        draws a fresh one.
        """
        return {"tags": self._tags, "texts": self._texts,
                "parents": self._parents, "children": self._children,
                "keywords": self._keywords, "attrs": self._attrs,
                "labels": self._labels, "name": self.name}

    def __setstate__(self, state: dict) -> None:
        self._tags = state["tags"]
        self._texts = state["texts"]
        self._parents = state["parents"]
        self._children = state["children"]
        self._keywords = state["keywords"]
        self._attrs = state["attrs"]
        self._labels = state["labels"]
        self._lca_index = None
        self._interval_kernel = None
        self._kernel_arrays = None
        self._token = next(_DOCUMENT_TOKENS)
        self.name = state["name"]

    def __repr__(self) -> str:
        return (f"Document(name={self.name!r}, nodes={self.size}, "
                f"max_depth={self.max_depth})")
