"""Tree navigation helpers shared by the algebra and the baselines.

The central routine is :func:`spanning_nodes`, which computes the node
set of the *minimal connected subtree* containing a given node set — the
tree-Steiner closure.  Fragment join (paper Definition 4) is exactly this
closure applied to the union of the operand fragments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .document import Document

__all__ = [
    "path_to_ancestor",
    "spanning_nodes",
    "is_connected",
    "fragment_root",
    "fragment_leaves",
]


def path_to_ancestor(document: "Document", node: int, ancestor: int
                     ) -> list[int]:
    """Node ids on the path from ``node`` up to ``ancestor``, inclusive.

    Raises
    ------
    ValueError
        If ``ancestor`` is not an ancestor-or-self of ``node``.
    """
    if not document.is_ancestor_or_self(ancestor, node):
        raise ValueError(f"node {ancestor} is not an ancestor of {node}")
    path = [node]
    current = node
    while current != ancestor:
        current = document.parent(current)
        path.append(current)
    return path


def spanning_nodes(document: "Document", nodes: Iterable[int]
                   ) -> frozenset[int]:
    """The node set of the minimal connected subtree containing ``nodes``.

    Algorithm: take the LCA ``r`` of the whole set (O(1) thanks to
    preorder ids: it is the LCA of the min and max id), then climb each
    node towards ``r``, stopping as soon as an already-covered node is
    reached.  Every covered node is connected to ``r`` by construction,
    so early stopping is sound.  Total cost is O(|result|) parent steps.
    """
    ids = set(nodes)
    if not ids:
        raise ValueError("spanning_nodes requires at least one node")
    root = document.lca_of(ids)
    covered = set(ids)
    covered.add(root)
    for node in ids:
        if node == root:
            continue
        # Every node is a descendant of the LCA, so this climb always
        # terminates at a covered node (at the latest, at the root).
        current = document.parent(node)
        while current not in covered:
            covered.add(current)
            current = document.parent(current)
    return frozenset(covered)


def is_connected(document: "Document", nodes: Iterable[int]) -> bool:
    """Whether ``nodes`` induces a connected subgraph (i.e. a subtree).

    A non-empty node set of a tree is connected iff every node except the
    unique shallowest one has its parent inside the set.
    """
    ids = set(nodes)
    if not ids:
        return False
    root = min(ids, key=lambda n: document.depth(n))
    for node in ids:
        if node == root:
            continue
        parent = document.parent(node)
        if parent is None or parent not in ids:
            return False
    return True


def fragment_root(document: "Document", nodes: Iterable[int]) -> int:
    """The root of a connected node set (its unique shallowest node).

    For preorder-normalised ids the root of a connected set is simply its
    minimum element: the root is visited before every other node of its
    subtree.
    """
    return min(nodes)


def fragment_leaves(document: "Document", nodes: frozenset[int]
                    ) -> frozenset[int]:
    """Nodes of the set having no child *within the set*.

    These are the leaves of the induced subtree — the nodes Definition 8
    requires to carry the query keywords.
    """
    leaves = set()
    for node in nodes:
        if not any(child in nodes for child in document.children(node)):
            leaves.add(node)
    return frozenset(leaves)
