"""Parse XML text/files into :class:`~repro.xmltree.document.Document`.

Built on the standard library's :mod:`xml.etree.ElementTree`.  Each XML
element becomes one tree node; an element's *direct* text (its ``text``
plus the ``tail`` text of its children) is attached to that node, which
matches the paper's model where ``keywords(n)`` reflects the content of
the logical component ``n`` itself, not of its whole subtree.

Comments and processing instructions are skipped.  Attributes are kept
and, per the paper's convention, contribute to the node's keyword set.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from typing import Optional, Union

from ..errors import ParseError
from ..index.tokenizer import Tokenizer
from .builder import DocumentBuilder
from .document import Document

__all__ = ["parse", "parse_file", "parse_file_streaming"]


def parse(xml_text: str, name: str = "document",
          tokenizer: Optional[Tokenizer] = None,
          keyword_tags: bool = True) -> Document:
    """Parse an XML string into a document tree.

    Parameters
    ----------
    xml_text:
        Well-formed XML.
    name:
        Name recorded on the resulting document.
    tokenizer:
        Tokenizer used to derive per-node keyword sets.
    keyword_tags:
        Whether tag and attribute names join the keyword sets.

    Raises
    ------
    ParseError
        If the input is not well-formed XML.
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML: {exc}") from exc
    return _from_element(root, name, tokenizer, keyword_tags)


def parse_file(path: Union[str, "os.PathLike[str]"],
               name: Optional[str] = None,
               tokenizer: Optional[Tokenizer] = None,
               keyword_tags: bool = True) -> Document:
    """Parse an XML file into a document tree.

    ``name`` defaults to the file's base name.
    """
    path_str = os.fspath(path)
    try:
        tree = ET.parse(path_str)
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML in {path_str}: {exc}") from exc
    except OSError as exc:
        raise ParseError(f"cannot read {path_str}: {exc}") from exc
    doc_name = name if name is not None else os.path.basename(path_str)
    return _from_element(tree.getroot(), doc_name, tokenizer, keyword_tags)


def parse_file_streaming(path: Union[str, "os.PathLike[str]"],
                         name: Optional[str] = None,
                         tokenizer: Optional[Tokenizer] = None,
                         keyword_tags: bool = True) -> Document:
    """Parse a large XML file with bounded memory (``iterparse``).

    Functionally identical to :func:`parse_file` (tested), but elements
    are consumed as soon as their end tag arrives: each closed
    element's text/attributes move into the
    :class:`~repro.xmltree.builder.DocumentBuilder` immediately and the
    ElementTree node is cleared, so peak memory is O(tree depth +
    builder output) instead of O(raw XML).

    Use for corpus ingestion; for small documents :func:`parse_file`
    is simpler and equally fast.
    """
    path_str = os.fspath(path)
    builder = DocumentBuilder(name=name if name is not None
                              else os.path.basename(path_str),
                              tokenizer=tokenizer,
                              keyword_tags=keyword_tags)
    # Builder ids of the open-element stack, aligned with iterparse's
    # start events.  Text is only final at the *end* event, so nodes
    # are created at start with empty text and patched at end via the
    # builder's internal arrays (same-module family access).
    stack: list[int] = []
    try:
        for event, element in ET.iterparse(path_str,
                                           events=("start", "end")):
            if not isinstance(element.tag, str):
                continue  # comments/PIs with lxml-style parsers
            if event == "start":
                tag = _local_name(element.tag)
                attrs = dict(element.attrib)
                if stack:
                    nid = builder.add_child(stack[-1], tag, "",
                                            attrs=attrs)
                else:
                    nid = builder.add_root(tag, "", attrs=attrs)
                stack.append(nid)
            else:  # end
                nid = stack.pop()
                builder._texts[nid] = _direct_text(element)
                # Free the element's payload but preserve its tail —
                # the tail belongs to the parent's direct text and is
                # collected at the parent's end event.
                tail = element.tail
                element.clear()
                element.tail = tail
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML in {path_str}: {exc}") from exc
    except OSError as exc:
        raise ParseError(f"cannot read {path_str}: {exc}") from exc
    if builder.node_count == 0:
        raise ParseError(f"no elements found in {path_str}")
    return builder.build()


def _direct_text(element: ET.Element) -> str:
    """The text belonging to ``element`` itself (text + child tails)."""
    parts = []
    if element.text and element.text.strip():
        parts.append(element.text.strip())
    for child in element:
        if child.tail and child.tail.strip():
            parts.append(child.tail.strip())
    return " ".join(parts)


def _from_element(root: ET.Element, name: str,
                  tokenizer: Optional[Tokenizer],
                  keyword_tags: bool) -> Document:
    builder = DocumentBuilder(name=name, tokenizer=tokenizer,
                              keyword_tags=keyword_tags)
    root_id = builder.add_root(_local_name(root.tag), _direct_text(root),
                               attrs=dict(root.attrib))
    stack: list[tuple[ET.Element, int]] = [(root, root_id)]
    while stack:
        element, node_id = stack.pop()
        # Children must be *created* in document order — creation order
        # defines sibling order in the builder.  Stack traversal order is
        # irrelevant because build() renumbers ids to preorder.
        for child in element:
            if not isinstance(child.tag, str):
                continue  # comment or processing instruction
            child_id = builder.add_child(node_id, _local_name(child.tag),
                                         _direct_text(child),
                                         attrs=dict(child.attrib))
            stack.append((child, child_id))
    return builder.build()


def _local_name(tag: str) -> str:
    """Strip a ``{namespace}`` prefix from an ElementTree tag."""
    if tag.startswith("{"):
        return tag.rpartition("}")[2]
    return tag
