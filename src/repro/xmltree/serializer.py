"""Render documents and fragments back to XML text.

Fragments are node subsets, so serialising one means emitting the induced
subtree: for every fragment node we emit its element with its attributes
and direct text, recursing only into children that are also fragment
members.  The result is well-formed XML rooted at the fragment root —
the "self-contained answer unit" the paper motivates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable
from xml.sax.saxutils import escape, quoteattr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.fragment import Fragment
    from .document import Document

__all__ = ["document_to_xml", "fragment_to_xml", "fragment_outline"]

_INDENT = "  "


def document_to_xml(document: "Document", indent: bool = True) -> str:
    """Serialise a whole document to an XML string."""
    return _subtree_to_xml(document, document.root,
                           frozenset(document.node_ids()), indent)


def fragment_to_xml(fragment: "Fragment", indent: bool = True) -> str:
    """Serialise a fragment to an XML string rooted at the fragment root."""
    return _subtree_to_xml(fragment.document, fragment.root,
                           fragment.nodes, indent)


def fragment_outline(fragment: "Fragment") -> str:
    """A compact one-node-per-line outline of a fragment, for CLI output.

    Example::

        n16:section "Query optimization..."
          n17:par "Optimization of XQuery..."
          n18:par "...XQuery engines..."
    """
    doc = fragment.document
    lines = []
    base_depth = doc.depth(fragment.root)
    for nid in sorted(fragment.nodes):
        pad = _INDENT * (doc.depth(nid) - base_depth)
        text = doc.text(nid)
        snippet = text[:40] + ("..." if len(text) > 40 else "")
        suffix = f' "{snippet}"' if snippet else ""
        lines.append(f"{pad}n{nid}:{doc.tag(nid)}{suffix}")
    return "\n".join(lines)


def _subtree_to_xml(document: "Document", root: int,
                    members: frozenset[int], indent: bool) -> str:
    pieces: list[str] = []
    _emit(document, root, members, 0, indent, pieces)
    return "".join(pieces)


def _emit(document: "Document", node: int, members: frozenset[int],
          level: int, indent: bool, out: list[str]) -> None:
    pad = _INDENT * level if indent else ""
    newline = "\n" if indent else ""
    tag = document.tag(node)
    attrs = "".join(f" {key}={quoteattr(value)}"
                    for key, value in document.attributes(node).items())
    kids = [c for c in document.children(node) if c in members]
    text = document.text(node)
    if not kids and not text:
        out.append(f"{pad}<{tag}{attrs}/>{newline}")
        return
    out.append(f"{pad}<{tag}{attrs}>")
    if text:
        out.append(escape(text))
    if kids:
        out.append(newline)
        for child in kids:
            _emit(document, child, members, level + 1, indent, out)
        out.append(pad)
    out.append(f"</{tag}>{newline}")
