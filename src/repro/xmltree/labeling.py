"""Structural labelling of document trees.

The algebra relies on a handful of classic tree labels, all computed in a
single pass when a :class:`~repro.xmltree.document.Document` is built:

``depth``
    Distance from the root (root = 0).
``pre``
    Depth-first preorder rank.  Documents normalise node ids so that
    ``pre(n) == n``; the label is still computed explicitly so that the
    invariant can be checked and so parsers may supply nodes in any order.
``size``
    Number of nodes in the subtree rooted at the node (including itself).
``post``
    Depth-first postorder rank, used by the relational backend.

With preorder + subtree size, ancestor tests become a constant-time
interval containment check::

    u is an ancestor-or-self of v  <=>  pre(u) <= pre(v) < pre(u) + size(u)

which is the standard *interval encoding* used throughout the XML
indexing literature.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import DocumentError

__all__ = ["TreeLabels", "compute_labels"]


class TreeLabels:
    """Immutable bundle of structural labels for one tree.

    Attributes
    ----------
    depth, pre, size, post:
        Lists indexed by node id.
    preorder:
        Node ids sorted by preorder rank (``preorder[pre[n]] == n``).
    """

    __slots__ = ("depth", "pre", "size", "post", "preorder")

    def __init__(self, depth: list[int], pre: list[int], size: list[int],
                 post: list[int], preorder: list[int]) -> None:
        self.depth = depth
        self.pre = pre
        self.size = size
        self.post = post
        self.preorder = preorder

    def is_ancestor_or_self(self, u: int, v: int) -> bool:
        """Return ``True`` iff ``u`` is ``v`` or an ancestor of ``v``."""
        pu = self.pre[u]
        return pu <= self.pre[v] < pu + self.size[u]

    def is_proper_ancestor(self, u: int, v: int) -> bool:
        """Return ``True`` iff ``u`` is a strict ancestor of ``v``."""
        return u != v and self.is_ancestor_or_self(u, v)


def compute_labels(parents: Sequence[Optional[int]],
                   children: Sequence[Sequence[int]]) -> TreeLabels:
    """Compute :class:`TreeLabels` for a tree given parent/children arrays.

    Parameters
    ----------
    parents:
        ``parents[n]`` is the parent id of node ``n`` or ``None`` for the
        root.  Exactly one root must exist.
    children:
        ``children[n]`` lists the child ids of ``n`` in document order.

    Raises
    ------
    DocumentError
        If the arrays do not describe a single rooted tree (no root, more
        than one root, a cycle, or unreachable nodes).
    """
    n = len(parents)
    if n == 0:
        raise DocumentError("a document must contain at least one node")
    roots = [i for i, p in enumerate(parents) if p is None]
    if len(roots) != 1:
        raise DocumentError(f"expected exactly one root node, found "
                            f"{len(roots)}")
    root = roots[0]

    depth = [0] * n
    pre = [-1] * n
    size = [1] * n
    post = [-1] * n
    preorder: list[int] = []

    # Iterative DFS: preorder on entry, postorder + subtree size on exit.
    pre_counter = 0
    post_counter = 0
    # Stack entries are (node, child-iterator-index).
    stack: list[tuple[int, int]] = [(root, 0)]
    pre[root] = pre_counter
    pre_counter += 1
    preorder.append(root)
    visited = 1
    while stack:
        node, child_idx = stack[-1]
        kids = children[node]
        if child_idx < len(kids):
            stack[-1] = (node, child_idx + 1)
            child = kids[child_idx]
            if pre[child] != -1:
                raise DocumentError(f"node {child} reached twice; the edge "
                                    "arrays contain a cycle or shared child")
            depth[child] = depth[node] + 1
            pre[child] = pre_counter
            pre_counter += 1
            preorder.append(child)
            visited += 1
            stack.append((child, 0))
        else:
            stack.pop()
            post[node] = post_counter
            post_counter += 1
            if stack:
                size[stack[-1][0]] += size[node]

    if visited != n:
        raise DocumentError(f"{n - visited} node(s) unreachable from the "
                            "root; the document is not a connected tree")
    return TreeLabels(depth, pre, size, post, preorder)
