"""Document tree substrate: rooted ordered trees with keyword payloads.

This package implements the paper's Definition 1 (documents) plus the
structural machinery the algebra needs: preorder labelling, O(1)
ancestor tests, spanning-subtree computation, XML parsing and fragment
serialisation.
"""

from .builder import DocumentBuilder
from .document import Document
from .labeling import TreeLabels, compute_labels
from .navigation import (fragment_leaves, fragment_root, is_connected,
                         path_to_ancestor, spanning_nodes)
from .node import NodeView
from .parser import parse, parse_file, parse_file_streaming
from .serializer import document_to_xml, fragment_outline, fragment_to_xml
from .treestats import DocumentStats, document_stats

__all__ = [
    "DocumentStats",
    "document_stats",
    "Document",
    "DocumentBuilder",
    "NodeView",
    "TreeLabels",
    "compute_labels",
    "parse",
    "parse_file",
    "parse_file_streaming",
    "document_to_xml",
    "fragment_to_xml",
    "fragment_outline",
    "spanning_nodes",
    "is_connected",
    "fragment_root",
    "fragment_leaves",
    "path_to_ancestor",
]
