"""Document shape statistics.

Workload design and experiment reporting need to characterise the
trees being queried — depth, fanout, tag mix, text volume.  This
module computes a compact :class:`DocumentStats` summary used by the
workload generators' self-checks and the benchmark reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from statistics import mean
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .document import Document

__all__ = ["DocumentStats", "document_stats"]


@dataclass(frozen=True)
class DocumentStats:
    """Shape summary of one document tree.

    Attributes
    ----------
    nodes, leaves, max_depth:
        Basic counts.
    mean_depth:
        Average node depth.
    max_fanout, mean_fanout:
        Children-per-internal-node statistics.
    tag_histogram:
        Tag → occurrence count, most common first.
    depth_histogram:
        Depth → node count.
    vocabulary_size:
        Number of distinct keywords over all nodes.
    mean_keywords_per_node:
        Average ``|keywords(n)|``.
    """

    nodes: int
    leaves: int
    max_depth: int
    mean_depth: float
    max_fanout: int
    mean_fanout: float
    tag_histogram: tuple[tuple[str, int], ...]
    depth_histogram: tuple[tuple[int, int], ...]
    vocabulary_size: int
    mean_keywords_per_node: float

    def describe(self) -> str:
        """A multi-line human-readable summary."""
        top_tags = ", ".join(f"{tag}×{count}"
                             for tag, count in self.tag_histogram[:5])
        return "\n".join([
            f"nodes={self.nodes} leaves={self.leaves} "
            f"max_depth={self.max_depth} "
            f"mean_depth={self.mean_depth:.2f}",
            f"fanout max={self.max_fanout} mean={self.mean_fanout:.2f}",
            f"tags: {top_tags}",
            f"vocabulary={self.vocabulary_size} "
            f"keywords/node={self.mean_keywords_per_node:.2f}",
        ])


def document_stats(document: "Document") -> DocumentStats:
    """Compute :class:`DocumentStats` in one pass over the tree."""
    depths = [document.depth(n) for n in document.node_ids()]
    fanouts = [len(document.children(n)) for n in document.node_ids()
               if document.children(n)]
    tags = Counter(document.tag(n) for n in document.node_ids())
    depth_counts = Counter(depths)
    keyword_sizes = [len(document.keywords(n))
                     for n in document.node_ids()]
    leaves = sum(1 for n in document.node_ids() if document.is_leaf(n))
    return DocumentStats(
        nodes=document.size,
        leaves=leaves,
        max_depth=max(depths),
        mean_depth=mean(depths),
        max_fanout=max(fanouts, default=0),
        mean_fanout=mean(fanouts) if fanouts else 0.0,
        tag_histogram=tuple(tags.most_common()),
        depth_histogram=tuple(sorted(depth_counts.items())),
        vocabulary_size=len(document.vocabulary()),
        mean_keywords_per_node=mean(keyword_sizes),
    )
