"""Programmatic construction of :class:`~repro.xmltree.document.Document`.

The builder accepts nodes in any order (a parent merely has to be added
before its children) and normalises node ids to preorder ranks when
:meth:`DocumentBuilder.build` is called, as the document model requires.

Example
-------
>>> from repro.xmltree.builder import DocumentBuilder
>>> b = DocumentBuilder(name="tiny")
>>> article = b.add_root("article")
>>> sec = b.add_child(article, "section", text="XQuery basics")
>>> _ = b.add_child(sec, "par", text="optimization of XQuery engines")
>>> doc = b.build()
>>> doc.size
3
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import DocumentError
from ..index.tokenizer import Tokenizer
from .document import Document

__all__ = ["DocumentBuilder"]


class DocumentBuilder:
    """Incrementally assemble a document tree, then :meth:`build` it.

    Parameters
    ----------
    name:
        Human-readable document name carried onto the built document.
    tokenizer:
        Used to derive each node's keyword set from its tag, attributes
        and text, following the paper's convention of not distinguishing
        tag/attribute names from text content.  Pass ``None`` to use the
        default tokenizer.
    keyword_tags:
        Whether tag names contribute to ``keywords(n)`` (default True,
        per the paper: "we do not distinguish between tag/attribute names
        and text contents").
    """

    def __init__(self, name: str = "document",
                 tokenizer: Optional[Tokenizer] = None,
                 keyword_tags: bool = True) -> None:
        self._name = name
        self._tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self._keyword_tags = keyword_tags
        self._tags: list[str] = []
        self._texts: list[str] = []
        self._parents: list[Optional[int]] = []
        self._children: list[list[int]] = []
        self._attrs: list[dict[str, str]] = []
        self._extra_keywords: list[set[str]] = []
        self._root: Optional[int] = None
        self._last_id_mapping: Optional[dict[int, int]] = None

    @property
    def node_count(self) -> int:
        """Number of nodes added so far."""
        return len(self._tags)

    def add_root(self, tag: str, text: str = "",
                 attrs: Optional[Mapping[str, str]] = None) -> int:
        """Add the root node.  Must be called exactly once, first."""
        if self._root is not None:
            raise DocumentError("document already has a root node")
        self._root = self._add(tag, text, None, attrs)
        return self._root

    def add_child(self, parent: int, tag: str, text: str = "",
                  attrs: Optional[Mapping[str, str]] = None) -> int:
        """Add a child of ``parent`` (appended after existing siblings)."""
        if not 0 <= parent < len(self._tags):
            raise DocumentError(f"unknown parent id {parent}")
        return self._add(tag, text, parent, attrs)

    def add_keywords(self, node_id: int, keywords) -> None:
        """Attach extra keywords to a node beyond its tokenized content.

        Useful for workloads that plant specific query terms at specific
        nodes (e.g. reconstructing the paper's Figure 1 document).
        """
        self._extra_keywords[node_id].update(
            self._tokenizer.normalize(k) for k in keywords)

    def _add(self, tag: str, text: str, parent: Optional[int],
             attrs: Optional[Mapping[str, str]]) -> int:
        nid = len(self._tags)
        self._tags.append(tag)
        self._texts.append(text)
        self._parents.append(parent)
        self._children.append([])
        self._attrs.append(dict(attrs) if attrs else {})
        self._extra_keywords.append(set())
        if parent is not None:
            self._children[parent].append(nid)
        return nid

    def _node_keywords(self, nid: int) -> frozenset[str]:
        words: set[str] = set(self._tokenizer.tokenize(self._texts[nid]))
        if self._keyword_tags:
            words.update(self._tokenizer.tokenize(self._tags[nid]))
            for key, value in self._attrs[nid].items():
                words.update(self._tokenizer.tokenize(key))
                words.update(self._tokenizer.tokenize(value))
        words.update(self._extra_keywords[nid])
        return frozenset(words)

    @property
    def last_id_mapping(self) -> Optional[dict[int, int]]:
        """Builder-id → final-preorder-id mapping of the last build().

        ``None`` until :meth:`build` has been called.  Useful when nodes
        were added out of preorder and the caller needs to locate them
        in the built document.
        """
        return self._last_id_mapping

    def build(self) -> Document:
        """Produce the immutable document, renumbering ids to preorder."""
        if self._root is None:
            raise DocumentError("cannot build an empty document")
        order = self._preorder()
        rank = {old: new for new, old in enumerate(order)}
        self._last_id_mapping = dict(rank)
        n = len(order)
        tags = [self._tags[order[i]] for i in range(n)]
        texts = [self._texts[order[i]] for i in range(n)]
        attrs = [self._attrs[order[i]] for i in range(n)]
        parents: list[Optional[int]] = [
            rank[self._parents[order[i]]]
            if self._parents[order[i]] is not None else None
            for i in range(n)
        ]
        children = [[rank[c] for c in self._children[order[i]]]
                    for i in range(n)]
        keywords = [self._node_keywords(order[i]) for i in range(n)]
        return Document(tags, texts, parents, children, keywords,
                        attrs=attrs, name=self._name)

    def _preorder(self) -> list[int]:
        order: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self._children[node]))
        if len(order) != len(self._tags):
            raise DocumentError("some nodes are unreachable from the root")
        return order
