"""Process-pool collection search with deterministic merge.

:class:`ParallelExecutor` fans a collection search out over a
``concurrent.futures.ProcessPoolExecutor`` while keeping the results
**bit-identical** to the serial path:

* the ``{name: Document}`` payload is shipped once, at pool init, into a
  module-level worker state; each worker lazily builds and keeps *warm*
  per-document structures (inverted index, LCA index, interval kernel,
  a per-worker :class:`~repro.core.algebra.JoinCache`) so repeated
  queries pay the setup cost once per worker, not once per task;
* work is scheduled as chunks of ``(document, query)`` items, and the
  conjunctive early exit runs *in-band*: a worker probes its inverted
  index and returns a skip marker instead of evaluating a document that
  cannot match;
* workers never pickle :class:`~repro.core.fragment.Fragment` or
  :class:`~repro.xmltree.document.Document` objects back.  They return
  plain node-id tuples and the parent rehydrates fragments against its
  *own* document objects — fragment equality requires document
  identity, so this is what makes parallel output exactly equal to
  serial output;
* the merge walks documents in the caller's target order, so result
  dictionaries iterate identically however chunks complete;
* telemetry survives the pool: when the caller's
  :class:`~repro.obs.Observability` handle is enabled, each worker runs
  its queries under a real per-worker handle and ships span trees,
  metric increments and query records back in-band as an
  :class:`~repro.obs.delta.ObsDelta` next to the chunk's rows; the
  parent merges them (spans and records labeled ``worker=N``, metrics
  onto the same series the serial path uses), so ``--trace``,
  ``--query-log`` and Prometheus output mean the same thing at any
  worker count.

Start method: ``fork`` is preferred (worker state is inherited
copy-on-write, so even large corpora ship for free); on platforms
without it the executor falls back to ``spawn``, where the payload is
pickled through :meth:`Document.__getstate__`.  See
``docs/parallelism.md``.

Fault tolerance: every dispatch runs under a
:class:`~repro.exec.resilience.RetryPolicy` — per-chunk deadlines,
bounded retries with exponential backoff, automatic pool respawn on
worker crash, and (by default) graceful degradation to an in-process
serial re-evaluation of the surviving chunks, so callers get
serial-identical results even when workers are killed or hang.  See
``docs/robustness.md`` and :mod:`repro.exec.faults` for the
fault-injection hooks that exercise these paths deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Iterable, Mapping, Optional, Sequence

from ..collection.collection import CollectionResult
from ..core.algebra import JoinCache, KERNEL_NAMES
from ..core.fragment import Fragment
from ..core.query import Query, QueryResult
from ..core.strategies import Strategy, evaluate
from ..errors import (BudgetExceeded, DocumentError, ExecutionError,
                      QueryError)
from ..guard.budget import QueryBudget
from ..index.inverted import InvertedIndex
from ..obs import (CHUNK_FALLBACKS, CHUNK_RETRIES, CHUNK_TIMEOUTS,
                   DOCUMENTS_SKIPPED, EXEC_DEGRADED,
                   MUTATION_WORKER_REATTACH, NOOP,
                   FlightRecorder, MetricsRegistry, Observability,
                   POOL_CHUNKS, POOL_CHUNK_SECONDS,
                   POOL_DISPATCH_SECONDS, POOL_RESPAWNS, POOL_TASKS,
                   POOL_WORKERS, QueryLog, RecorderConfig, SpanTracer,
                   WORKER_CRASHES, capture_delta, merge_delta)
from ..obs.tracer import NULL_TRACER
from ..storage.shards.reader import ShardIndex
from ..xmltree.document import Document
from .faults import FaultPlan, apply_fault
from .hints import ChunkHint
from .resilience import (DEFAULT_POLICY, FALLBACK_SERIAL, ResilienceReport,
                         RetryPolicy)

__all__ = ["ParallelExecutor", "default_workers", "default_start_method"]


def default_workers() -> int:
    """The default pool size: one worker per available CPU."""
    return os.cpu_count() or 1


def default_start_method() -> str:
    """``fork`` where available (Linux/macOS), else ``spawn``."""
    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")


# ----------------------------------------------------------------------
# Worker side: module-level state, populated once per worker at pool
# init (inherited via fork, or unpickled under spawn) and warmed lazily.
# ----------------------------------------------------------------------

_WORKER_DOCUMENTS: Optional[Mapping[str, Document]] = None
_WORKER_SHARD_INDEX = None  # ShardIndex or mutation.Snapshot
_WORKER_MUTABLE_PATH: Optional[str] = None
_WORKER_MUTABLE_EPOCH: Optional[int] = None
_WORKER_INDEXES: dict[str, InvertedIndex] = {}
_WORKER_CACHE: Optional[JoinCache] = None
_WORKER_OBS: Optional[Observability] = None
_WORKER_OBS_TRACED: Optional[bool] = None
_WORKER_OBS_RECORDER: Optional[dict] = None
_WORKER_BASELINE: dict = {}


class _ShardDocumentMap(Mapping):
    """Read-only ``{name: Document}`` view over an attached shard index.

    Lookups materialise lazily through the index's cache, so iterating
    names (scheduling) touches only the manifest while ``map[name]``
    (merge / fallback) decodes exactly the documents that matched.
    """

    __slots__ = ("_index",)

    def __init__(self, index: ShardIndex) -> None:
        self._index = index

    def __getitem__(self, name: str) -> Document:
        return self._index.document(name)

    def __iter__(self):
        return iter(self._index.names())

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, name) -> bool:
        return name in self._index


def _init_worker(documents: Mapping[str, Document]) -> None:
    global _WORKER_DOCUMENTS, _WORKER_SHARD_INDEX, _WORKER_INDEXES
    global _WORKER_CACHE, _WORKER_OBS, _WORKER_OBS_TRACED
    global _WORKER_OBS_RECORDER, _WORKER_BASELINE
    _WORKER_DOCUMENTS = documents
    _WORKER_SHARD_INDEX = None
    _WORKER_INDEXES = {}
    _WORKER_CACHE = JoinCache()
    _WORKER_OBS = None
    _WORKER_OBS_TRACED = None
    _WORKER_OBS_RECORDER = None
    _WORKER_BASELINE = {}


def _init_worker_attach(spec: dict) -> None:
    """Pool initializer for the sharded-index mode.

    Instead of unpickling a corpus, the worker attaches its own
    :class:`~repro.storage.shards.reader.ShardIndex` handle from the
    parent's picklable spec — ``mmap`` over the shard files, or
    ``multiprocessing.shared_memory`` segments when the spec carries
    their names (the spawn path).  Attach cost is O(shards), so pool
    spin-up no longer scales with corpus size.
    """
    global _WORKER_DOCUMENTS, _WORKER_SHARD_INDEX
    index = ShardIndex.from_spec(spec)
    _init_worker(_ShardDocumentMap(index))
    _WORKER_SHARD_INDEX = index


def _init_worker_mutable(path: str) -> None:
    """Pool initializer for the mutable-index mode.

    Only the directory path ships at pool init; the worker attaches an
    epoch snapshot lazily when the first chunk names one — and
    *re-attaches* whenever a later chunk names a different epoch, so
    index mutation never forces a pool rebuild.
    """
    global _WORKER_MUTABLE_PATH, _WORKER_MUTABLE_EPOCH
    _init_worker({})
    _WORKER_MUTABLE_PATH = path
    _WORKER_MUTABLE_EPOCH = None


def _ensure_worker_epoch(epoch: int, obs) -> None:
    """Re-attach this worker's snapshot when the chunk's epoch moved.

    The old snapshot (and its mmap base) closes first; the per-document
    warm state resets because names may now resolve to different
    content.  Epoch pinning in the parent guarantees the named epoch's
    files are still on disk.
    """
    global _WORKER_DOCUMENTS, _WORKER_SHARD_INDEX, _WORKER_INDEXES
    global _WORKER_MUTABLE_EPOCH
    if _WORKER_MUTABLE_EPOCH == epoch:
        return
    from ..storage.mutation import attach_snapshot
    if _WORKER_SHARD_INDEX is not None:
        _WORKER_SHARD_INDEX.close()
    snapshot = attach_snapshot(_WORKER_MUTABLE_PATH, epoch)
    _WORKER_SHARD_INDEX = snapshot
    _WORKER_DOCUMENTS = _ShardDocumentMap(snapshot)
    _WORKER_INDEXES = {}
    reattached = _WORKER_MUTABLE_EPOCH is not None
    _WORKER_MUTABLE_EPOCH = epoch
    if reattached and obs.enabled:
        obs.metrics.counter(
            MUTATION_WORKER_REATTACH,
            "Pool workers that re-attached after an epoch change."
        ).inc()


def _worker_obs(traced: bool,
                recorder_spec: Optional[dict] = None) -> Observability:
    """This worker's live observability handle.

    Created on the first telemetry-enabled chunk and kept warm (the
    metrics registry persists across chunks; increments ship as diffs
    against a rolling baseline).  Rebuilt if the parent's tracing
    preference or flight-recorder config changes between calls.  A
    worker recorder runs in ``worker_mode`` — it aggregates histograms
    and cost counters into the worker registry (whose increments merge
    additively) but never publishes the calibration gauge; profiles
    and retained traces drain into the chunk's
    :class:`~repro.obs.delta.ObsDelta`.
    """
    global _WORKER_OBS, _WORKER_OBS_TRACED, _WORKER_OBS_RECORDER
    global _WORKER_BASELINE
    if _WORKER_OBS is None or _WORKER_OBS_TRACED != traced \
            or _WORKER_OBS_RECORDER != recorder_spec:
        recorder = None
        if recorder_spec is not None:
            recorder = FlightRecorder(
                RecorderConfig.from_dict(recorder_spec),
                worker_mode=True)
        _WORKER_OBS = Observability(
            tracer=SpanTracer() if traced else NULL_TRACER,
            metrics=MetricsRegistry(),
            query_log=QueryLog(max_records=1 << 16),
            recorder=recorder)
        _WORKER_OBS_TRACED = traced
        _WORKER_OBS_RECORDER = (dict(recorder_spec)
                                if recorder_spec is not None else None)
        _WORKER_BASELINE = {}
    return _WORKER_OBS


def _worker_index(name: str) -> InvertedIndex:
    """This worker's warm inverted index for one document.

    Built on first touch, together with the document's LCA index, so
    every later query against the document starts hot.
    """
    index = _WORKER_INDEXES.get(name)
    if index is None:
        if _WORKER_SHARD_INDEX is not None:
            # The shard materialiser already decoded the postings; the
            # index is adopted, not rebuilt by rescanning keywords.
            index = _WORKER_SHARD_INDEX.inverted_index(name)
            document = index.document
        else:
            document = _WORKER_DOCUMENTS[name]
            index = InvertedIndex(document)
        if document.size > 1:
            document.lca(0, document.size - 1)
        _WORKER_INDEXES[name] = index
    return index


def _worker_contains(name: str, term: str) -> bool:
    """Early-exit probe: does the named document contain ``term``?

    In sharded mode an unmaterialised document answers straight off the
    mapped postings section (a binary search over the page cache), so
    skipped documents are never decoded at all.
    """
    if name not in _WORKER_INDEXES and _WORKER_SHARD_INDEX is not None:
        return _WORKER_SHARD_INDEX.contains(name, term)
    return _worker_index(name).contains(term)


def _budget_marker(exc: BudgetExceeded) -> dict:
    """A picklable row payload standing in for a budget abort.

    Budget aborts travel as *data*, not exceptions: a doomed query must
    not look like a worker failure to the retry machinery (retrying a
    spent deadline can never succeed), so the worker finishes its chunk
    normally and the parent re-raises deterministically at merge time.
    """
    return {"budget_exceeded": exc.to_dict()}


def _raise_budget_marker(marker: dict) -> None:
    info = marker["budget_exceeded"]
    raise BudgetExceeded(info["message"], reason=info["reason"],
                         elapsed=info["elapsed_s"],
                         progress=info["progress"])


def _run_chunk(queries: Sequence[Query], items: Sequence[tuple[str, int]],
               strategy_value: str, kernel: Optional[str],
               obs_spec: Optional[dict] = None,
               fault: Optional[dict] = None,
               budget: Optional[QueryBudget] = None,
               shard: Optional[int] = None,
               extra_filter=None,
               epoch: Optional[int] = None):
    """Evaluate one chunk of ``(document name, query index)`` items.

    Returns ``(rows, chunk_seconds, delta, pid)`` where each row is
    ``(name, query_index, payload)`` and ``payload`` is ``None`` for a
    document skipped by the in-band early exit, else
    ``(fragment node tuples, elapsed, stats dict)`` — plain picklable
    data only, never Fragment/Document objects.  When the parent's
    telemetry is enabled (``obs_spec`` given), ``delta`` carries this
    worker's span trees, metric increments and query records for the
    chunk; otherwise it is ``None``.

    ``fault`` is an optional fault-injection directive from
    :class:`~repro.exec.faults.FaultPlan`, executed before evaluation.
    If the chunk fails (injected or real), the partial telemetry is
    discarded so a retried chunk never double-counts.

    ``budget`` is an optional started :class:`~repro.guard.QueryBudget`
    shipped from the parent.  Its deadline is an absolute
    ``CLOCK_MONOTONIC`` timestamp (system-wide on Linux), so each item
    evaluates under a fresh per-item clone that sees exactly the wall
    time the parent request has left.  An item that blows the budget
    becomes a marker row (see :func:`_budget_marker`) rather than a
    chunk failure.
    """
    global _WORKER_BASELINE
    started = time.perf_counter()
    if extra_filter is not None:
        # An early-stop hint tightened the round after this chunk was
        # built: conjoin the (anti-monotonic) filter so the chunk only
        # proves fragments that can still matter to the consumer.
        queries = [Query(q.terms, q.predicate & extra_filter)
                   for q in queries]
    strategy = Strategy(strategy_value)
    obs = (_worker_obs(bool(obs_spec.get("trace")),
                       obs_spec.get("recorder"))
           if obs_spec is not None else NOOP)
    if epoch is not None:
        # Mutable-index mode: the chunk is pinned to one epoch; attach
        # (or re-attach) this worker's snapshot to match before any
        # probe or evaluation touches the corpus.
        _ensure_worker_epoch(epoch, obs)
    if obs.enabled and obs.recorder is not None:
        # Sharded chunks never straddle shards, so one ambient tag
        # covers every profile this chunk records.
        obs.recorder.set_context(shard=shard)
    rows = []
    try:
        if fault is not None:
            apply_fault(fault)
        for name, query_index in items:
            query = queries[query_index]
            if not all(_worker_contains(name, term)
                       for term in query.terms):
                rows.append((name, query_index, None))
                continue
            index = _worker_index(name)
            try:
                result = evaluate(_WORKER_DOCUMENTS[name], query,
                                  strategy=strategy, index=index,
                                  cache=_WORKER_CACHE, kernel=kernel,
                                  obs=obs,
                                  budget=(budget.fresh_item()
                                          if budget is not None else None))
            except BudgetExceeded as exc:
                rows.append((name, query_index, _budget_marker(exc)))
                continue
            payload = (tuple(sorted(tuple(sorted(f.nodes))
                                    for f in result.fragments)),
                       result.elapsed, result.stats)
            rows.append((name, query_index, payload))
    except BaseException:
        # Discard the failed attempt's telemetry: advance the metrics
        # baseline and drain the tracer/query log, so the eventual
        # successful attempt (here or elsewhere) ships exactly once.
        if obs_spec is not None:
            _, _WORKER_BASELINE = capture_delta(obs, _WORKER_BASELINE)
        raise
    delta = None
    if obs_spec is not None:
        _WORKER_CACHE.export_metrics(obs.metrics)
        delta, _WORKER_BASELINE = capture_delta(obs, _WORKER_BASELINE)
    return rows, time.perf_counter() - started, delta, os.getpid()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class ParallelExecutor:
    """A warm process pool evaluating queries over a fixed document set.

    Parameters
    ----------
    documents:
        ``{name: Document}`` — the corpus, shipped to workers once at
        pool init.  The executor takes a snapshot; add/remove requires a
        new executor (collections handle this by invalidating their
        cached executor on :meth:`~DocumentCollection.add`).
    workers:
        Pool size; defaults to :func:`default_workers`.
    start_method:
        ``"fork"`` (default where available) or ``"spawn"``.
    chunk_size:
        Items per scheduled chunk; default balances load as
        ``ceil(items / (4 * workers))``.
    obs:
        Default :class:`~repro.obs.Observability` handle for pool
        metrics; each call may override it.
    resilience:
        Default :class:`~repro.exec.resilience.RetryPolicy`; falls back
        to :data:`~repro.exec.resilience.DEFAULT_POLICY` (no deadline,
        two retries, serial degradation).  Each call may override it.
    faults:
        Optional :class:`~repro.exec.faults.FaultPlan` injected into
        every dispatch (tests / bench runner); each call may override.
    """

    def __init__(self, documents: Optional[Mapping[str, Document]] = None,
                 workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 chunk_size: Optional[int] = None,
                 obs: Optional[Observability] = None,
                 resilience: Optional[RetryPolicy] = None,
                 faults: Optional[FaultPlan] = None,
                 index_path=None,
                 mutable_index=None,
                 shared_memory: Optional[bool] = None) -> None:
        modes = sum(source is not None
                    for source in (documents, index_path, mutable_index))
        if modes != 1:
            raise DocumentError("ParallelExecutor requires exactly one "
                                "of documents=, index_path= or "
                                "mutable_index=")
        self._mutable_path: Optional[str] = None
        if mutable_index is not None:
            # Mutable-index mode: the corpus is an epoch-versioned live
            # index.  Workers receive only the directory path and
            # attach the epoch each run names (re-attaching when it
            # changes); every run must pass ``snapshot=`` — the pool
            # itself outlives any number of commits.
            self._index = None
            self._mutable_path = os.fspath(mutable_index)
            self.documents = {}
        elif index_path is not None:
            # Sharded-index mode: the corpus stays on disk; this process
            # and every worker attach their own mmap/shared-memory
            # handles, and documents materialise only when they match.
            self._index = (index_path if isinstance(index_path, ShardIndex)
                           else ShardIndex.attach(
                               index_path,
                               obs=obs if obs is not None else NOOP))
            self.documents: Mapping[str, Document] = \
                _ShardDocumentMap(self._index)
        else:
            self._index = None
            self.documents = dict(documents)
        if not self.documents and self._mutable_path is None:
            raise DocumentError("ParallelExecutor requires at least one "
                                "document")
        self._shared_memory = shared_memory
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise QueryError(f"workers must be >= 1, got {self.workers}")
        self.start_method = (start_method if start_method is not None
                             else default_start_method())
        self._chunk_size = chunk_size
        self._obs = obs if obs is not None else NOOP
        self.resilience = (resilience if resilience is not None
                           else DEFAULT_POLICY)
        self.faults = faults
        self.last_report: ResilienceReport = ResilienceReport()
        self.degraded = False
        self._worker_ids: dict[int, str] = {}
        #: The attached shard index in ``index_path=`` mode, else None.
        self.index = self._index
        # Parent-side warm state for the serial fallback path (lazily
        # built; mirrors a worker's per-document structures).
        self._parent_indexes: dict[str, InvertedIndex] = {}
        self._parent_cache = JoinCache()
        self._pool = self._new_pool()
        if self._obs.enabled:
            self._obs.metrics.gauge(
                POOL_WORKERS, "Workers in the current query pool."
            ).set(self.workers)

    def _new_pool(self) -> ProcessPoolExecutor:
        context = multiprocessing.get_context(self.start_method)
        if self._mutable_path is not None:
            return ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context,
                initializer=_init_worker_mutable,
                initargs=(self._mutable_path,))
        if self._index is not None:
            # Ship an attach recipe, not the corpus.  Under spawn the
            # shard bytes travel via shared-memory segments by default
            # (no re-read from disk); under fork plain mmap is already
            # zero-cost.  ``shared_memory=`` overrides the default.
            use_shm = (self._shared_memory
                       if self._shared_memory is not None
                       else self.start_method == "spawn")
            spec = self._index.attach_spec(shared_memory=use_shm)
            return ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context,
                initializer=_init_worker_attach, initargs=(spec,))
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context,
            initializer=_init_worker, initargs=(self.documents,))

    def _respawn_pool(self, report: ResilienceReport) -> None:
        """Tear the pool down hard and rebuild it (crash / hang path).

        ``shutdown`` alone cannot reclaim a wedged worker, so live
        worker processes are terminated first; futures still pending on
        the old pool resolve broken or cancelled and their chunks are
        re-dispatched by the caller.
        """
        pool, self._pool = self._pool, None
        try:
            for process in list(getattr(pool, "_processes", {}).values()):
                if process.is_alive():
                    process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass  # the old pool is unusable either way
        self._pool = self._new_pool()
        report.respawns += 1

    def _worker_label(self, pid: int) -> str:
        """A stable small ``worker=N`` label for one worker process.

        Indexes are assigned in order of first telemetry arrival, so
        labels are dense (0..workers-1) without cross-process
        coordination.
        """
        label = self._worker_ids.get(pid)
        if label is None:
            label = str(len(self._worker_ids))
            self._worker_ids[pid] = label
        return label

    # ------------------------------------------------------------------
    # Resilient dispatch
    # ------------------------------------------------------------------

    def _record_outcome(self, payload, outcomes, ob,
                        hint: Optional[ChunkHint] = None) -> None:
        """Fold one successful chunk result into the parent state."""
        rows, chunk_seconds, delta, pid = payload
        for name, query_index, row_payload in rows:
            outcomes[(name, query_index)] = row_payload
        if hint is not None:
            hint.observe(rows)
        if ob.enabled:
            ob.metrics.histogram(
                POOL_CHUNK_SECONDS,
                "Worker-measured seconds per chunk."
            ).observe(chunk_seconds)
            merge_delta(ob, delta, worker=self._worker_label(pid))

    def _fail(self, chunk_index: int, attempts: list[int],
              policy: RetryPolicy, pending: list[int],
              fallback: list[int], report: ResilienceReport,
              reason: str, cause: Optional[BaseException] = None) -> None:
        """Charge one failed attempt to a chunk and decide its fate.

        Within budget the chunk re-enters ``pending``; past it, the
        chunk joins the serial ``fallback`` list — or, with
        ``fallback="never"``, the whole run raises.
        """
        attempts[chunk_index] += 1
        report.note(f"chunk {chunk_index} attempt {attempts[chunk_index]}:"
                    f" {reason}")
        if attempts[chunk_index] <= policy.max_retries:
            report.retries += 1
            pending.append(chunk_index)
        elif policy.fallback == FALLBACK_SERIAL:
            fallback.append(chunk_index)
        else:
            raise ExecutionError(
                f"chunk {chunk_index} failed {attempts[chunk_index]} "
                f"time(s) ({reason}) and fallback is disabled"
            ) from cause

    def _dispatch(self, queries, chunks, strategy, kernel, obs_spec, ob,
                  policy: RetryPolicy, plan: Optional[FaultPlan],
                  outcomes, report: ResilienceReport,
                  budget: Optional[QueryBudget] = None,
                  chunk_keys: Optional[list] = None,
                  hint: Optional[ChunkHint] = None,
                  snapshot=None) -> None:
        """Run every chunk to completion, surviving crashes and hangs.

        Chunks are dispatched in waves; a wave is the current pending
        set.  Failures charge an attempt to the chunk that caused them
        (crash, deadline, in-band exception); chunks lost as collateral
        when the pool breaks are re-queued without being charged.
        Chunks that exhaust ``policy.max_retries`` are re-evaluated
        in-process at the end, through the exact serial path.

        An optional :class:`~repro.exec.hints.ChunkHint` lets a
        streaming consumer stop not-yet-submitted chunks and tighten
        their queries between waves; a hint that never fires leaves the
        dispatch bit-identical to a hintless run.
        """
        attempts = [0] * len(chunks)
        pending = list(range(len(chunks)))
        fallback: list[int] = []
        rng = random.Random()
        stalled_waves = 0
        while pending:
            if hint is not None and hint.stopped:
                hint.record_skip(len(pending),
                                 sum(len(chunks[ci]) for ci in pending))
                pending = []
                break
            retried = [ci for ci in pending if attempts[ci]]
            if retried:
                delay = max(policy.delay(attempts[ci] - 1, rng)
                            for ci in retried)
                if delay:
                    time.sleep(delay)
            wave, pending = pending, []
            if hint is not None and hint.window is not None \
                    and len(wave) > hint.window:
                # A narrow wave gives the consumer a chance to tighten
                # or stop between submissions.
                wave, pending = wave[:hint.window], wave[hint.window:]

            # Submit the wave.  A submit can only fail if the pool is
            # already broken; stash the rest of the wave for the next
            # round and let the collection loop (or, with nothing in
            # flight, an immediate respawn) repair the pool.
            futures: dict[int, object] = {}
            submit_broken = False
            for chunk_index in wave:
                if submit_broken:
                    pending.append(chunk_index)
                    continue
                fault = (plan.for_chunk(chunk_index, attempts[chunk_index])
                         if plan is not None else None)
                try:
                    futures[chunk_index] = self._pool.submit(
                        _run_chunk, queries, chunks[chunk_index],
                        strategy.value, kernel, obs_spec, fault, budget,
                        (chunk_keys[chunk_index]
                         if chunk_keys is not None else None),
                        hint.filter if hint is not None else None,
                        (snapshot.epoch if snapshot is not None
                         else None))
                except (BrokenExecutor, RuntimeError):
                    submit_broken = True
                    pending.append(chunk_index)
                    if not futures:
                        self._respawn_pool(report)
            if not futures:
                stalled_waves += 1
                if stalled_waves >= 2:
                    raise ExecutionError(
                        "worker pool cannot accept work after respawn; "
                        "giving up")
                continue
            stalled_waves = 0

            # Collect in submission order.  After a crash or timeout the
            # old pool is gone: salvage whatever already finished, and
            # re-queue the rest uncharged.
            broken = False
            try:
                for chunk_index, future in futures.items():
                    if broken:
                        if future.done() and not future.cancelled():
                            try:
                                self._record_outcome(
                                    future.result(timeout=0), outcomes,
                                    ob, hint=hint)
                                continue
                            except Exception:
                                pass
                        pending.append(chunk_index)
                        continue
                    try:
                        payload = future.result(timeout=policy.timeout_s)
                    except FuturesTimeout as exc:
                        report.timeouts += 1
                        self._respawn_pool(report)
                        broken = True
                        self._fail(chunk_index, attempts, policy, pending,
                                   fallback, report,
                                   reason=f"deadline of {policy.timeout_s}s"
                                          f" exceeded", cause=exc)
                    except BrokenExecutor as exc:
                        report.crashes += 1
                        self._respawn_pool(report)
                        broken = True
                        self._fail(chunk_index, attempts, policy, pending,
                                   fallback, report,
                                   reason=f"worker pool broke "
                                          f"({type(exc).__name__})",
                                   cause=exc)
                    except Exception as exc:
                        self._fail(chunk_index, attempts, policy, pending,
                                   fallback, report,
                                   reason=f"worker raised "
                                          f"{type(exc).__name__}: {exc}",
                                   cause=exc)
                    else:
                        self._record_outcome(payload, outcomes, ob,
                                             hint=hint)
            except ExecutionError:
                for future in futures.values():
                    future.cancel()
                raise

        # Graceful degradation: the surviving chunks run through the
        # exact serial path, in-process, so callers still get
        # serial-identical answers.
        for chunk_index in fallback:
            if hint is not None and hint.stopped:
                hint.record_skip(1, len(chunks[chunk_index]))
                continue
            if chunk_keys is not None:
                key = chunk_keys[chunk_index]
                report.failed_groups[key] = \
                    report.failed_groups.get(key, 0) + 1
            rows = self._serial_items(
                queries, chunks[chunk_index], strategy, kernel, ob,
                budget=budget,
                shard=(chunk_keys[chunk_index]
                       if chunk_keys is not None else None),
                snapshot=snapshot)
            for name, query_index, payload in rows:
                outcomes[(name, query_index)] = payload
            if hint is not None:
                hint.observe(rows)
            report.fallback_chunks += 1
            report.fallback_items += len(chunks[chunk_index])

    def _parent_index(self, name: str) -> InvertedIndex:
        """Warm parent-side inverted index for the serial fallback."""
        index = self._parent_indexes.get(name)
        if index is None:
            if self._index is not None:
                index = self._index.inverted_index(name)
                document = index.document
            else:
                document = self.documents[name]
                index = InvertedIndex(document)
            if document.size > 1:
                document.lca(0, document.size - 1)
            self._parent_indexes[name] = index
        return index

    def _serial_items(self, queries, items, strategy, kernel, ob,
                      budget: Optional[QueryBudget] = None,
                      shard: Optional[int] = None,
                      snapshot=None):
        """Evaluate one chunk's items in-process (degraded mode).

        Mirrors ``_run_chunk`` — including the conjunctive early exit
        and the per-item budget clones — against the parent's own
        documents, so the rows are bit-identical to what a healthy
        worker would have returned.  Telemetry lands directly on the
        parent handle, exactly like the serial path.
        """
        recorder = (getattr(ob, "recorder", None) if ob.enabled
                    else None)
        if recorder is not None and shard is not None:
            recorder.set_context(shard=shard)
        try:
            rows = []
            for name, query_index in items:
                query = queries[query_index]
                if snapshot is not None:
                    # Epoch-pinned fallback: probe and materialise
                    # through the snapshot, never the (stale-prone)
                    # parent-side warm cache.
                    if not all(snapshot.contains(name, term)
                               for term in query.terms):
                        rows.append((name, query_index, None))
                        continue
                    index = snapshot.inverted_index(name)
                    document = snapshot.document(name)
                else:
                    index = self._parent_index(name)
                    if not all(index.contains(term)
                               for term in query.terms):
                        rows.append((name, query_index, None))
                        continue
                    document = self.documents[name]
                try:
                    result = evaluate(
                        document, query,
                        strategy=strategy, index=index,
                        cache=self._parent_cache, kernel=kernel,
                        obs=ob,
                        budget=(budget.fresh_item()
                                if budget is not None else None))
                except BudgetExceeded as exc:
                    rows.append((name, query_index, _budget_marker(exc)))
                    continue
                payload = (tuple(sorted(tuple(sorted(f.nodes))
                                        for f in result.fragments)),
                           result.elapsed, result.stats)
                rows.append((name, query_index, payload))
            return rows
        finally:
            if recorder is not None and shard is not None:
                recorder.set_context(shard=None)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def search(self, query: Query,
               strategy: Strategy = Strategy.PUSHDOWN,
               documents: Optional[Iterable[str]] = None,
               kernel: Optional[str] = None,
               obs: Optional[Observability] = None,
               resilience: Optional[RetryPolicy] = None,
               faults: Optional[FaultPlan] = None,
               budget: Optional[QueryBudget] = None,
               hint: Optional[ChunkHint] = None,
               snapshot=None) -> CollectionResult:
        """Evaluate one query over the corpus; serial-identical result."""
        return self.run([query], strategy=strategy, documents=documents,
                        kernel=kernel, obs=obs, resilience=resilience,
                        faults=faults, budget=budget, hint=hint,
                        snapshot=snapshot)[0]

    def run(self, queries: Sequence[Query],
            strategy: Strategy = Strategy.PUSHDOWN,
            documents: Optional[Iterable[str]] = None,
            kernel: Optional[str] = None,
            obs: Optional[Observability] = None,
            resilience: Optional[RetryPolicy] = None,
            faults: Optional[FaultPlan] = None,
            budget: Optional[QueryBudget] = None,
            hint: Optional[ChunkHint] = None,
            snapshot=None
            ) -> list[CollectionResult]:
        """Evaluate a batch of queries in one scheduling wave.

        All ``(document, query)`` pairs are chunked together, so a
        multi-query batch keeps every worker busy even when single
        queries have few matching documents.  Returns one
        :class:`CollectionResult` per query, in query order.

        Dispatch is fault tolerant (see :mod:`repro.exec.resilience`):
        crashed or timed-out chunks are retried on a respawned pool,
        and chunks that exhaust the retry budget are re-evaluated
        serially in-process — so the result is serial-identical even
        under worker loss, unless ``resilience.fallback == "never"``
        (then :class:`~repro.errors.ExecutionError` is raised).

        ``budget`` composes with the retry machinery rather than
        fighting it: each ``(document, query)`` item evaluates under a
        fresh per-item clone sharing the parent's *absolute* deadline,
        and an item that blows its budget travels back as a marker row
        — not a chunk failure, so it is never retried — and is
        re-raised here as :class:`~repro.errors.BudgetExceeded`, in
        deterministic caller order, once dispatch completes.

        ``hint`` is an optional :class:`~repro.exec.hints.ChunkHint`
        from a streaming consumer.  Items abandoned via ``hint.stop()``
        are simply absent from ``per_document`` (the consumer asked for
        them to be dropped); a hint that never fires leaves the result
        bit-identical to a hintless run.
        """
        if kernel is not None and kernel not in KERNEL_NAMES:
            raise QueryError(f"unknown join kernel {kernel!r}; the "
                             f"parallel path accepts {list(KERNEL_NAMES)}")
        ob = obs if obs is not None else self._obs
        policy = resilience if resilience is not None else self.resilience
        plan = faults if faults is not None else self.faults
        queries = list(queries)
        if self._mutable_path is not None and snapshot is None:
            raise QueryError(
                "a mutable-index executor needs an epoch-pinned "
                "snapshot; pass snapshot= (see MutableIndex.snapshot)")
        if snapshot is not None:
            corpus = _ShardDocumentMap(snapshot)
        else:
            corpus = self.documents
        targets = (list(documents) if documents is not None
                   else list(corpus))
        for name in targets:
            if name not in corpus:
                raise DocumentError(f"unknown document {name!r}")
        items = [(name, qi) for qi in range(len(queries))
                 for name in targets]
        chunk_size = self._chunk_size or max(
            1, -(-len(items) // (4 * self.workers)))
        shard_of = None
        if self._index is not None:
            shard_of = self._index.shard_of
        elif snapshot is not None:
            # Delta documents report shard -1; they group into their
            # own chunks ahead of the mapped shards.
            shard_of = snapshot.shard_of
        if shard_of is not None:
            # Scatter: group items by shard so no chunk straddles a
            # shard boundary — each chunk touches exactly one mapped
            # file, failures attribute cleanly to a shard, and worker
            # page-cache locality follows the shard layout.  The merge
            # below still walks targets in caller order (the gather),
            # so results are unchanged.
            by_shard: dict[int, list] = {}
            for item in items:
                by_shard.setdefault(shard_of(item[0]), []).append(item)
            chunks = []
            chunk_keys: Optional[list] = []
            for shard in sorted(by_shard):
                group = by_shard[shard]
                for i in range(0, len(group), chunk_size):
                    chunks.append(group[i:i + chunk_size])
                    chunk_keys.append(shard)
        else:
            chunks = [items[i:i + chunk_size]
                      for i in range(0, len(items), chunk_size)]
            chunk_keys = None

        if budget is not None:
            # Start before shipping: workers clone the *absolute*
            # monotonic deadline, which is valid across processes.
            budget.start()
        obs_spec = None
        if ob.enabled:
            obs_spec = {"trace": ob.tracer.enabled}
            recorder = getattr(ob, "recorder", None)
            if recorder is not None:
                # Workers profile under the parent's recorder config;
                # their rings drain into each chunk's delta.
                obs_spec["recorder"] = recorder.config.to_dict()
        outcomes: dict[tuple[str, int], Optional[tuple]] = {}
        report = ResilienceReport()
        with ob.span("parallel-search", workers=self.workers,
                     queries=len(queries), items=len(items),
                     chunks=len(chunks)) as span:
            dispatch_started = time.perf_counter()
            try:
                self._dispatch(queries, chunks, strategy, kernel,
                               obs_spec, ob, policy, plan, outcomes,
                               report, budget=budget,
                               chunk_keys=chunk_keys, hint=hint,
                               snapshot=snapshot)
            finally:
                self.last_report = report
                self.degraded = report.degraded
                dispatch_seconds = time.perf_counter() - dispatch_started
                if ob.enabled:
                    m = ob.metrics
                    m.gauge(POOL_WORKERS,
                            "Workers in the current query pool."
                            ).set(self.workers)
                    m.counter(POOL_TASKS,
                              "(document, query) items dispatched to "
                              "the pool.").inc(len(items))
                    m.counter(POOL_CHUNKS, "Chunks dispatched to the pool."
                              ).inc(len(chunks))
                    m.histogram(POOL_DISPATCH_SECONDS,
                                "Parent-side submit-to-merge seconds."
                                ).observe(dispatch_seconds)
                    m.counter(CHUNK_RETRIES,
                              "Chunk attempts re-dispatched after a "
                              "failure.").inc(report.retries)
                    m.counter(CHUNK_TIMEOUTS,
                              "Chunks that blew the per-chunk deadline."
                              ).inc(report.timeouts)
                    m.counter(WORKER_CRASHES,
                              "Worker-pool breakages observed."
                              ).inc(report.crashes)
                    m.counter(POOL_RESPAWNS,
                              "Worker pools rebuilt after a crash or "
                              "hang.").inc(report.respawns)
                    m.counter(CHUNK_FALLBACKS,
                              "Chunks degraded to the in-process serial "
                              "fallback.").inc(report.fallback_chunks)
                    m.gauge(EXEC_DEGRADED,
                            "1 while the last parallel run needed the "
                            "serial fallback, else 0."
                            ).set(1 if report.degraded else 0)
                    span.set(dispatch_seconds=round(dispatch_seconds, 6))
                    if not report.clean:
                        span.set(retries=report.retries,
                                 timeouts=report.timeouts,
                                 crashes=report.crashes,
                                 respawns=report.respawns,
                                 fallback_chunks=report.fallback_chunks)

        results = []
        total_skipped = 0
        for query_index, query in enumerate(queries):
            per_document: dict[str, QueryResult] = {}
            for name in targets:  # caller order => deterministic merge
                if hint is not None:
                    if (name, query_index) not in outcomes:
                        continue  # abandoned via hint.stop()
                payload = outcomes[(name, query_index)]
                if payload is None:
                    total_skipped += 1
                    continue
                if isinstance(payload, dict):
                    # First budget abort in caller order wins, matching
                    # where the serial path would have raised.
                    _raise_budget_marker(payload)
                node_tuples, elapsed, stats = payload
                document = corpus[name]
                fragments = frozenset(
                    Fragment(document, nodes, validate=False)
                    for nodes in node_tuples)
                per_document[name] = QueryResult(
                    query=query, fragments=fragments,
                    strategy=strategy.value, elapsed=elapsed, stats=stats)
            results.append(CollectionResult(query=query,
                                            per_document=per_document))
        if ob.enabled and total_skipped:
            ob.metrics.counter(
                DOCUMENTS_SKIPPED,
                "Documents skipped by the index early exit."
            ).inc(total_skipped)
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Terminate the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"ParallelExecutor(documents={len(self.documents)}, "
                f"workers={self.workers}, "
                f"start_method={self.start_method!r})")
