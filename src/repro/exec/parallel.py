"""Process-pool collection search with deterministic merge.

:class:`ParallelExecutor` fans a collection search out over a
``concurrent.futures.ProcessPoolExecutor`` while keeping the results
**bit-identical** to the serial path:

* the ``{name: Document}`` payload is shipped once, at pool init, into a
  module-level worker state; each worker lazily builds and keeps *warm*
  per-document structures (inverted index, LCA index, interval kernel,
  a per-worker :class:`~repro.core.algebra.JoinCache`) so repeated
  queries pay the setup cost once per worker, not once per task;
* work is scheduled as chunks of ``(document, query)`` items, and the
  conjunctive early exit runs *in-band*: a worker probes its inverted
  index and returns a skip marker instead of evaluating a document that
  cannot match;
* workers never pickle :class:`~repro.core.fragment.Fragment` or
  :class:`~repro.xmltree.document.Document` objects back.  They return
  plain node-id tuples and the parent rehydrates fragments against its
  *own* document objects — fragment equality requires document
  identity, so this is what makes parallel output exactly equal to
  serial output;
* the merge walks documents in the caller's target order, so result
  dictionaries iterate identically however chunks complete;
* telemetry survives the pool: when the caller's
  :class:`~repro.obs.Observability` handle is enabled, each worker runs
  its queries under a real per-worker handle and ships span trees,
  metric increments and query records back in-band as an
  :class:`~repro.obs.delta.ObsDelta` next to the chunk's rows; the
  parent merges them (spans and records labeled ``worker=N``, metrics
  onto the same series the serial path uses), so ``--trace``,
  ``--query-log`` and Prometheus output mean the same thing at any
  worker count.

Start method: ``fork`` is preferred (worker state is inherited
copy-on-write, so even large corpora ship for free); on platforms
without it the executor falls back to ``spawn``, where the payload is
pickled through :meth:`Document.__getstate__`.  See
``docs/parallelism.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Mapping, Optional, Sequence

from ..collection.collection import CollectionResult
from ..core.algebra import JoinCache, KERNEL_NAMES
from ..core.fragment import Fragment
from ..core.query import Query, QueryResult
from ..core.strategies import Strategy, evaluate
from ..errors import DocumentError, QueryError
from ..index.inverted import InvertedIndex
from ..obs import (DOCUMENTS_SKIPPED, NOOP, MetricsRegistry, Observability,
                   POOL_CHUNKS, POOL_CHUNK_SECONDS, POOL_DISPATCH_SECONDS,
                   POOL_TASKS, POOL_WORKERS, QueryLog, SpanTracer,
                   capture_delta, merge_delta)
from ..obs.tracer import NULL_TRACER
from ..xmltree.document import Document

__all__ = ["ParallelExecutor", "default_workers", "default_start_method"]


def default_workers() -> int:
    """The default pool size: one worker per available CPU."""
    return os.cpu_count() or 1


def default_start_method() -> str:
    """``fork`` where available (Linux/macOS), else ``spawn``."""
    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")


# ----------------------------------------------------------------------
# Worker side: module-level state, populated once per worker at pool
# init (inherited via fork, or unpickled under spawn) and warmed lazily.
# ----------------------------------------------------------------------

_WORKER_DOCUMENTS: Optional[Mapping[str, Document]] = None
_WORKER_INDEXES: dict[str, InvertedIndex] = {}
_WORKER_CACHE: Optional[JoinCache] = None
_WORKER_OBS: Optional[Observability] = None
_WORKER_OBS_TRACED: Optional[bool] = None
_WORKER_BASELINE: dict = {}


def _init_worker(documents: Mapping[str, Document]) -> None:
    global _WORKER_DOCUMENTS, _WORKER_INDEXES, _WORKER_CACHE
    global _WORKER_OBS, _WORKER_OBS_TRACED, _WORKER_BASELINE
    _WORKER_DOCUMENTS = documents
    _WORKER_INDEXES = {}
    _WORKER_CACHE = JoinCache()
    _WORKER_OBS = None
    _WORKER_OBS_TRACED = None
    _WORKER_BASELINE = {}


def _worker_obs(traced: bool) -> Observability:
    """This worker's live observability handle.

    Created on the first telemetry-enabled chunk and kept warm (the
    metrics registry persists across chunks; increments ship as diffs
    against a rolling baseline).  Rebuilt if the parent's tracing
    preference changes between calls.
    """
    global _WORKER_OBS, _WORKER_OBS_TRACED, _WORKER_BASELINE
    if _WORKER_OBS is None or _WORKER_OBS_TRACED != traced:
        _WORKER_OBS = Observability(
            tracer=SpanTracer() if traced else NULL_TRACER,
            metrics=MetricsRegistry(),
            query_log=QueryLog(max_records=1 << 16))
        _WORKER_OBS_TRACED = traced
        _WORKER_BASELINE = {}
    return _WORKER_OBS


def _worker_index(name: str) -> InvertedIndex:
    """This worker's warm inverted index for one document.

    Built on first touch, together with the document's LCA index, so
    every later query against the document starts hot.
    """
    index = _WORKER_INDEXES.get(name)
    if index is None:
        document = _WORKER_DOCUMENTS[name]
        index = InvertedIndex(document)
        if document.size > 1:
            document.lca(0, document.size - 1)
        _WORKER_INDEXES[name] = index
    return index


def _run_chunk(queries: Sequence[Query], items: Sequence[tuple[str, int]],
               strategy_value: str, kernel: Optional[str],
               obs_spec: Optional[dict] = None):
    """Evaluate one chunk of ``(document name, query index)`` items.

    Returns ``(rows, chunk_seconds, delta, pid)`` where each row is
    ``(name, query_index, payload)`` and ``payload`` is ``None`` for a
    document skipped by the in-band early exit, else
    ``(fragment node tuples, elapsed, stats dict)`` — plain picklable
    data only, never Fragment/Document objects.  When the parent's
    telemetry is enabled (``obs_spec`` given), ``delta`` carries this
    worker's span trees, metric increments and query records for the
    chunk; otherwise it is ``None``.
    """
    global _WORKER_BASELINE
    started = time.perf_counter()
    strategy = Strategy(strategy_value)
    obs = (_worker_obs(bool(obs_spec.get("trace")))
           if obs_spec is not None else NOOP)
    rows = []
    for name, query_index in items:
        query = queries[query_index]
        index = _worker_index(name)
        if not all(index.contains(term) for term in query.terms):
            rows.append((name, query_index, None))
            continue
        result = evaluate(_WORKER_DOCUMENTS[name], query,
                          strategy=strategy, index=index,
                          cache=_WORKER_CACHE, kernel=kernel, obs=obs)
        payload = (tuple(sorted(tuple(sorted(f.nodes))
                                for f in result.fragments)),
                   result.elapsed, result.stats)
        rows.append((name, query_index, payload))
    delta = None
    if obs_spec is not None:
        _WORKER_CACHE.export_metrics(obs.metrics)
        delta, _WORKER_BASELINE = capture_delta(obs, _WORKER_BASELINE)
    return rows, time.perf_counter() - started, delta, os.getpid()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class ParallelExecutor:
    """A warm process pool evaluating queries over a fixed document set.

    Parameters
    ----------
    documents:
        ``{name: Document}`` — the corpus, shipped to workers once at
        pool init.  The executor takes a snapshot; add/remove requires a
        new executor (collections handle this by invalidating their
        cached executor on :meth:`~DocumentCollection.add`).
    workers:
        Pool size; defaults to :func:`default_workers`.
    start_method:
        ``"fork"`` (default where available) or ``"spawn"``.
    chunk_size:
        Items per scheduled chunk; default balances load as
        ``ceil(items / (4 * workers))``.
    obs:
        Default :class:`~repro.obs.Observability` handle for pool
        metrics; each call may override it.
    """

    def __init__(self, documents: Mapping[str, Document],
                 workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 chunk_size: Optional[int] = None,
                 obs: Optional[Observability] = None) -> None:
        self.documents: dict[str, Document] = dict(documents)
        if not self.documents:
            raise DocumentError("ParallelExecutor requires at least one "
                                "document")
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise QueryError(f"workers must be >= 1, got {self.workers}")
        self.start_method = (start_method if start_method is not None
                             else default_start_method())
        self._chunk_size = chunk_size
        self._obs = obs if obs is not None else NOOP
        self._worker_ids: dict[int, str] = {}
        context = multiprocessing.get_context(self.start_method)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context,
            initializer=_init_worker, initargs=(self.documents,))
        if self._obs.enabled:
            self._obs.metrics.gauge(
                POOL_WORKERS, "Workers in the current query pool."
            ).set(self.workers)

    def _worker_label(self, pid: int) -> str:
        """A stable small ``worker=N`` label for one worker process.

        Indexes are assigned in order of first telemetry arrival, so
        labels are dense (0..workers-1) without cross-process
        coordination.
        """
        label = self._worker_ids.get(pid)
        if label is None:
            label = str(len(self._worker_ids))
            self._worker_ids[pid] = label
        return label

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def search(self, query: Query,
               strategy: Strategy = Strategy.PUSHDOWN,
               documents: Optional[Iterable[str]] = None,
               kernel: Optional[str] = None,
               obs: Optional[Observability] = None) -> CollectionResult:
        """Evaluate one query over the corpus; serial-identical result."""
        return self.run([query], strategy=strategy, documents=documents,
                        kernel=kernel, obs=obs)[0]

    def run(self, queries: Sequence[Query],
            strategy: Strategy = Strategy.PUSHDOWN,
            documents: Optional[Iterable[str]] = None,
            kernel: Optional[str] = None,
            obs: Optional[Observability] = None) -> list[CollectionResult]:
        """Evaluate a batch of queries in one scheduling wave.

        All ``(document, query)`` pairs are chunked together, so a
        multi-query batch keeps every worker busy even when single
        queries have few matching documents.  Returns one
        :class:`CollectionResult` per query, in query order.
        """
        if kernel is not None and kernel not in KERNEL_NAMES:
            raise QueryError(f"unknown join kernel {kernel!r}; the "
                             f"parallel path accepts {list(KERNEL_NAMES)}")
        ob = obs if obs is not None else self._obs
        queries = list(queries)
        targets = (list(documents) if documents is not None
                   else list(self.documents))
        for name in targets:
            if name not in self.documents:
                raise DocumentError(f"unknown document {name!r}")
        items = [(name, qi) for qi in range(len(queries))
                 for name in targets]
        chunk_size = self._chunk_size or max(
            1, -(-len(items) // (4 * self.workers)))
        chunks = [items[i:i + chunk_size]
                  for i in range(0, len(items), chunk_size)]

        obs_spec = ({"trace": ob.tracer.enabled} if ob.enabled else None)
        outcomes: dict[tuple[str, int], Optional[tuple]] = {}
        with ob.span("parallel-search", workers=self.workers,
                     queries=len(queries), items=len(items),
                     chunks=len(chunks)) as span:
            dispatch_started = time.perf_counter()
            futures = [self._pool.submit(_run_chunk, queries, chunk,
                                         strategy.value, kernel, obs_spec)
                       for chunk in chunks]
            for future, chunk in zip(futures, chunks):
                rows, chunk_seconds, delta, pid = future.result()
                for name, query_index, payload in rows:
                    outcomes[(name, query_index)] = payload
                if ob.enabled:
                    ob.metrics.histogram(
                        POOL_CHUNK_SECONDS,
                        "Worker-measured seconds per chunk."
                    ).observe(chunk_seconds)
                    merge_delta(ob, delta, worker=self._worker_label(pid))
            dispatch_seconds = time.perf_counter() - dispatch_started
            if ob.enabled:
                m = ob.metrics
                m.gauge(POOL_WORKERS,
                        "Workers in the current query pool."
                        ).set(self.workers)
                m.counter(POOL_TASKS,
                          "(document, query) items dispatched to the pool."
                          ).inc(len(items))
                m.counter(POOL_CHUNKS, "Chunks dispatched to the pool."
                          ).inc(len(chunks))
                m.histogram(POOL_DISPATCH_SECONDS,
                            "Parent-side submit-to-merge seconds."
                            ).observe(dispatch_seconds)
                span.set(dispatch_seconds=round(dispatch_seconds, 6))

        results = []
        total_skipped = 0
        for query_index, query in enumerate(queries):
            per_document: dict[str, QueryResult] = {}
            for name in targets:  # caller order => deterministic merge
                payload = outcomes[(name, query_index)]
                if payload is None:
                    total_skipped += 1
                    continue
                node_tuples, elapsed, stats = payload
                document = self.documents[name]
                fragments = frozenset(
                    Fragment(document, nodes, validate=False)
                    for nodes in node_tuples)
                per_document[name] = QueryResult(
                    query=query, fragments=fragments,
                    strategy=strategy.value, elapsed=elapsed, stats=stats)
            results.append(CollectionResult(query=query,
                                            per_document=per_document))
        if ob.enabled and total_skipped:
            ob.metrics.counter(
                DOCUMENTS_SKIPPED,
                "Documents skipped by the index early exit."
            ).inc(total_skipped)
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Terminate the worker pool (idempotent)."""
        self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"ParallelExecutor(documents={len(self.documents)}, "
                f"workers={self.workers}, "
                f"start_method={self.start_method!r})")
