"""Early-stop hints for parallel chunk dispatch.

A streaming top-k consumer over a collection knows, mid-round, when its
candidate heap has saturated: once the k-th held fragment has size
``s``, no chunk can contribute anything better than ``size <= s``, and
when ``s`` is already covered by a previous β round the whole round is
moot.  :class:`ChunkHint` is the narrow channel that carries this
knowledge into :meth:`repro.exec.parallel.ParallelExecutor.run`:

* ``set_filter(f)`` — an extra anti-monotonic filter conjoined onto
  every *not-yet-submitted* chunk's queries (already-running chunks
  finish unpruned; their results are a superset, which the consumer's
  own emission logic bounds, so correctness never depends on timing).
* ``stop()`` — abandon every chunk not yet submitted.  Skipped items
  simply do not appear in the result's ``per_document`` map.
* ``observe(rows)`` — called by the parent collector with each chunk's
  raw result rows, so the consumer can tighten the hint while the wave
  is still in flight.

Hints are deliberately *advisory*: a run with a hint that never fires
is bit-identical to a run without one, and serial fallback chunks
ignore the filter (superset again).  See ``docs/streaming.md`` for the
soundness argument.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from ..core.filters import Filter

__all__ = ["ChunkHint"]


class ChunkHint:
    """Mutable, thread-safe early-stop state shared with a dispatcher.

    Parameters
    ----------
    window:
        Optional cap on how many chunks each dispatch wave submits.
        Smaller windows give the consumer more chances to tighten the
        filter between waves at the cost of less parallel slack; by
        default the dispatcher's normal wave sizing applies.
    on_rows:
        Optional callback invoked (from the collector thread) with each
        chunk's raw result rows as they arrive.
    """

    def __init__(self, window: Optional[int] = None,
                 on_rows: Optional[Callable[[list], None]] = None) -> None:
        if window is not None and window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._on_rows = on_rows
        self._lock = threading.Lock()
        self._filter: Optional[Filter] = None
        self._stopped = False
        self.skipped_chunks = 0
        self.skipped_items = 0

    @property
    def filter(self) -> Optional[Filter]:
        """The extra filter for chunks submitted from now on."""
        with self._lock:
            return self._filter

    def set_filter(self, predicate: Optional[Filter]) -> None:
        """Install (or clear) the extra per-chunk filter.

        The filter must be anti-monotonic for the usual Theorem-3
        argument to make pruning sound; the hint does not verify this —
        the consumer owns the soundness of what it pushes.
        """
        with self._lock:
            self._filter = predicate

    @property
    def stopped(self) -> bool:
        with self._lock:
            return self._stopped

    def stop(self) -> None:
        """Abandon all not-yet-submitted chunks (idempotent)."""
        with self._lock:
            self._stopped = True

    def observe(self, rows: list) -> None:
        """Feed one chunk's raw rows to the consumer callback."""
        if self._on_rows is not None:
            self._on_rows(rows)

    def record_skip(self, chunks: int, items: int) -> None:
        """Account chunks/items dropped because of :meth:`stop`."""
        with self._lock:
            self.skipped_chunks += chunks
            self.skipped_items += items
