"""Fault-tolerance policy for the worker pool (``repro.exec.resilience``).

A :class:`RetryPolicy` tells :class:`~repro.exec.parallel.ParallelExecutor`
how to behave when a chunk misbehaves:

* ``timeout_s`` — per-chunk deadline, measured from the moment the
  parent starts waiting on that chunk's future.  A chunk that blows the
  deadline is treated as hung: the wedged pool is torn down (worker
  processes terminated), respawned, and the unfinished chunks are
  re-dispatched.
* ``max_retries`` — bounded re-dispatch budget *per chunk*; each
  failure (crash, timeout, in-band exception) consumes one attempt from
  the chunk that caused it.  Chunks lost as collateral when the pool
  breaks are re-dispatched without being charged.
* ``backoff_s`` / ``backoff_multiplier`` / ``jitter`` — exponential
  backoff between retry waves, with multiplicative jitter so respawned
  workers are not hammered in lockstep.
* ``fallback`` — what happens after the retry budget is exhausted:
  ``"serial"`` (default) re-evaluates the surviving chunks in-process
  through the exact serial path, so callers still get serial-identical
  results and *never* an exception; ``"never"`` raises
  :class:`~repro.errors.ExecutionError` instead.

The per-run outcome is summarised in a :class:`ResilienceReport`
(exposed as ``executor.last_report``) and mirrored into
:mod:`repro.obs` counters (``repro_pool_respawns_total``,
retry/timeout/crash/fallback counters and the ``repro_exec_degraded``
gauge served by ``/healthz`` and ``/varz``).  See
``docs/robustness.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["RetryPolicy", "ResilienceReport", "DEFAULT_POLICY",
           "FALLBACK_SERIAL", "FALLBACK_NEVER"]

FALLBACK_SERIAL = "serial"
FALLBACK_NEVER = "never"


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor reacts to chunk failures (immutable).

    Parameters
    ----------
    timeout_s:
        Per-chunk deadline in seconds; ``None`` (default) waits
        indefinitely, matching the pre-resilience behaviour.
    max_retries:
        Re-dispatch attempts per chunk after the first failure.  With
        the default of 2 a chunk is tried at most three times before
        degrading.
    backoff_s:
        Base delay before the first retry wave.
    backoff_multiplier:
        Exponential growth factor applied per consumed attempt.
    jitter:
        Fractional jitter in ``[0, 1]``: each delay is scaled by a
        uniform factor in ``[1 - jitter, 1 + jitter]``.
    fallback:
        ``"serial"`` to degrade exhausted chunks to an in-process
        serial re-evaluation, ``"never"`` to raise
        :class:`~repro.errors.ExecutionError`.
    """

    timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    fallback: str = FALLBACK_SERIAL

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.fallback not in (FALLBACK_SERIAL, FALLBACK_NEVER):
            raise ValueError(f"fallback must be {FALLBACK_SERIAL!r} or "
                             f"{FALLBACK_NEVER!r}, got {self.fallback!r}")

    def delay(self, attempt: int,
              rng: Optional[random.Random] = None) -> float:
        """Backoff before re-dispatching a chunk that failed
        ``attempt + 1`` times (zero-based)."""
        base = self.backoff_s * (self.backoff_multiplier ** attempt)
        if self.jitter and rng is not None:
            base *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(0.0, base)


#: The executor's default posture: no deadline, two retries, serial
#: degradation — a batch never fails outright unless asked to.
DEFAULT_POLICY = RetryPolicy()


@dataclass
class ResilienceReport:
    """What one :meth:`ParallelExecutor.run` survived.

    All counts are per-run; the executor keeps the latest as
    ``last_report``.  ``degraded`` is true when any chunk was
    re-evaluated through the serial fallback.
    """

    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    respawns: int = 0
    fallback_chunks: int = 0
    fallback_items: int = 0
    failures: list = field(default_factory=list)
    #: group key (e.g. shard number) -> chunks of that group that
    #: exhausted their retries.  Only populated when the dispatcher was
    #: given per-chunk group keys (the sharded index path); the
    #: ShardRouter charges per-shard circuit breakers from it.
    failed_groups: dict = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return self.fallback_chunks > 0

    @property
    def clean(self) -> bool:
        """True when the run saw no failure of any kind."""
        return not (self.retries or self.timeouts or self.crashes
                    or self.respawns or self.fallback_chunks)

    def note(self, message: str) -> None:
        """Record one human-readable failure event (bounded)."""
        if len(self.failures) < 64:
            self.failures.append(message)

    def to_dict(self) -> dict:
        return {"retries": self.retries, "timeouts": self.timeouts,
                "crashes": self.crashes, "respawns": self.respawns,
                "fallback_chunks": self.fallback_chunks,
                "fallback_items": self.fallback_items,
                "degraded": self.degraded,
                "failures": list(self.failures),
                "failed_groups": {str(k): v for k, v
                                  in self.failed_groups.items()}}
