"""Deterministic fault injection for the worker pool (``repro.exec.faults``).

The resilience layer (timeouts, retries, pool respawn, serial
fallback) is only trustworthy if its failure paths are *exercised* —
so this module makes failure a first-class, scriptable input.  A
:class:`FaultPlan` is a small set of :class:`FaultRule` entries the
parent consults before dispatching each chunk attempt; when a rule
matches, a plain picklable fault directive ships to the worker along
with the chunk and :func:`apply_fault` executes it at chunk start:

``kill-worker``
    ``os._exit`` inside the worker — an OOM-kill / segfault stand-in.
    The pool breaks (``BrokenProcessPool``) and the parent must respawn
    it and re-dispatch the unfinished chunks.
``hang-worker``
    The worker sleeps ``hang_s`` seconds before evaluating — a stall
    stand-in.  With a per-chunk deadline shorter than the hang, the
    parent times the chunk out and replaces the wedged pool.
``flaky-chunk``
    The chunk raises :class:`InjectedFault` — a transient in-band
    failure that succeeds once retried past ``times`` attempts.

Rules match on the chunk index (``chunk=None`` matches every chunk)
and only for the first ``times`` attempts, so every scenario is
deterministic: tests and the bench runner can script "chunk 0 dies
once, everything else is healthy" and assert bit-identical recovery.

A second family of directives targets the *storage commit protocol*
(:mod:`repro.storage.mutation`): a :class:`CrashPlan` names one point
of the WAL-append → fsync → manifest-write → ``CURRENT``-rename
sequence and raises :class:`CommitCrash` exactly there — optionally
after a *torn write* (a prefix of the bytes, as a real power cut
leaves behind).  The crash-recovery test matrix drives every point and
asserts recovery exposes the old or the new epoch, never a partial
view.

Usage::

    plan = FaultPlan(FaultRule.kill(chunk=0))
    executor = ParallelExecutor(documents, workers=2, faults=plan)
    executor.run(queries)          # crashes once, recovers, same answers

    crash = CrashPlan(point="current-rename")
    index = MutableIndex.open(path, faults=crash)
    index.add(doc)                 # raises CommitCrash mid-protocol
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = ["KILL_WORKER", "HANG_WORKER", "FLAKY_CHUNK", "FAULT_KINDS",
           "InjectedFault", "FaultRule", "FaultPlan", "apply_fault",
           "CommitCrash", "CrashPlan", "COMMIT_POINTS"]

KILL_WORKER = "kill-worker"
HANG_WORKER = "hang-worker"
FLAKY_CHUNK = "flaky-chunk"

FAULT_KINDS = frozenset({KILL_WORKER, HANG_WORKER, FLAKY_CHUNK})

#: Exit status used by the kill-worker fault (distinctive in core dumps
#: and CI logs; any non-zero status breaks the pool identically).
KILL_EXIT_STATUS = 86


class InjectedFault(RuntimeError):
    """The transient failure raised by the ``flaky-chunk`` policy.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults model infrastructure failure, not query errors, and must
    not be swallowed by callers catching the library's base class.
    """


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *which* chunk fails, *how*, *how often*.

    Parameters
    ----------
    kind:
        One of :data:`KILL_WORKER`, :data:`HANG_WORKER`,
        :data:`FLAKY_CHUNK`.
    chunk:
        Chunk index the rule applies to; ``None`` matches every chunk.
    times:
        Number of *attempts* affected — ``times=1`` faults the first
        attempt only, so the first retry succeeds.
    hang_s:
        Sleep duration for ``hang-worker`` (ignored otherwise).
    """

    kind: str
    chunk: Optional[int] = 0
    times: int = 1
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {sorted(FAULT_KINDS)}")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.hang_s < 0:
            raise ValueError("hang_s must be >= 0")

    @classmethod
    def kill(cls, chunk: Optional[int] = 0, times: int = 1) -> "FaultRule":
        return cls(KILL_WORKER, chunk=chunk, times=times)

    @classmethod
    def hang(cls, chunk: Optional[int] = 0, times: int = 1,
             hang_s: float = 30.0) -> "FaultRule":
        return cls(HANG_WORKER, chunk=chunk, times=times, hang_s=hang_s)

    @classmethod
    def flaky(cls, chunk: Optional[int] = 0, times: int = 1) -> "FaultRule":
        return cls(FLAKY_CHUNK, chunk=chunk, times=times)

    def matches(self, chunk_index: int, attempt: int) -> bool:
        return ((self.chunk is None or self.chunk == chunk_index)
                and attempt < self.times)


class FaultPlan:
    """An ordered set of :class:`FaultRule` entries.

    The parent calls :meth:`for_chunk` with the chunk index and the
    zero-based attempt number right before each dispatch; the first
    matching rule wins and its directive (a plain dict — picklable
    under both ``fork`` and ``spawn``) rides to the worker.
    """

    def __init__(self, *rules: FaultRule) -> None:
        self.rules: tuple[FaultRule, ...] = tuple(rules)

    def for_chunk(self, chunk_index: int,
                  attempt: int) -> Optional[dict]:
        for rule in self.rules:
            if rule.matches(chunk_index, attempt):
                directive = {"kind": rule.kind, "attempt": attempt}
                if rule.kind == HANG_WORKER:
                    directive["hang_s"] = rule.hang_s
                return directive
        return None

    def __bool__(self) -> bool:
        return bool(self.rules)

    def __repr__(self) -> str:
        return f"FaultPlan(rules={len(self.rules)})"


def apply_fault(fault: Optional[Mapping]) -> None:
    """Execute one fault directive (worker side, at chunk start).

    ``None`` — the common no-fault case — is a no-op.
    """
    if fault is None:
        return
    kind = fault.get("kind")
    if kind == KILL_WORKER:
        # A crash, not an exception: skips interpreter teardown exactly
        # like the OOM killer / a segfault would.
        os._exit(KILL_EXIT_STATUS)
    elif kind == HANG_WORKER:
        # Stall, then proceed normally: if the parent's deadline is
        # longer than the hang the chunk still completes correctly.
        time.sleep(float(fault.get("hang_s", 30.0)))
    elif kind == FLAKY_CHUNK:
        raise InjectedFault(
            f"injected flaky-chunk failure "
            f"(attempt {fault.get('attempt', 0)})")
    else:
        raise InjectedFault(f"unknown fault directive {kind!r}")


# ----------------------------------------------------------------------
# Commit-protocol crash injection (repro.storage.mutation)
# ----------------------------------------------------------------------

#: Every observable point of the epoch commit protocol, in execution
#: order.  ``before-<point>`` variants fire *before* the step runs (so
#: a ``before-wal-fsync`` crash leaves an appended-but-unsynced WAL);
#: the bare name fires right after the step completes.  Points up to
#: and including ``current-fsync`` must recover to the *old* epoch;
#: ``current-rename`` and later must recover to the *new* one.
COMMIT_POINTS = (
    "wal-write",
    "wal-fsync",
    "manifest-write",
    "manifest-fsync",
    "manifest-rename",
    "manifest-dir-fsync",
    "current-write",
    "current-fsync",
    "current-rename",
    "current-dir-fsync",
)


class CommitCrash(BaseException):
    """An injected crash inside the storage commit protocol.

    Deliberately a :class:`BaseException`: a simulated power cut must
    not be caught by ordinary ``except Exception`` cleanup handlers —
    the crashed writer is expected to leave its on-disk state exactly
    as the kill point found it, which is what recovery is tested
    against.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at commit point {point!r}")
        self.point = point


class CrashPlan:
    """Crash (and optionally tear) the commit protocol at one point.

    Parameters
    ----------
    point:
        One of :data:`COMMIT_POINTS`, or ``"before-<point>"`` to fire
        before the step instead of after it.
    torn_bytes:
        For write points (``wal-write`` / ``manifest-write`` /
        ``current-write``): write only the first ``torn_bytes`` bytes
        of the payload before crashing — a torn write.  ``0`` tears
        the write down to nothing but may still have created the file.
    times:
        How many protocol runs the plan fires for (default: every run
        until :meth:`disarm`).
    """

    def __init__(self, point: str, *, torn_bytes: Optional[int] = None,
                 times: Optional[int] = None) -> None:
        base = point[len("before-"):] if point.startswith("before-") \
            else point
        if base not in COMMIT_POINTS:
            raise ValueError(f"unknown commit point {point!r}; expected "
                             f"one of {list(COMMIT_POINTS)} (optionally "
                             f"'before-' prefixed)")
        if torn_bytes is not None and torn_bytes < 0:
            raise ValueError("torn_bytes must be >= 0")
        self.point = point
        self.torn_bytes = torn_bytes
        self.times = times
        self.fired = 0

    def disarm(self) -> None:
        """Stop firing (recovery and assertions run un-faulted)."""
        self.times = 0

    def _armed(self) -> bool:
        return self.times is None or self.fired < self.times

    def check(self, point: str) -> None:
        """Raise :class:`CommitCrash` when ``point`` matches the plan."""
        if self.point == point and self._armed():
            self.fired += 1
            raise CommitCrash(point)

    def torn_write(self, point: str, data: bytes) -> bytes:
        """The bytes actually written at a write point.

        Returns ``data`` unchanged unless this plan tears that point,
        in which case the configured prefix is returned (the caller
        writes it, then :meth:`check` raises).
        """
        if self.point == point and self.torn_bytes is not None \
                and self._armed():
            return data[:self.torn_bytes]
        return data

    def __repr__(self) -> str:
        return (f"CrashPlan(point={self.point!r}, "
                f"torn_bytes={self.torn_bytes}, fired={self.fired})")
