"""Batch query evaluation over a collection (``repro.exec.batch``).

:class:`BatchRunner` evaluates a *list* of queries against one
:class:`~repro.collection.collection.DocumentCollection`, amortising
all per-corpus setup — inverted indexes, LCA indexes, the worker pool
itself — across the whole batch instead of paying it per query.

Serial mode (``workers=None``) walks the collection once per query
through :meth:`DocumentCollection.search`, reusing the collection's
cached indexes and join cache.  Parallel mode hands the *entire* batch
to one :class:`~repro.exec.parallel.ParallelExecutor` scheduling wave,
so all ``(document, query)`` pairs share one chunked dispatch and every
worker's warm state serves many queries.

Worker telemetry propagates in both modes: parallel batches ride the
same chunk dispatch as ``search``, so per-worker span trees, metric
deltas and query records ship back in-band and merge into the ``obs=``
handle (see :mod:`repro.obs.delta`) — counters read the same at any
worker count.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..collection.collection import CollectionResult, DocumentCollection
from ..core.query import Query
from ..core.strategies import Strategy
from ..guard.budget import QueryBudget
from ..obs import BATCH_QUERIES, NOOP, Observability
from .faults import FaultPlan
from .parallel import ParallelExecutor
from .resilience import RetryPolicy

__all__ = ["BatchRunner"]


class BatchRunner:
    """Evaluate query batches over one collection with warm state.

    Parameters
    ----------
    collection:
        The corpus to search.  The runner snapshots the document set
        when its pool first spins up; add documents before running, or
        create a new runner after mutating the collection.
    workers:
        ``None`` for serial evaluation; ``>= 1`` for a process pool of
        that size (created lazily on the first :meth:`run`, reused for
        every later batch until :meth:`shutdown`).
    strategy, kernel:
        Defaults for every query of every batch; :meth:`run` can
        override both per call.
    obs:
        Default observability handle (batch counters, pool metrics).
    resilience:
        :class:`~repro.exec.resilience.RetryPolicy` for the pooled
        path (deadlines, retries, serial degradation); ``None`` uses
        the executor default.
    faults:
        Optional :class:`~repro.exec.faults.FaultPlan` injected into
        every pooled dispatch (tests / bench runner).
    """

    def __init__(self, collection: DocumentCollection,
                 workers: Optional[int] = None,
                 strategy: Strategy = Strategy.PUSHDOWN,
                 kernel: Optional[str] = None,
                 obs: Optional[Observability] = None,
                 resilience: Optional[RetryPolicy] = None,
                 faults: Optional[FaultPlan] = None) -> None:
        self.collection = collection
        self.workers = workers
        self.strategy = strategy
        self.kernel = kernel
        self._obs = obs if obs is not None else NOOP
        self.resilience = resilience
        self.faults = faults
        self._executor: Optional[ParallelExecutor] = None
        self._last_report = None

    def _pool(self) -> ParallelExecutor:
        if self._executor is None:
            self._executor = ParallelExecutor(
                {name: self.collection.document(name)
                 for name in self.collection.names()},
                workers=self.workers, obs=self._obs,
                resilience=self.resilience, faults=self.faults)
        return self._executor

    @property
    def last_report(self):
        """The pooled path's latest
        :class:`~repro.exec.resilience.ResilienceReport` (``None``
        before the first parallel batch; retained across
        :meth:`shutdown`)."""
        if self._executor is not None:
            return self._executor.last_report
        return self._last_report

    def run(self, queries: Iterable[Query],
            strategy: Optional[Strategy] = None,
            kernel: Optional[str] = None,
            obs: Optional[Observability] = None,
            budget: Optional[QueryBudget] = None,
            deadline_ms: Optional[float] = None
            ) -> list[CollectionResult]:
        """Evaluate every query; one :class:`CollectionResult` each.

        Results are identical to calling
        :meth:`DocumentCollection.search` per query — the batch only
        changes *where* the work runs and how often setup is paid.

        ``budget``/``deadline_ms`` guard the whole batch: the deadline
        is end-to-end across all queries; per-operation limits
        (``max_join_ops`` etc.) apply to each query independently
        (serial mode) or each ``(document, query)`` item (pooled
        mode), composing with the pool's
        :class:`~repro.exec.resilience.RetryPolicy` — see
        :meth:`ParallelExecutor.run`.
        """
        from ..guard.budget import effective_budget
        batch: Sequence[Query] = list(queries)
        ob = obs if obs is not None else self._obs
        use_strategy = strategy if strategy is not None else self.strategy
        use_kernel = kernel if kernel is not None else self.kernel
        use_budget = effective_budget(budget, deadline_ms)
        if ob.enabled:
            ob.metrics.counter(
                BATCH_QUERIES, "Queries evaluated through BatchRunner."
            ).inc(len(batch))
        if not batch:
            return []
        if use_budget is not None:
            use_budget.start()
        if self.workers is None:
            return [self.collection.search(
                        query, strategy=use_strategy, kernel=use_kernel,
                        obs=ob,
                        budget=(use_budget.fresh_item()
                                if use_budget is not None else None))
                    for query in batch]
        pool = self._pool()
        try:
            return pool.run(batch, strategy=use_strategy,
                            kernel=use_kernel, obs=ob, budget=use_budget)
        finally:
            self._last_report = pool.last_report

    def shutdown(self) -> None:
        """Stop the pool, if one was created (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"BatchRunner(collection={self.collection.name!r}, "
                f"workers={self.workers}, "
                f"strategy={self.strategy.value!r})")
