"""Parallel execution layer (``repro.exec``).

Process-pool fan-out for collection queries with a determinism
guarantee: ``search(..., workers=N)`` returns results bit-identical to
the serial path for every strategy and kernel.  See
``docs/parallelism.md`` for the architecture.

* :class:`~repro.exec.parallel.ParallelExecutor` — warm worker pool
  over a fixed document set; chunked ``(document, query)`` scheduling,
  in-band index early exit, deterministic merge.
* :class:`~repro.exec.batch.BatchRunner` — evaluate a list of queries
  over a collection, amortising index/pool setup across the batch.
"""

from .batch import BatchRunner
from .parallel import (ParallelExecutor, default_start_method,
                       default_workers)

__all__ = ["ParallelExecutor", "BatchRunner", "default_workers",
           "default_start_method"]
