"""Parallel execution layer (``repro.exec``).

Process-pool fan-out for collection queries with a determinism
guarantee: ``search(..., workers=N)`` returns results bit-identical to
the serial path for every strategy and kernel.  See
``docs/parallelism.md`` for the architecture and
``docs/robustness.md`` for the failure model.

* :class:`~repro.exec.parallel.ParallelExecutor` — warm worker pool
  over a fixed document set; chunked ``(document, query)`` scheduling,
  in-band index early exit, deterministic merge.  With ``index_path=``
  the corpus stays on disk in a sharded mmap index
  (:mod:`repro.storage.shards`): workers attach zero-copy instead of
  unpickling documents, and chunks are scattered along shard
  boundaries.
* :class:`~repro.exec.batch.BatchRunner` — evaluate a list of queries
  over a collection, amortising index/pool setup across the batch.
* :mod:`~repro.exec.resilience` — :class:`RetryPolicy` (per-chunk
  deadlines, bounded retries with backoff, pool respawn, serial
  degradation) and the per-run :class:`ResilienceReport`.
* :mod:`~repro.exec.faults` — deterministic fault injection
  (:class:`FaultPlan` / :class:`FaultRule`: kill-worker, hang-worker,
  flaky-chunk) for tests and the bench runner.
"""

from .batch import BatchRunner
from .faults import (FAULT_KINDS, FLAKY_CHUNK, HANG_WORKER, KILL_WORKER,
                     FaultPlan, FaultRule, InjectedFault)
from .hints import ChunkHint
from .parallel import (ParallelExecutor, default_start_method,
                       default_workers)
from .resilience import (DEFAULT_POLICY, FALLBACK_NEVER, FALLBACK_SERIAL,
                         ResilienceReport, RetryPolicy)

__all__ = ["ParallelExecutor", "BatchRunner", "ChunkHint",
           "default_workers", "default_start_method",
           "RetryPolicy", "ResilienceReport", "DEFAULT_POLICY",
           "FALLBACK_SERIAL", "FALLBACK_NEVER",
           "FaultPlan", "FaultRule", "InjectedFault",
           "KILL_WORKER", "HANG_WORKER", "FLAKY_CHUNK", "FAULT_KINDS"]
