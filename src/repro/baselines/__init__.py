"""Competing keyword-search semantics from the related work.

Used by the S3 bench and the motivation example (F1) to reproduce the
paper's effectiveness argument: conventional smallest-subtree semantics
misses the self-contained fragment the algebra retrieves.
"""

from .common import remove_ancestors, term_postings
from .elca import elca_nodes
from .slca import slca_candidates_pair, slca_nodes
from .smallest import smallest_fragments
from .xrank import RankedAnswer, xrank_answers
from .xsearch import interconnected, xsearch_answers

__all__ = [
    "slca_nodes",
    "slca_candidates_pair",
    "elca_nodes",
    "smallest_fragments",
    "xrank_answers",
    "RankedAnswer",
    "xsearch_answers",
    "interconnected",
    "term_postings",
    "remove_ancestors",
]
