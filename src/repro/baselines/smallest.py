"""The conventional *smallest subtree* answer semantics.

This is the semantics the paper's introduction argues against for
document-centric XML: for the query {XQuery, optimization} on Figure 1
it returns the lone paragraph n17 instead of the self-contained
fragment ⟨n16, n17, n18⟩.  We implement it as minimal *fragments* (not
whole subtrees): for every SLCA node, the spanning subtree of the
witness occurrences nearest to it — the smallest connected answer the
conventional semantics would present.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.fragment import Fragment
from ..index.inverted import InvertedIndex
from ..obs import Observability
from ..xmltree.document import Document
from ..xmltree.navigation import spanning_nodes
from .common import run_instrumented, term_postings
from .slca import slca_nodes

__all__ = ["smallest_fragments"]


def smallest_fragments(document: Document, terms: Sequence[str],
                       index: Optional[InvertedIndex] = None,
                       obs: Optional[Observability] = None
                       ) -> list[Fragment]:
    """One minimal fragment per SLCA node, sorted by root id.

    For each SLCA ``v`` and each term, the occurrence inside ``v``'s
    subtree closest to ``v`` (minimum depth, ties by id) is chosen as
    the witness; the fragment is the spanning subtree of the witnesses
    (just ``⟨v⟩`` when a single node carries every term).  An enabled
    ``obs`` handle records one ``baseline="smallest"`` query (the inner
    SLCA pass is not double counted).
    """
    return run_instrumented(
        "smallest", document, terms, obs,
        lambda: _smallest_fragments(document, terms, index))


def _smallest_fragments(document: Document, terms: Sequence[str],
                        index: Optional[InvertedIndex]
                        ) -> list[Fragment]:
    postings = term_postings(document, terms, index=index)
    if any(not plist for plist in postings):
        return []
    fragments = []
    for v in slca_nodes(document, terms, index=index):
        lo, hi = v, v + document.subtree_size(v)
        witnesses = []
        for plist in postings:
            inside = [n for n in plist if lo <= n < hi]
            witnesses.append(min(inside,
                                 key=lambda n: (document.depth(n), n)))
        nodes = spanning_nodes(document, witnesses)
        fragments.append(Fragment(document, nodes, validate=False))
    return sorted(fragments, key=lambda f: f.root)
