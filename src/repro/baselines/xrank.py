"""A simplified XRank-style ranked keyword search (Guo et al., SIGMOD'03).

XRank returns ELCA nodes ranked by an ElemRank-with-decay score.  We
reproduce the ranking *structure* without the PageRank-style link
analysis (our documents have no hyperlinks): each ELCA node ``v`` is
scored by keyword proximity,

    score(v) = Σ_terms  max over occurrences x under v of d^(depth(x) − depth(v))

with decay ``d ∈ (0, 1]`` — occurrences far below ``v`` contribute
less, so tight answers rank first.  This gives the S3 bench an
IR-style ranked baseline to contrast with the paper's database-style
filtered answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..index.inverted import InvertedIndex
from ..obs import Observability
from ..xmltree.document import Document
from .common import run_instrumented, term_postings
from .elca import elca_nodes

__all__ = ["RankedAnswer", "xrank_answers"]


@dataclass(frozen=True)
class RankedAnswer:
    """An ELCA answer node with its proximity score."""

    node: int
    score: float


def xrank_answers(document: Document, terms: Sequence[str],
                  index: Optional[InvertedIndex] = None,
                  decay: float = 0.8,
                  obs: Optional[Observability] = None
                  ) -> list[RankedAnswer]:
    """ELCA nodes ranked by decayed keyword proximity, best first.

    Parameters
    ----------
    decay:
        Per-level attenuation ``d``; 1.0 disables depth penalties.
    obs:
        Optional observability handle; records one
        ``baseline="xrank"`` query (the inner ELCA pass is not double
        counted).
    """
    if not 0.0 < decay <= 1.0:
        raise ValueError("decay must be in (0, 1]")
    return run_instrumented(
        "xrank", document, terms, obs,
        lambda: _xrank_answers(document, terms, index, decay))


def _xrank_answers(document: Document, terms: Sequence[str],
                   index: Optional[InvertedIndex],
                   decay: float) -> list[RankedAnswer]:
    postings = term_postings(document, terms, index=index)
    if any(not plist for plist in postings):
        return []
    answers = []
    for v in elca_nodes(document, terms, index=index):
        lo, hi = v, v + document.subtree_size(v)
        v_depth = document.depth(v)
        score = 0.0
        for plist in postings:
            best = 0.0
            for node in plist:
                if lo <= node < hi:
                    best = max(best,
                               decay ** (document.depth(node) - v_depth))
            score += best
        answers.append(RankedAnswer(v, score))
    answers.sort(key=lambda a: (-a.score, a.node))
    return answers
