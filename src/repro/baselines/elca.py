"""Exclusive LCA (ELCA) keyword search — the XRank answer semantics.

A node ``v`` is an ELCA for terms ``k1..km`` when its subtree contains
every term *even after* discarding the subtrees of descendant nodes
that themselves contain every term.  Every SLCA is an ELCA; ELCAs may
additionally include ancestors with their own independent witnesses.

Implementation: a single bottom-up pass keeping two per-term vectors
per node: *total* occurrences in the subtree, and *unclaimed*
occurrences — those not inside any *full* descendant (a descendant
whose subtree contains every term).  ``v`` is an ELCA iff its unclaimed
vector is all-positive; whenever ``v`` is full its unclaimed vector
then resets to zero, so full-but-not-ELCA nodes still shield their
occurrences from their ancestors, exactly as the definition requires.
O(n · m) time.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..index.inverted import InvertedIndex
from ..obs import Observability
from ..xmltree.document import Document
from .common import run_instrumented, term_postings

__all__ = ["elca_nodes"]


def elca_nodes(document: Document, terms: Sequence[str],
               index: Optional[InvertedIndex] = None,
               obs: Optional[Observability] = None) -> list[int]:
    """The ELCA nodes for a conjunctive keyword query, sorted by id.

    An enabled ``obs`` handle wraps the run in a ``baseline:elca`` span
    and records ``baseline="elca"``-labelled metrics.
    """
    return run_instrumented("elca", document, terms, obs,
                            lambda: _elca_nodes(document, terms, index))


def _elca_nodes(document: Document, terms: Sequence[str],
                index: Optional[InvertedIndex]) -> list[int]:
    postings = term_postings(document, terms, index=index)
    if any(not plist for plist in postings):
        return []
    m = len(postings)
    own: dict[int, list[int]] = {}
    for term_idx, plist in enumerate(postings):
        for node in plist:
            own.setdefault(node, [0] * m)[term_idx] += 1

    # Postorder walk over preorder-normalised ids: children of a node
    # have larger ids, so iterating ids descending visits children
    # before parents.
    total = [[0] * m for _ in range(document.size)]
    unclaimed = [[0] * m for _ in range(document.size)]
    result = []
    for node in range(document.size - 1, -1, -1):
        totals = total[node]
        counts = unclaimed[node]
        if node in own:
            own_counts = own[node]
            for i in range(m):
                totals[i] += own_counts[i]
                counts[i] += own_counts[i]
        for child in document.children(node):
            child_totals = total[child]
            child_counts = unclaimed[child]
            for i in range(m):
                totals[i] += child_totals[i]
                counts[i] += child_counts[i]
        if all(count > 0 for count in counts):
            result.append(node)
        if all(t > 0 for t in totals):
            # Full node: shield its occurrences from every ancestor,
            # whether or not it qualified as an ELCA itself.
            unclaimed[node] = [0] * m
    result.reverse()
    return result
