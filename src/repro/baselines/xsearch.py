"""XSEarch-style interconnection semantics (Cohen et al., VLDB'03 —
the paper's ref [5]).

XSEarch deems two nodes *interconnected* when the tree path between
them contains no two distinct nodes with the same tag (other than the
endpoints themselves) — the heuristic being that a repeated tag along
the path signals the nodes belong to different real-world entities
(e.g. two different ``<author>`` records).  An answer is a witness
tuple (one node per keyword) that is pairwise interconnected, presented
here as the spanning fragment of the tuple.

This gives the S3 effectiveness study the *semantic* (tag-aware)
baseline of the related work, complementing the purely structural
SLCA/ELCA ones.  On the paper's document-centric motivation example
the heuristic misfires exactly as §1 argues: its answers never enlarge
to the self-contained subsection unit.
"""

from __future__ import annotations

from itertools import product
from typing import Optional, Sequence

from ..core.fragment import Fragment
from ..errors import FragmentError
from ..index.inverted import InvertedIndex
from ..obs import Observability
from ..xmltree.document import Document
from ..xmltree.navigation import path_to_ancestor, spanning_nodes
from .common import run_instrumented, term_postings

__all__ = ["interconnected", "xsearch_answers"]


def interconnected(document: Document, u: int, v: int) -> bool:
    """Whether ``u`` and ``v`` are interconnected (XSEarch relation).

    True iff the interior of the u–v tree path (endpoints excluded)
    plus each endpoint's adjacent segment carries no duplicated tag
    among *distinct* nodes; following XSEarch, the endpoints themselves
    are exempt.
    """
    if u == v:
        return True
    lca = document.lca(u, v)
    path = set(path_to_ancestor(document, u, lca))
    path |= set(path_to_ancestor(document, v, lca))
    interior = path - {u, v}
    seen: set[str] = set()
    for node in interior:
        tag = document.tag(node)
        if tag in seen:
            return False
        seen.add(tag)
    # Endpoint tags may also not repeat on the interior path — two
    # sections with a section between them are separate entities.
    if document.tag(u) in seen or document.tag(v) in seen:
        return False
    return True


def xsearch_answers(document: Document, terms: Sequence[str],
                    index: Optional[InvertedIndex] = None,
                    max_tuples: int = 100_000,
                    obs: Optional[Observability] = None
                    ) -> list[Fragment]:
    """Spanning fragments of pairwise-interconnected witness tuples.

    One witness node per term; tuples where every pair is
    interconnected yield the spanning fragment of the tuple.  Results
    are deduplicated and sorted smallest-first.  An enabled ``obs``
    handle records one ``baseline="xsearch"`` query.

    Raises
    ------
    FragmentError
        If the witness cross product exceeds ``max_tuples``.
    """
    return run_instrumented(
        "xsearch", document, terms, obs,
        lambda: _xsearch_answers(document, terms, index, max_tuples))


def _xsearch_answers(document: Document, terms: Sequence[str],
                     index: Optional[InvertedIndex],
                     max_tuples: int) -> list[Fragment]:
    postings = term_postings(document, terms, index=index)
    if any(not plist for plist in postings):
        return []
    tuple_count = 1
    for plist in postings:
        tuple_count *= len(plist)
    if tuple_count > max_tuples:
        raise FragmentError(
            f"{tuple_count} witness tuples exceed max_tuples="
            f"{max_tuples}")
    answers: set[Fragment] = set()
    for witnesses in product(*postings):
        distinct = set(witnesses)
        if all(interconnected(document, a, b)
               for a in distinct for b in distinct if a < b):
            answers.add(Fragment(document,
                                 spanning_nodes(document, distinct),
                                 validate=False))
    return sorted(answers, key=lambda f: (f.size, sorted(f.nodes)))
