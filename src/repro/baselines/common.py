"""Shared helpers for the keyword-search baselines.

All baselines consume sorted posting lists (node ids in preorder) per
query term, exactly what :class:`repro.index.inverted.InvertedIndex`
yields, and operate on the same documents as the algebra — so
effectiveness comparisons (does the baseline produce the paper's target
fragment?) are apples-to-apples.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, Sized, TypeVar

from ..index.inverted import InvertedIndex
from ..obs import NOOP, Observability
from ..xmltree.document import Document

__all__ = ["term_postings", "remove_ancestors", "run_instrumented"]

_SizedT = TypeVar("_SizedT", bound=Sized)


def run_instrumented(baseline: str, document: Document,
                     terms: Sequence[str],
                     obs: Optional[Observability],
                     body: Callable[[], _SizedT]) -> _SizedT:
    """Run one baseline evaluation under an observability handle.

    With a disabled (or absent) handle, calls ``body`` directly — zero
    overhead.  With a live one, the evaluation is wrapped in a
    ``baseline:<name>`` span and folded into the ``baseline=``-labelled
    metrics via :meth:`~repro.obs.Observability.record_baseline`, so
    baseline-vs-algebra comparisons share one registry.

    Composed baselines (xrank over ELCA, smallest over SLCA) instrument
    only the outer call: inner calls run with the default ``NOOP``
    handle, keeping one query = one record.
    """
    ob = obs if obs is not None else NOOP
    if not ob.enabled:
        return body()
    name = getattr(document, "name", "?")
    started = time.perf_counter()
    with ob.span("baseline:" + baseline, document=name,
                 terms=" ".join(terms)) as span:
        result = body()
        span.set(answers=len(result))
    ob.record_baseline(baseline=baseline, document=name, terms=terms,
                       answers=len(result),
                       elapsed=time.perf_counter() - started)
    return result


def term_postings(document: Document, terms: Sequence[str],
                  index: Optional[InvertedIndex] = None
                  ) -> list[list[int]]:
    """Sorted posting lists for ``terms``, one list per term.

    Terms are casefolded to match tokenizer output.  A term with no
    occurrences yields an empty list (conjunctive baselines then return
    no answers).
    """
    idx = index if index is not None else InvertedIndex(document)
    return [idx.postings(term.casefold()) for term in terms]


def remove_ancestors(document: Document, nodes: Sequence[int]) -> list[int]:
    """Keep only nodes that are not proper ancestors of another node.

    Used to turn candidate LCA sets into *smallest* LCA sets.  Runs in
    O(n log n): sort by preorder and keep a node unless the next kept
    node lies inside its subtree.
    """
    unique = sorted(set(nodes))
    kept: list[int] = []
    for node in unique:
        while kept and document.is_proper_ancestor(kept[-1], node):
            kept.pop()
        kept.append(node)
    # After the sweep no kept node is an ancestor of its successor, but
    # an earlier node could still be an ancestor of a later non-adjacent
    # one only if it were an ancestor of an intermediate too — impossible
    # in preorder — so the list is ancestor-free.
    return kept
