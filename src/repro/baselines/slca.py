"""Smallest LCA (SLCA) keyword search — Xu & Papakonstantinou, SIGMOD'05.

The conventional *smallest subtree* semantics the paper argues is too
narrow for document-centric XML: given posting lists ``S1..Sm``, the
SLCAs are the nodes ``v = lca(v1..vm)`` (``vi ∈ Si``) having no other
such LCA inside their subtree.

Implementation: the *indexed lookup* style algorithm.  For two lists,
every SLCA is of the form ``lca(u, closest(u, S2))`` where ``closest``
is the posting nearest to ``u`` in preorder (checked on both sides via
binary search); candidates are folded left across the term lists and
non-smallest candidates are swept out.  Folding is correct because
``slca(S1, …, Sm) = slca(slca_candidates(S1, S2), S3, …)`` — the
standard multiway extension.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence

from ..index.inverted import InvertedIndex
from ..obs import Observability
from ..xmltree.document import Document
from .common import remove_ancestors, run_instrumented, term_postings

__all__ = ["slca_candidates_pair", "slca_nodes"]


def _closest_lca(document: Document, node: int,
                 postings: Sequence[int]) -> int:
    """The deepest LCA of ``node`` with any element of ``postings``.

    The deepest ``lca(node, x)`` over sorted ``postings`` is achieved by
    one of the two postings adjacent to ``node`` in preorder, so two
    LCA probes suffice.
    """
    pos = bisect_left(postings, node)
    best: Optional[int] = None
    best_depth = -1
    for idx in (pos - 1, pos):
        if 0 <= idx < len(postings):
            candidate = document.lca(node, postings[idx])
            depth = document.depth(candidate)
            if depth > best_depth:
                best = candidate
                best_depth = depth
    assert best is not None, "postings must be non-empty"
    return best


def slca_candidates_pair(document: Document, left: Sequence[int],
                         right: Sequence[int]) -> list[int]:
    """Candidate SLCAs for two posting lists (may contain ancestors).

    Scans the smaller list and probes the larger, so the cost is
    O(|small| · (log |large| + 1)) LCA operations.
    """
    if not left or not right:
        return []
    small, large = (left, right) if len(left) <= len(right) else (right,
                                                                  left)
    large_sorted = sorted(large)
    candidates = {_closest_lca(document, node, large_sorted)
                  for node in small}
    return sorted(candidates)


def slca_nodes(document: Document, terms: Sequence[str],
               index: Optional[InvertedIndex] = None,
               obs: Optional[Observability] = None) -> list[int]:
    """The SLCA nodes for a conjunctive keyword query, sorted by id.

    Returns an empty list when any term has no occurrences.  An enabled
    ``obs`` handle wraps the run in a ``baseline:slca`` span and records
    ``baseline="slca"``-labelled metrics.
    """
    return run_instrumented("slca", document, terms, obs,
                            lambda: _slca_nodes(document, terms, index))


def _slca_nodes(document: Document, terms: Sequence[str],
                index: Optional[InvertedIndex]) -> list[int]:
    postings = term_postings(document, terms, index=index)
    if any(not plist for plist in postings):
        return []
    if len(postings) == 1:
        return remove_ancestors(document, postings[0])
    current = postings[0]
    for other in postings[1:]:
        current = slca_candidates_pair(document, current, other)
        if not current:
            return []
    return remove_ancestors(document, current)
