"""Differential testing harness, shipped as a library feature.

Reproduction code earns trust by being easy to falsify.  This module
packages the machinery the internal test suite uses — random document
generation, independent oracles, strategy cross-checking — behind one
function, so downstream users (or CI) can hammer the engine on their
own machines:

>>> from repro.testing import run_differential_trials
>>> report = run_differential_trials(trials=100, seed=7)
>>> report.failures
()

Each trial generates a random document and query, evaluates it with
every strategy plus the literal powerset-semantics oracle, and records
any disagreement as a :class:`TrialFailure` carrying everything needed
to reproduce it (the seed, the document's parent vector, the query).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.filters import (Filter, HeightAtMost, SizeAtMost, TrueFilter,
                            WidthAtMost)
from ..core.query import Query
from ..core.semantics import powerset_semantics_answers
from ..core.strategies import Strategy, evaluate
from ..xmltree.builder import DocumentBuilder
from ..xmltree.document import Document

__all__ = ["TrialFailure", "DifferentialReport",
           "random_keyword_document", "run_differential_trials"]

_TERMS = ("alpha", "beta", "gamma")


@dataclass(frozen=True)
class TrialFailure:
    """One reproducible disagreement between evaluation paths.

    Attributes
    ----------
    trial:
        Index of the failing trial.
    seed:
        The trial's RNG seed (regenerates document and query).
    parents:
        The document's parent vector (node i+1's parent).
    keyword_nodes:
        term → node ids carrying it.
    query:
        The evaluated query's textual description.
    disagreeing:
        Names of the evaluation paths that differed from the oracle.
    """

    trial: int
    seed: int
    parents: tuple[int, ...]
    keyword_nodes: dict
    query: str
    disagreeing: tuple[str, ...]


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of a :func:`run_differential_trials` campaign."""

    trials: int
    failures: tuple[TrialFailure, ...] = field(default=())

    @property
    def passed(self) -> bool:
        """Whether every trial agreed on every path."""
        return not self.failures

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if self.passed:
            return (f"{self.trials} differential trials, "
                    "all evaluation paths agree")
        return (f"{len(self.failures)} of {self.trials} trials "
                f"disagreed; first failing seed: "
                f"{self.failures[0].seed}")


def random_keyword_document(seed: int, max_nodes: int = 10) -> Document:
    """A small random document with keywords from a fixed alphabet.

    Deterministic in ``seed``; the same generator family the internal
    property tests use.
    """
    rng = random.Random(seed)
    n = rng.randint(2, max_nodes)
    builder = DocumentBuilder(name=f"trial-{seed}")
    ids = [builder.add_root("root", "")]
    for _ in range(n - 1):
        parent = ids[rng.randrange(len(ids))]
        ids.append(builder.add_child(parent, "node", ""))
    for node in ids:
        words = [w for w in _TERMS if rng.random() < 0.35]
        if words:
            builder.add_keywords(node, words)
    return builder.build()


def _random_query(rng: random.Random) -> Query:
    term_count = rng.randint(1, 3)
    terms = tuple(rng.sample(_TERMS, term_count))
    predicate: Filter
    roll = rng.randrange(4)
    if roll == 0:
        predicate = TrueFilter()
    elif roll == 1:
        predicate = SizeAtMost(rng.randint(1, 6))
    elif roll == 2:
        predicate = HeightAtMost(rng.randint(0, 3))
    else:
        predicate = (SizeAtMost(rng.randint(2, 5))
                     & WidthAtMost(rng.randint(1, 6)))
    return Query(terms, predicate)


def run_differential_trials(trials: int = 100, seed: int = 0,
                            max_nodes: int = 10,
                            stop_on_first_failure: bool = False
                            ) -> DifferentialReport:
    """Run ``trials`` random cross-checks of every evaluation path.

    Each trial compares all four strategies against the literal
    powerset-semantics oracle on a fresh random document and query.

    Parameters
    ----------
    stop_on_first_failure:
        Abort the campaign at the first disagreement (faster triage).
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    failures: list[TrialFailure] = []
    master = random.Random(seed)
    for trial in range(trials):
        trial_seed = master.randrange(2 ** 31)
        doc = random_keyword_document(trial_seed, max_nodes=max_nodes)
        rng = random.Random(trial_seed ^ 0x5EED)
        query = _random_query(rng)
        oracle = powerset_semantics_answers(doc, query)
        disagreeing = [
            strategy.value
            for strategy in Strategy
            if evaluate(doc, query, strategy=strategy).fragments
            != oracle
        ]
        if disagreeing:
            failures.append(TrialFailure(
                trial=trial,
                seed=trial_seed,
                parents=tuple(doc.parent(i) for i in range(1, doc.size)),
                keyword_nodes={t: doc.nodes_with_keyword(t)
                               for t in query.terms},
                query=query.describe(),
                disagreeing=tuple(disagreeing)))
            if stop_on_first_failure:
                break
    return DifferentialReport(trials=trials, failures=tuple(failures))
