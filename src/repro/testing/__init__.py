"""Self-verification utilities shipped with the library.

``run_differential_trials`` cross-checks every evaluation strategy
against the literal powerset-semantics oracle on random inputs — run it
whenever you port, patch or distrust the engine.
"""

from .differential import (DifferentialReport, TrialFailure,
                           random_keyword_document,
                           run_differential_trials)

__all__ = [
    "run_differential_trials",
    "DifferentialReport",
    "TrialFailure",
    "random_keyword_document",
]
