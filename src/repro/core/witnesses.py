"""Answer provenance: which nodes witness which query terms.

Users reading a fragment answer want to know *why* it matched.  This
module maps each query term to its witness nodes inside a fragment and
renders highlighted outlines (witness nodes marked with the terms they
carry) — the presentation detail that makes §5's "visually pleasing
way" concrete.
"""

from __future__ import annotations

from typing import Sequence

from ..xmltree.serializer import fragment_outline
from .fragment import Fragment

__all__ = ["witnesses", "missing_terms", "highlighted_outline"]


def witnesses(fragment: Fragment,
              terms: Sequence[str]) -> dict[str, list[int]]:
    """term → sorted node ids of the fragment carrying it.

    Terms are casefolded; absent terms map to empty lists.
    """
    doc = fragment.document
    result: dict[str, list[int]] = {}
    for term in terms:
        needle = term.casefold()
        result[needle] = sorted(
            n for n in fragment.nodes if needle in doc.keywords(n))
    return result


def missing_terms(fragment: Fragment,
                  terms: Sequence[str]) -> list[str]:
    """Query terms with no witness in the fragment (casefolded)."""
    found = witnesses(fragment, terms)
    return [term for term, nodes in found.items() if not nodes]


def highlighted_outline(fragment: Fragment,
                        terms: Sequence[str]) -> str:
    """A fragment outline with witness nodes annotated.

    Example::

        n16:subsubsection "Techniques for..."   <= optimization
          n17:par "Optimization of XQuery..."   <= optimization, xquery
          n18:par "An XQuery processor..."      <= xquery
    """
    found = witnesses(fragment, terms)
    by_node: dict[int, list[str]] = {}
    for term, nodes in found.items():
        for node in nodes:
            by_node.setdefault(node, []).append(term)
    lines = fragment_outline(fragment).splitlines()
    ordered_nodes = sorted(fragment.nodes)
    width = max(len(line) for line in lines) + 3
    annotated = []
    for node, line in zip(ordered_nodes, lines):
        terms_here = sorted(by_node.get(node, ()))
        if terms_here:
            annotated.append(f"{line.ljust(width)}<= "
                             f"{', '.join(terms_here)}")
        else:
            annotated.append(line)
    return "\n".join(annotated)
