"""Selection predicates — the paper's *filters* (Definitions 3 and 11).

A filter maps a fragment to true/false; ``σ_P(F)`` keeps the fragments
satisfying ``P``.  Filters carry an ``is_anti_monotonic`` flag: a filter
``P`` is anti-monotonic iff ``P(f) = true`` implies ``P(f') = true`` for
every sub-fragment ``f' ⊆ f`` (Definition 11).  Theorem 3 lets the
optimizer push exactly these filters below join operations.

Provided filters and their anti-monotonicity:

===========================  ==================
``SizeAtMost(β)``            anti-monotonic (§3.3.1)
``HeightAtMost(h)``          anti-monotonic (§3.3.2)
``WidthAtMost(w)``           anti-monotonic (§3.3.2)
``TrueFilter``               anti-monotonic (trivially)
``And`` / ``Or`` of a.m.     anti-monotonic (§3.3)
``Not`` of a.m.              NOT anti-monotonic (§3.3)
``SizeAtLeast(β)``           NOT anti-monotonic (§3.4, first example)
``EqualDepth(k1, k2)``       NOT anti-monotonic (§3.4, Figure 7)
``ContainsKeyword(k)``       NOT anti-monotonic
===========================  ==================

Anti-monotonicity of composites is derived conservatively: a composite
claims the property only when the rules above guarantee it.  A filter
that is anti-monotonic semantically but flagged False is merely not
eligible for push-down — results stay correct.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from .fragment import Fragment
from .stats import OperationStats

__all__ = [
    "Filter",
    "TrueFilter",
    "SizeAtMost",
    "SizeAtLeast",
    "HeightAtMost",
    "WidthAtMost",
    "ContainsKeyword",
    "ExcludesKeyword",
    "EqualDepth",
    "RootDepthAtLeast",
    "TagsWithin",
    "LeafCountAtMost",
    "And",
    "Or",
    "Not",
    "PredicateFilter",
    "select",
]


class Filter:
    """Base class for selection predicates over fragments.

    Subclasses implement :meth:`matches` and set ``is_anti_monotonic``.
    Filters compose with ``&`` (conjunction), ``|`` (disjunction) and
    ``~`` (negation); composition tracks anti-monotonicity per the
    paper's closure rules (∧ and ∨ preserve it, ¬ does not).
    """

    #: Whether Theorem 3 push-down applies to this filter.
    is_anti_monotonic: bool = False

    def matches(self, fragment: Fragment) -> bool:
        """Return True iff the fragment satisfies this predicate."""
        raise NotImplementedError

    def __call__(self, fragment: Fragment) -> bool:
        return self.matches(fragment)

    def __and__(self, other: "Filter") -> "Filter":
        return And(self, other)

    def __or__(self, other: "Filter") -> "Filter":
        return Or(self, other)

    def __invert__(self) -> "Filter":
        return Not(self)

    def describe(self) -> str:
        """Human-readable form used in plan explanations."""
        return repr(self)


class TrueFilter(Filter):
    """The always-true predicate (σ_true is the identity selection)."""

    is_anti_monotonic = True

    def matches(self, fragment: Fragment) -> bool:
        return True

    def __repr__(self) -> str:
        return "true"


class SizeAtMost(Filter):
    """``size(f) <= β`` — the paper's §3.3.1 filter.  Anti-monotonic."""

    is_anti_monotonic = True

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("size limit must be >= 1")
        self.limit = limit

    def matches(self, fragment: Fragment) -> bool:
        return fragment.size <= self.limit

    def __repr__(self) -> str:
        return f"size<={self.limit}"


class SizeAtLeast(Filter):
    """``size(f) >= β`` — §3.4's example of a non-anti-monotonic filter."""

    is_anti_monotonic = False

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("size limit must be >= 1")
        self.limit = limit

    def matches(self, fragment: Fragment) -> bool:
        return fragment.size >= self.limit

    def __repr__(self) -> str:
        return f"size>={self.limit}"


class HeightAtMost(Filter):
    """``height(f) <= h`` (§3.3.2).  Anti-monotonic.

    Height is the vertical distance between the fragment root and its
    deepest node; a single node has height 0.
    """

    is_anti_monotonic = True

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError("height limit must be >= 0")
        self.limit = limit

    def matches(self, fragment: Fragment) -> bool:
        return fragment.height <= self.limit

    def __repr__(self) -> str:
        return f"height<={self.limit}"


class WidthAtMost(Filter):
    """``width(f) <= w`` (§3.3.2).  Anti-monotonic.

    Width is measured as the preorder-rank span between the fragment's
    leftmost and rightmost nodes (DESIGN.md §4).
    """

    is_anti_monotonic = True

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError("width limit must be >= 0")
        self.limit = limit

    def matches(self, fragment: Fragment) -> bool:
        return fragment.width <= self.limit

    def __repr__(self) -> str:
        return f"width<={self.limit}"


class ContainsKeyword(Filter):
    """``keyword = k``: some fragment node carries the keyword (Def. 3).

    NOT anti-monotonic: a sub-fragment may omit the node that carried
    the keyword.
    """

    is_anti_monotonic = False

    def __init__(self, keyword: str) -> None:
        if not keyword:
            raise ValueError("keyword must be non-empty")
        self.keyword = keyword

    def matches(self, fragment: Fragment) -> bool:
        return fragment.contains_keyword(self.keyword)

    def __repr__(self) -> str:
        return f"keyword={self.keyword}"


class EqualDepth(Filter):
    """The paper's §3.4 'equal depth filter'.  NOT anti-monotonic.

    Satisfied when some fragment node carrying ``keyword1`` sits at the
    same depth as some fragment node carrying ``keyword2`` (vacuously
    true when either keyword is absent from the fragment).  This is the
    reading under which Figure 7's situation arises: a fragment can
    satisfy the filter through one keyword occurrence while a
    sub-fragment that only retains a different-depth occurrence does
    not — so the filter cannot be pushed below joins.
    """

    is_anti_monotonic = False

    def __init__(self, keyword1: str, keyword2: str) -> None:
        if not keyword1 or not keyword2:
            raise ValueError("keywords must be non-empty")
        self.keyword1 = keyword1
        self.keyword2 = keyword2

    def matches(self, fragment: Fragment) -> bool:
        doc = fragment.document
        depths1 = {doc.depth(n) for n in fragment.nodes
                   if self.keyword1 in doc.keywords(n)}
        depths2 = {doc.depth(n) for n in fragment.nodes
                   if self.keyword2 in doc.keywords(n)}
        if not depths1 or not depths2:
            return True
        return bool(depths1 & depths2)

    def __repr__(self) -> str:
        return f"equal-depth({self.keyword1},{self.keyword2})"


class ExcludesKeyword(Filter):
    """No fragment node carries ``keyword``.  Anti-monotonic.

    The negative counterpart of :class:`ContainsKeyword`: if no node of
    ``f`` carries the keyword, no node of any ``f' ⊆ f`` does either.
    Useful for blacklisting boilerplate terms from answers.
    """

    is_anti_monotonic = True

    def __init__(self, keyword: str) -> None:
        if not keyword:
            raise ValueError("keyword must be non-empty")
        self.keyword = keyword

    def matches(self, fragment: Fragment) -> bool:
        return not fragment.contains_keyword(self.keyword)

    def __repr__(self) -> str:
        return f"keyword≠{self.keyword}"


class RootDepthAtLeast(Filter):
    """The fragment root lies at document depth ≥ d.  Anti-monotonic.

    A sub-fragment's root is a descendant-or-self of the fragment's
    root, hence at the same depth or deeper — so the property is
    inherited downward.  Filters out answers hanging off the shallow
    "glue" levels of a document (e.g. the root element).
    """

    is_anti_monotonic = True

    def __init__(self, depth: int) -> None:
        if depth < 0:
            raise ValueError("depth must be >= 0")
        self.depth = depth

    def matches(self, fragment: Fragment) -> bool:
        doc = fragment.document
        return doc.depth(fragment.root) >= self.depth

    def __repr__(self) -> str:
        return f"root-depth>={self.depth}"


class TagsWithin(Filter):
    """Every fragment node's tag belongs to ``allowed``.  Anti-monotonic.

    Sub-fragments use a subset of the nodes, so the universal tag
    condition is inherited.  Keeps answers inside the content-bearing
    vocabulary (``par``, ``section``, …) and away from e.g. metadata
    elements.
    """

    is_anti_monotonic = True

    def __init__(self, allowed) -> None:
        tags = frozenset(allowed)
        if not tags:
            raise ValueError("allowed tag set must be non-empty")
        self.allowed = tags

    def matches(self, fragment: Fragment) -> bool:
        doc = fragment.document
        return all(doc.tag(n) in self.allowed for n in fragment.nodes)

    def __repr__(self) -> str:
        return f"tags⊆{{{','.join(sorted(self.allowed))}}}"


class LeafCountAtMost(Filter):
    """The fragment has at most ``limit`` induced leaves.  Anti-monotonic.

    Leaves of a connected subset are pairwise incomparable, so mapping
    each leaf of a sub-fragment to any fragment leaf below it is
    injective — a sub-fragment never has more leaves than its host.
    Bounds the "breadth" of an answer independent of its node count.
    """

    is_anti_monotonic = True

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("leaf limit must be >= 1")
        self.limit = limit

    def matches(self, fragment: Fragment) -> bool:
        return len(fragment.leaves) <= self.limit

    def __repr__(self) -> str:
        return f"leaves<={self.limit}"


class And(Filter):
    """Conjunction; anti-monotonic iff both operands are (§3.3)."""

    def __init__(self, left: Filter, right: Filter) -> None:
        self.left = left
        self.right = right
        self.is_anti_monotonic = (left.is_anti_monotonic
                                  and right.is_anti_monotonic)

    def matches(self, fragment: Fragment) -> bool:
        return self.left.matches(fragment) and self.right.matches(fragment)

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


class Or(Filter):
    """Disjunction; anti-monotonic iff both operands are (§3.3)."""

    def __init__(self, left: Filter, right: Filter) -> None:
        self.left = left
        self.right = right
        self.is_anti_monotonic = (left.is_anti_monotonic
                                  and right.is_anti_monotonic)

    def matches(self, fragment: Fragment) -> bool:
        return self.left.matches(fragment) or self.right.matches(fragment)

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


class Not(Filter):
    """Negation; never claims anti-monotonicity (§3.3)."""

    is_anti_monotonic = False

    def __init__(self, inner: Filter) -> None:
        self.inner = inner

    def matches(self, fragment: Fragment) -> bool:
        return not self.inner.matches(fragment)

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


class PredicateFilter(Filter):
    """Wrap an arbitrary callable as a filter.

    The caller vouches for ``anti_monotonic``; claiming it wrongly makes
    push-down unsound, so the default is the safe False.
    """

    def __init__(self, predicate: Callable[[Fragment], bool],
                 name: str = "predicate",
                 anti_monotonic: bool = False) -> None:
        self._predicate = predicate
        self._name = name
        self.is_anti_monotonic = anti_monotonic

    def matches(self, fragment: Fragment) -> bool:
        return bool(self._predicate(fragment))

    def __repr__(self) -> str:
        return self._name


def select(predicate: Filter, fragments: Iterable[Fragment],
           stats: Optional[OperationStats] = None) -> frozenset[Fragment]:
    """``σ_P(F)``: the fragments of ``F`` satisfying ``P`` (Definition 3)."""
    kept = []
    for fragment in fragments:
        if stats is not None:
            stats.predicate_checks += 1
        if predicate.matches(fragment):
            kept.append(fragment)
        elif stats is not None:
            stats.fragments_discarded += 1
    return frozenset(kept)
