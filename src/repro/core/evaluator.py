"""Execute logical plans against a document (physical evaluation).

The evaluator walks a :mod:`repro.core.plan` tree bottom-up, carrying an
:class:`~repro.core.stats.OperationStats` tally and an optional join
memo cache.  It is deliberately a straight interpretation of the algebra
— each operator maps onto the corresponding function in
:mod:`repro.core.algebra` / :mod:`repro.core.reduce` — so the plan
*shape* is the only thing that changes between the strategies being
compared.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from ..errors import PlanError
from ..obs import NOOP, Observability
from .algebra import JoinCache, multiway_powerset_join, pairwise_join
from .filters import select
from .fragment import Fragment
from .plan import (FixedPoint, KeywordScan, PairwiseJoin, PlanNode,
                   PowersetJoin, Select)
from .query import Query, QueryResult, keyword_fragments
from .reduce import fixed_point, fixed_point_bounded
from .stats import OperationStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..index.inverted import InvertedIndex
    from ..xmltree.document import Document

__all__ = ["PlanEvaluator", "run_plan"]


class PlanEvaluator:
    """Interpret logical plans over one document.

    Parameters
    ----------
    document:
        The document queried by ``KeywordScan`` leaves.
    index:
        Optional inverted index for scans.
    cache:
        Optional join memo cache shared across executions.
    max_powerset_operand:
        Guard for ``PowersetJoin`` enumeration (see
        :func:`repro.core.algebra.powerset_join`).
    obs:
        Optional :class:`~repro.obs.Observability` handle; when enabled,
        each :meth:`execute` call is wrapped in an ``execute-plan`` span
        carrying the plan's root label, output cardinality, and the
        operation-counter delta.
    """

    def __init__(self, document: "Document",
                 index: Optional["InvertedIndex"] = None,
                 cache: Optional[JoinCache] = None,
                 max_powerset_operand: Optional[int] = 16,
                 obs: Optional[Observability] = None) -> None:
        self._document = document
        self._index = index
        self._cache = cache
        self._max_powerset_operand = max_powerset_operand
        self._obs = obs if obs is not None else NOOP

    def execute(self, plan: PlanNode,
                stats: Optional[OperationStats] = None
                ) -> frozenset[Fragment]:
        """Evaluate ``plan`` and return its fragment set."""
        tally = stats if stats is not None else OperationStats()
        if self._obs.enabled:
            with self._obs.span("execute-plan", plan=plan.label(),
                                stats=tally) as span:
                result = self._eval(plan, tally)
                span.set(rows=len(result))
            return result
        return self._eval(plan, tally)

    def _eval(self, node: PlanNode,
              stats: OperationStats) -> frozenset[Fragment]:
        if isinstance(node, KeywordScan):
            return keyword_fragments(self._document, node.term,
                                     index=self._index)
        if isinstance(node, Select):
            return select(node.predicate, self._eval(node.child, stats),
                          stats=stats)
        if isinstance(node, PairwiseJoin):
            return pairwise_join(self._eval(node.left, stats),
                                 self._eval(node.right, stats),
                                 stats=stats, cache=self._cache)
        if isinstance(node, FixedPoint):
            child = self._eval(node.child, stats)
            closure = fixed_point_bounded if node.bounded else fixed_point
            return closure(child, stats=stats, cache=self._cache,
                           predicate=node.predicate)
        if isinstance(node, PowersetJoin):
            operands = [self._eval(op, stats) for op in node.operands]
            return multiway_powerset_join(
                operands, stats=stats, cache=self._cache,
                max_operand_size=self._max_powerset_operand)
        raise PlanError(f"unknown plan node {type(node).__name__}")


def run_plan(document: "Document", query: Query, plan: PlanNode,
             index: Optional["InvertedIndex"] = None,
             cache: Optional[JoinCache] = None,
             strategy_name: str = "plan",
             obs: Optional[Observability] = None) -> QueryResult:
    """Execute a plan and wrap the outcome as a :class:`QueryResult`."""
    ob = obs if obs is not None else NOOP
    evaluator = PlanEvaluator(document, index=index, cache=cache, obs=ob)
    stats = OperationStats()
    started = time.perf_counter()
    fragments = evaluator.execute(plan, stats=stats)
    elapsed = time.perf_counter() - started
    if ob.enabled:
        ob.record_query(
            document=getattr(document, "name", "?"), terms=query.terms,
            filter=repr(query.predicate), strategy=strategy_name,
            answers=len(fragments), elapsed=elapsed,
            stats=stats.as_dict(), plan=plan.label())
    return QueryResult(query=query, fragments=fragments,
                       strategy=strategy_name, elapsed=elapsed,
                       stats=stats.as_dict())
