"""Execute logical plans against a document (physical evaluation).

The evaluator walks a :mod:`repro.core.plan` tree bottom-up, carrying an
:class:`~repro.core.stats.OperationStats` tally and an optional join
memo cache.  It is deliberately a straight interpretation of the algebra
— each operator maps onto the corresponding function in
:mod:`repro.core.algebra` / :mod:`repro.core.reduce` — so the plan
*shape* is the only thing that changes between the strategies being
compared.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import PlanError
from ..obs import NOOP, Observability
from .algebra import (JoinCache, KernelArg, multiway_powerset_join,
                      pairwise_join, resolve_kernel)
from .filters import select
from .fragment import Fragment
from .plan import (FixedPoint, KeywordScan, PairwiseJoin, PlanNode,
                   PowersetJoin, Select)
from .query import Query, QueryResult, keyword_fragments
from .reduce import fixed_point, fixed_point_bounded
from .stats import OperationStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..guard.budget import QueryBudget
    from ..index.inverted import InvertedIndex
    from ..xmltree.document import Document

__all__ = ["OperatorRunStats", "PlanAnalysis", "PlanEvaluator", "run_plan"]


@dataclass
class OperatorRunStats:
    """Accumulated runtime measurements for one plan operator.

    One instance per plan-tree position; executing the same plan over
    many documents (a collection EXPLAIN ANALYZE) accumulates into the
    same instances, with ``calls`` counting executions.
    """

    label: str
    depth: int
    children: tuple[int, ...]
    calls: int = 0
    rows: int = 0
    fragment_joins: int = 0
    join_cache_hits: int = 0
    predicate_checks: int = 0
    subset_checks: int = 0
    fragments_discarded: int = 0
    iterations: int = 0
    self_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def cache_hit_ratio(self) -> Optional[float]:
        """Join-cache hit ratio, or ``None`` when no joins were asked.

        Guarded: an operator that performed no join lookups has no
        ratio, not a zero one.
        """
        lookups = self.fragment_joins + self.join_cache_hits
        if not lookups:
            return None
        return self.join_cache_hits / lookups

    def to_dict(self) -> dict:
        record = {
            "label": self.label, "depth": self.depth,
            "calls": self.calls, "rows": self.rows,
            "fragment_joins": self.fragment_joins,
            "join_cache_hits": self.join_cache_hits,
            "predicate_checks": self.predicate_checks,
            "subset_checks": self.subset_checks,
            "fragments_discarded": self.fragments_discarded,
            "iterations": self.iterations,
            "self_seconds": self.self_seconds,
            "total_seconds": self.total_seconds,
        }
        if self.cache_hit_ratio is not None:
            record["cache_hit_ratio"] = self.cache_hit_ratio
        return record


class PlanAnalysis:
    """Per-operator runtime statistics for one plan — EXPLAIN ANALYZE.

    Built from a plan tree (one stats slot per operator, preorder) and
    filled in by :class:`PlanEvaluator` while the plan runs: fragments
    in/out, join and predicate counters, cache hit ratio, pushdown
    discards, and self/total seconds per operator.  Render it through
    :func:`repro.core.plan.explain` with ``analyze=``.

    The same analysis may be threaded through many executions of the
    same plan *shape* (every document of a collection): measurements
    accumulate per operator and :meth:`merge` folds two analyses of
    equal shape together (the parallel path's per-worker analyses).
    """

    def __init__(self, plan: PlanNode) -> None:
        self.plan = plan
        self.operators: list[OperatorRunStats] = []
        self._slots: dict[int, int] = {}
        self._build(plan, 0)

    def _build(self, node: PlanNode, depth: int) -> int:
        slot = len(self.operators)
        self.operators.append(None)  # type: ignore[arg-type]
        self._slots[id(node)] = slot
        children = tuple(self._build(child, depth + 1)
                         for child in node.children())
        self.operators[slot] = OperatorRunStats(
            label=node.label(), depth=depth, children=children)
        return slot

    def slot(self, node: PlanNode) -> int:
        """The stats slot of one operator of the analysed plan."""
        return self._slots[id(node)]

    def record(self, node: PlanNode, *, rows: int, seconds: float,
               self_seconds: float, delta: OperationStats) -> None:
        """Fold one execution of ``node`` into its slot.

        ``delta`` carries this operator's *own* work (children's
        counters already subtracted); ``seconds`` is the subtree wall
        time, ``self_seconds`` the operator's share of it.
        """
        op = self.operators[self._slots[id(node)]]
        op.calls += 1
        op.rows += rows
        op.fragment_joins += delta.fragment_joins
        op.join_cache_hits += delta.join_cache_hits
        op.predicate_checks += delta.predicate_checks
        op.subset_checks += delta.subset_checks
        op.fragments_discarded += delta.fragments_discarded
        op.iterations += delta.iterations
        op.total_seconds += seconds
        op.self_seconds += self_seconds

    def rows_in(self, slot: int) -> int:
        """Fragments consumed by one operator (its children's output)."""
        return sum(self.operators[child].rows
                   for child in self.operators[slot].children)

    def merge(self, other: "PlanAnalysis") -> None:
        """Accumulate another analysis of the same plan shape."""
        if [op.label for op in self.operators] \
                != [op.label for op in other.operators]:
            raise PlanError("cannot merge analyses of different plans")
        for op, theirs in zip(self.operators, other.operators):
            op.calls += theirs.calls
            op.rows += theirs.rows
            op.fragment_joins += theirs.fragment_joins
            op.join_cache_hits += theirs.join_cache_hits
            op.predicate_checks += theirs.predicate_checks
            op.subset_checks += theirs.subset_checks
            op.fragments_discarded += theirs.fragments_discarded
            op.iterations += theirs.iterations
            op.total_seconds += theirs.total_seconds
            op.self_seconds += theirs.self_seconds

    def render(self, indent: str = "  ") -> str:
        """The analysed plan, one operator per line.

        Example::

            σa[size<=3]      rows=4   in=11  1.10ms self=0.20ms checks=11 pruned=7
              ⋈              rows=11  in=6   0.90ms self=0.45ms joins=14 hits=3 (18% cached)
        """
        entries = []
        for slot, op in enumerate(self.operators):
            label = f"{indent * op.depth}{op.label}"
            entries.append((slot, op, label))
        width = max((len(label) for _, _, label in entries), default=0) + 2
        lines = []
        for slot, op, label in entries:
            parts = [f"rows={op.rows:<5}", f"in={self.rows_in(slot):<5}",
                     f"{op.total_seconds * 1000:7.2f}ms",
                     f"self={op.self_seconds * 1000:7.2f}ms"]
            if op.calls != 1:
                parts.append(f"calls={op.calls}")
            if op.fragment_joins or op.join_cache_hits:
                parts.append(f"joins={op.fragment_joins}")
                parts.append(f"hits={op.join_cache_hits}")
                ratio = op.cache_hit_ratio
                if ratio is not None:
                    parts.append(f"({ratio * 100:.0f}% cached)")
            if op.predicate_checks:
                parts.append(f"checks={op.predicate_checks}")
            if op.fragments_discarded:
                parts.append(f"pruned={op.fragments_discarded}")
            if op.subset_checks:
                parts.append(f"subset={op.subset_checks}")
            if op.iterations:
                parts.append(f"iters={op.iterations}")
            lines.append(f"{label.ljust(width)}{'  '.join(parts)}")
        return "\n".join(lines)

    def to_dicts(self) -> list[dict]:
        """Plain-dict form, one record per operator (preorder)."""
        records = []
        for slot, op in enumerate(self.operators):
            record = op.to_dict()
            record["rows_in"] = self.rows_in(slot)
            records.append(record)
        return records


class PlanEvaluator:
    """Interpret logical plans over one document.

    Parameters
    ----------
    document:
        The document queried by ``KeywordScan`` leaves.
    index:
        Optional inverted index for scans.
    cache:
        Optional join memo cache shared across executions.
    max_powerset_operand:
        Guard for ``PowersetJoin`` enumeration (see
        :func:`repro.core.algebra.powerset_join`).
    obs:
        Optional :class:`~repro.obs.Observability` handle; when enabled,
        each :meth:`execute` call is wrapped in an ``execute-plan`` span
        carrying the plan's root label, output cardinality, and the
        operation-counter delta.
    kernel:
        Join-kernel selection, as accepted by
        :func:`repro.core.algebra.resolve_kernel`.
    analysis:
        Optional :class:`PlanAnalysis` built from the plan being
        executed; when given, every operator execution folds its output
        cardinality, operation-counter delta and self/total wall time
        into the analysis — EXPLAIN ANALYZE mode.
    budget:
        Optional :class:`~repro.guard.QueryBudget`; checkpoints inside
        the operator bodies abort plan execution with
        :class:`~repro.errors.BudgetExceeded` when it is spent.
    """

    def __init__(self, document: "Document",
                 index: Optional["InvertedIndex"] = None,
                 cache: Optional[JoinCache] = None,
                 max_powerset_operand: Optional[int] = 16,
                 obs: Optional[Observability] = None,
                 kernel: KernelArg = None,
                 analysis: Optional[PlanAnalysis] = None,
                 budget: Optional["QueryBudget"] = None) -> None:
        self._document = document
        self._index = index
        self._cache = cache
        self._max_powerset_operand = max_powerset_operand
        self._obs = obs if obs is not None else NOOP
        self._kernel = resolve_kernel(kernel, document)
        self._analysis = analysis
        self._budget = budget
        # Analysis bookkeeping: one frame per in-flight operator,
        # accumulating its children's wall time and operation counters
        # so each operator records only its own share.
        self._frames: list[list] = []

    def execute(self, plan: PlanNode,
                stats: Optional[OperationStats] = None
                ) -> frozenset[Fragment]:
        """Evaluate ``plan`` and return its fragment set."""
        tally = stats if stats is not None else OperationStats()
        if self._budget is not None:
            self._budget.start()
            self._budget.bind_stats(tally)
        if self._obs.enabled:
            with self._obs.span("execute-plan", plan=plan.label(),
                                stats=tally) as span:
                result = self._eval(plan, tally)
                span.set(rows=len(result))
            return result
        return self._eval(plan, tally)

    def _eval(self, node: PlanNode,
              stats: OperationStats) -> frozenset[Fragment]:
        analysis = self._analysis
        if analysis is None:
            return self._eval_node(node, stats)
        before = stats.snapshot()
        self._frames.append([0.0, OperationStats()])
        started = time.perf_counter()
        try:
            result = self._eval_node(node, stats)
        finally:
            elapsed = time.perf_counter() - started
            child_seconds, child_ops = self._frames.pop()
            subtree = stats.delta(before)
            if self._frames:
                parent = self._frames[-1]
                parent[0] += elapsed
                parent[1].merge(subtree)
        analysis.record(node, rows=len(result), seconds=elapsed,
                        self_seconds=max(0.0, elapsed - child_seconds),
                        delta=subtree.delta(child_ops))
        return result

    def _eval_node(self, node: PlanNode,
                   stats: OperationStats) -> frozenset[Fragment]:
        if isinstance(node, KeywordScan):
            return keyword_fragments(self._document, node.term,
                                     index=self._index)
        if isinstance(node, Select):
            return select(node.predicate, self._eval(node.child, stats),
                          stats=stats)
        if isinstance(node, PairwiseJoin):
            return pairwise_join(self._eval(node.left, stats),
                                 self._eval(node.right, stats),
                                 stats=stats, cache=self._cache,
                                 kernel=self._kernel,
                                 budget=self._budget)
        if isinstance(node, FixedPoint):
            child = self._eval(node.child, stats)
            if self._budget is not None:
                self._budget.admit_candidates(len(child))
            closure = fixed_point_bounded if node.bounded else fixed_point
            return closure(child, stats=stats, cache=self._cache,
                           predicate=node.predicate, kernel=self._kernel,
                           budget=self._budget)
        if isinstance(node, PowersetJoin):
            operands = [self._eval(op, stats) for op in node.operands]
            if self._budget is not None:
                for operand in operands:
                    self._budget.admit_candidates(len(operand))
            return multiway_powerset_join(
                operands, stats=stats, cache=self._cache,
                max_operand_size=self._max_powerset_operand,
                kernel=self._kernel, budget=self._budget)
        raise PlanError(f"unknown plan node {type(node).__name__}")


def run_plan(document: "Document", query: Query, plan: PlanNode,
             index: Optional["InvertedIndex"] = None,
             cache: Optional[JoinCache] = None,
             strategy_name: str = "plan",
             obs: Optional[Observability] = None,
             kernel: KernelArg = None,
             analysis: Optional[PlanAnalysis] = None,
             budget: Optional["QueryBudget"] = None) -> QueryResult:
    """Execute a plan and wrap the outcome as a :class:`QueryResult`.

    Passing ``analysis=`` (a :class:`PlanAnalysis` of ``plan``) records
    per-operator runtime statistics while the plan runs.
    """
    ob = obs if obs is not None else NOOP
    evaluator = PlanEvaluator(document, index=index, cache=cache, obs=ob,
                              kernel=kernel, analysis=analysis,
                              budget=budget)
    stats = OperationStats()
    started = time.perf_counter()
    fragments = evaluator.execute(plan, stats=stats)
    elapsed = time.perf_counter() - started
    if ob.enabled:
        ob.record_query(
            document=getattr(document, "name", "?"), terms=query.terms,
            filter=repr(query.predicate), strategy=strategy_name,
            answers=len(fragments), elapsed=elapsed,
            stats=stats.as_dict(), plan=plan.label())
    return QueryResult(query=query, fragments=fragments,
                       strategy=strategy_name, elapsed=elapsed,
                       stats=stats.as_dict())
