"""Instrumented plan execution — an ``EXPLAIN ANALYZE`` for the algebra.

Wraps :class:`~repro.core.evaluator.PlanEvaluator` with per-operator
observation: every plan node's output cardinality, cumulative wall
time, and primitive-operation delta are recorded while the plan runs.
The annotated rendering puts measured numbers next to each operator —
the tool for understanding *where* a strategy spends its work, and for
checking the cost model's estimates against reality.

Example output::

    σa[size<=3]                      rows=4      1.1ms  Δjoins=0
      ⋈                              rows=11     0.9ms  Δjoins=14
        fixpoint[bounded]            rows=3      0.3ms  Δjoins=3
          scan[keyword=xquery]       rows=2      0.1ms  Δjoins=0
        ...
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .cost import CostModel
from .evaluator import PlanEvaluator
from .fragment import Fragment
from .plan import PlanNode
from .stats import OperationStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..index.inverted import InvertedIndex
    from ..xmltree.document import Document

__all__ = ["OperatorProfile", "ProfiledExecution", "profile_plan"]


@dataclass(frozen=True)
class OperatorProfile:
    """Measurements for one plan operator.

    Attributes
    ----------
    node:
        The plan operator.
    rows:
        Output cardinality (fragments produced).
    seconds:
        Wall time spent in this operator *including* its children.
    joins:
        Fragment joins performed by this operator's subtree.
    predicate_checks:
        Filter evaluations performed by this operator's subtree.
    depth:
        Nesting level in the plan (for rendering).
    self_seconds:
        Wall time spent in this operator *excluding* its children —
        the column to sort by when hunting the hot operator, since an
        operator high in the tree inherits all of its subtree's
        inclusive time.
    """

    node: PlanNode
    rows: int
    seconds: float
    joins: int
    predicate_checks: int
    depth: int
    self_seconds: float = 0.0


@dataclass(frozen=True)
class ProfiledExecution:
    """The outcome of :func:`profile_plan`.

    Attributes
    ----------
    fragments:
        The plan's result set.
    profiles:
        One :class:`OperatorProfile` per plan node, preorder.
    """

    fragments: frozenset[Fragment]
    profiles: tuple[OperatorProfile, ...]

    def render(self, cost_model: Optional[CostModel] = None,
               indent: str = "  ") -> str:
        """The annotated plan, one operator per line.

        With a ``cost_model``, each line also shows the *estimated*
        cardinality so estimation error is visible at a glance.
        """
        label_width = max((len(indent * p.depth + p.node.label())
                           for p in self.profiles), default=0) + 2
        lines = []
        for p in self.profiles:
            label = f"{indent * p.depth}{p.node.label()}"
            line = (f"{label.ljust(label_width)}"
                    f"rows={p.rows:<6} {p.seconds * 1000:7.2f}ms  "
                    f"self={p.self_seconds * 1000:7.2f}ms  "
                    f"joins={p.joins:<6} checks={p.predicate_checks}")
            if cost_model is not None:
                estimate = cost_model.estimate(p.node)
                line += f"  est.rows={estimate.cardinality:.0f}"
            lines.append(line)
        return "\n".join(lines)

    def total_seconds(self) -> float:
        """Wall time of the root operator (the whole execution)."""
        return self.profiles[0].seconds if self.profiles else 0.0


class _ProfilingEvaluator(PlanEvaluator):
    """PlanEvaluator that records per-operator measurements."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.records: list[OperatorProfile] = []
        self._depth = 0
        self._child_seconds: list[float] = []

    def _eval(self, node: PlanNode,
              stats: OperationStats) -> frozenset[Fragment]:
        joins_before = stats.fragment_joins + stats.join_cache_hits
        checks_before = stats.predicate_checks
        started = time.perf_counter()
        # Reserve this operator's slot so output stays preorder, and an
        # accumulator where this operator's children deposit their time.
        slot = len(self.records)
        self.records.append(None)  # type: ignore[arg-type]
        self._child_seconds.append(0.0)
        self._depth += 1
        try:
            result = super()._eval(node, stats)
        finally:
            self._depth -= 1
        elapsed = time.perf_counter() - started
        children = self._child_seconds.pop()
        if self._child_seconds:
            self._child_seconds[-1] += elapsed
        self.records[slot] = OperatorProfile(
            node=node,
            rows=len(result),
            seconds=elapsed,
            joins=(stats.fragment_joins + stats.join_cache_hits
                   - joins_before),
            predicate_checks=stats.predicate_checks - checks_before,
            depth=self._depth,
            self_seconds=max(0.0, elapsed - children),
        )
        return result


def profile_plan(document: "Document", plan: PlanNode,
                 index: Optional["InvertedIndex"] = None,
                 stats: Optional[OperationStats] = None
                 ) -> ProfiledExecution:
    """Execute ``plan`` with per-operator instrumentation."""
    evaluator = _ProfilingEvaluator(document, index=index)
    tally = stats if stats is not None else OperationStats()
    fragments = evaluator.execute(plan, stats=tally)
    return ProfiledExecution(fragments=fragments,
                             profiles=tuple(evaluator.records))
