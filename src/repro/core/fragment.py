"""Document fragments (paper Definition 2).

A fragment is a non-empty subset of a document's nodes whose induced
subgraph is connected — i.e. a subtree of the document tree.  Fragments
are immutable, hashable values; the algebra manipulates *sets* of them.

Because node ids are preorder ranks, several fragment properties are
cheap:

* the fragment root is simply ``min(nodes)``;
* document-order comparisons are integer comparisons;
* ``width`` (horizontal extent) is ``max(nodes) - min(nodes)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from ..errors import CrossDocumentError, FragmentError
from ..xmltree.navigation import fragment_leaves, is_connected

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..xmltree.document import Document

__all__ = ["Fragment"]


class Fragment:
    """An immutable connected node set of one document.

    Parameters
    ----------
    document:
        The document the nodes belong to.
    nodes:
        Node ids; their induced subgraph must be connected.
    validate:
        When True (default), connectivity and id ranges are checked and a
        :class:`~repro.errors.FragmentError` is raised on violation.
        Internal algebra code that constructs provably-connected sets
        passes ``validate=False`` to skip the O(|f|) check.
    """

    __slots__ = ("_doc", "_nodes", "_hash", "_bounds", "_height")

    def __init__(self, document: "Document", nodes: Iterable[int],
                 validate: bool = True) -> None:
        node_set = frozenset(nodes)
        if validate:
            if not node_set:
                raise FragmentError("a fragment must contain at least one "
                                    "node")
            for nid in node_set:
                if not 0 <= nid < document.size:
                    raise FragmentError(f"node id {nid} out of range for "
                                        f"document of {document.size} nodes")
            if not is_connected(document, node_set):
                raise FragmentError(f"nodes {sorted(node_set)} do not induce "
                                    "a connected subtree")
        self._doc = document
        self._nodes = node_set
        self._hash = hash(node_set)
        # Lazily cached structural measures: fragments are immutable, so
        # (min, max) preorder bounds and height are computed at most
        # once even when anti-monotonic filters probe them every
        # fixed-point round.
        self._bounds = None
        self._height = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_node(cls, document: "Document", node_id: int) -> "Fragment":
        """The single-node fragment ⟨n⟩."""
        return cls(document, (node_id,))

    @classmethod
    def subtree(cls, document: "Document", node_id: int) -> "Fragment":
        """The fragment consisting of the whole subtree under a node."""
        return cls(document, document.subtree(node_id), validate=False)

    @classmethod
    def whole_document(cls, document: "Document") -> "Fragment":
        """The fragment consisting of every node of the document."""
        return cls(document, document.node_ids(), validate=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def document(self) -> "Document":
        """The document this fragment belongs to."""
        return self._doc

    @property
    def nodes(self) -> frozenset[int]:
        """The node-id set of the fragment."""
        return self._nodes

    def _minmax(self) -> tuple[int, int]:
        """Cached (min, max) preorder ids of the node set."""
        bounds = self._bounds
        if bounds is None:
            bounds = (min(self._nodes), max(self._nodes))
            self._bounds = bounds
        return bounds

    @property
    def root(self) -> int:
        """The root of the induced subtree (its minimum preorder id)."""
        return self._minmax()[0]

    @property
    def size(self) -> int:
        """Number of nodes (the paper's size(f) filter measure)."""
        return len(self._nodes)

    @property
    def height(self) -> int:
        """Vertical distance from the root to the deepest fragment node.

        A single node has height 0, matching the paper's Figure 6 where
        ``height <= 2`` admits a three-level fragment.
        """
        if self._height is None:
            depth = self._doc.labels.depth
            root_depth = depth[self.root]
            self._height = max(depth[n] for n in self._nodes) - root_depth
        return self._height

    @property
    def width(self) -> int:
        """Horizontal extent: preorder span between extreme nodes.

        The paper's width filter bounds "the maximal horizontal distance
        between extreme nodes (the leftmost and the rightmost)".  We
        measure it as the preorder-rank span, which is 0 for a single
        node and monotone under fragment inclusion — hence ``width <= γ``
        is anti-monotonic.
        """
        lo, hi = self._minmax()
        return hi - lo

    @property
    def leaves(self) -> frozenset[int]:
        """Nodes having no child inside the fragment (induced leaves)."""
        return fragment_leaves(self._doc, self._nodes)

    def keywords(self) -> frozenset[str]:
        """The union of keywords over all fragment nodes."""
        words: set[str] = set()
        for nid in self._nodes:
            words |= self._doc.keywords(nid)
        return frozenset(words)

    def leaf_keywords(self) -> frozenset[str]:
        """The union of keywords over the fragment's induced leaves."""
        words: set[str] = set()
        for nid in self.leaves:
            words |= self._doc.keywords(nid)
        return frozenset(words)

    def contains_keyword(self, keyword: str) -> bool:
        """Whether any fragment node carries ``keyword``."""
        return any(keyword in self._doc.keywords(n) for n in self._nodes)

    # ------------------------------------------------------------------
    # Containment (the paper's f' ⊆ f)
    # ------------------------------------------------------------------

    def issubfragment(self, other: "Fragment") -> bool:
        """Whether this fragment is contained in ``other`` (f ⊆ f')."""
        self._require_same_document(other)
        return self._nodes <= other._nodes

    def __le__(self, other: "Fragment") -> bool:
        return self.issubfragment(other)

    def __lt__(self, other: "Fragment") -> bool:
        self._require_same_document(other)
        return self._nodes < other._nodes

    def __ge__(self, other: "Fragment") -> bool:
        return other.issubfragment(self)

    def __gt__(self, other: "Fragment") -> bool:
        return other < self

    def _require_same_document(self, other: "Fragment") -> None:
        if self._doc is not other._doc:
            raise CrossDocumentError(
                "fragments belong to different documents "
                f"({self._doc.name!r} vs {other._doc.name!r})")

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fragment):
            return NotImplemented
        return self._doc is other._doc and self._nodes == other._nodes

    def __hash__(self) -> int:
        return self._hash

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        ids = ",".join(f"n{n}" for n in sorted(self._nodes))
        return f"⟨{ids}⟩"

    def label(self) -> str:
        """The paper's angle-bracket notation, e.g. ``⟨n16,n17,n18⟩``."""
        return repr(self)
