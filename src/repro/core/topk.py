"""Top-k retrieval via adaptive filter tightening.

A user who wants "the k best answers" does not know which size bound β
to pass.  Anti-monotonicity makes an adaptive scheme sound and cheap:

1. evaluate with a small β (push-down prunes almost everything),
2. if fewer than k answers arrive, double β and re-evaluate,
3. stop when k answers exist or β covers the whole document.

Because ``size <= β`` is anti-monotonic, every round's answers are a
subset of the next round's (Theorem 3 guarantees no false negatives
among fragments within the bound), so the first round that yields k
answers yields the k *smallest* answers overall.

The actual evaluation lives in :func:`repro.core.streaming.stream_top_k`
— this wrapper keeps the original call shape while fixing what the old
implementation got wrong: the strategy is no longer hardcoded to
push-down, ``budget``/``obs``/``kernel`` thread through to the rounds,
and the answer set is heap-selected once at the end instead of fully
re-sorted on every β round.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .algebra import JoinCache, KernelArg
from .filters import Filter
from .fragment import Fragment
from .query import Query
from .strategies import Strategy
from .streaming import stream_top_k

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..guard.budget import QueryBudget
    from ..index.inverted import InvertedIndex
    from ..obs import Observability
    from ..xmltree.document import Document

__all__ = ["top_k_smallest"]


def top_k_smallest(document: "Document", query: Query, k: int,
                   index: Optional["InvertedIndex"] = None,
                   initial_beta: int = 2,
                   extra_predicate: Optional[Filter] = None,
                   *,
                   strategy: Strategy = Strategy.PUSHDOWN,
                   budget: Optional["QueryBudget"] = None,
                   obs: Optional["Observability"] = None,
                   kernel: KernelArg = None,
                   cache: Optional[JoinCache] = None) -> list[Fragment]:
    """The ``k`` smallest answers to ``query``, found adaptively.

    ``query.predicate`` is combined with the adaptive size bound; pass
    ``extra_predicate`` for additional (ideally anti-monotonic)
    restrictions.  Returns fewer than ``k`` fragments when the full
    answer set is smaller.

    Parameters
    ----------
    initial_beta:
        The starting size bound (doubled each round).
    strategy:
        Evaluation strategy for the β rounds (default push-down, which
        benefits most from the bound).
    budget / obs / kernel / cache:
        Threaded through to every round; one budget covers the whole
        adaptive search, and a shared cache keeps re-evaluations
        largely incremental.
    """
    return stream_top_k(document, query, k, strategy=strategy,
                        index=index, cache=cache, kernel=kernel,
                        obs=obs, budget=budget,
                        initial_beta=initial_beta,
                        extra_predicate=extra_predicate)
