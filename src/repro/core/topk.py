"""Top-k retrieval via adaptive filter tightening.

A user who wants "the k best answers" does not know which size bound β
to pass.  Anti-monotonicity makes an adaptive scheme sound and cheap:

1. evaluate with a small β (push-down prunes almost everything),
2. if fewer than k answers arrive, double β and re-evaluate,
3. stop when k answers exist or β covers the whole document.

Because ``size <= β`` is anti-monotonic, every round's answers are a
subset of the next round's (Theorem 3 guarantees no false negatives
among fragments within the bound), so the first round that yields k
answers yields the k *smallest* answers overall.  A shared join cache
makes the re-evaluations largely incremental.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .algebra import JoinCache
from .filters import Filter, SizeAtMost
from .fragment import Fragment
from .query import Query
from .strategies import Strategy, evaluate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..index.inverted import InvertedIndex
    from ..xmltree.document import Document

__all__ = ["top_k_smallest"]


def top_k_smallest(document: "Document", query: Query, k: int,
                   index: Optional["InvertedIndex"] = None,
                   initial_beta: int = 2,
                   extra_predicate: Optional[Filter] = None
                   ) -> list[Fragment]:
    """The ``k`` smallest answers to ``query``, found adaptively.

    ``query.predicate`` is combined with the adaptive size bound; pass
    ``extra_predicate`` for additional (ideally anti-monotonic)
    restrictions.  Returns fewer than ``k`` fragments when the full
    answer set is smaller.

    Parameters
    ----------
    initial_beta:
        The starting size bound (doubled each round).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if initial_beta < 1:
        raise ValueError("initial_beta must be >= 1")

    cache = JoinCache()
    beta = initial_beta
    while True:
        predicate: Filter = SizeAtMost(beta) & query.predicate
        if extra_predicate is not None:
            predicate = predicate & extra_predicate
        bounded = Query(query.terms, predicate)
        result = evaluate(document, bounded, strategy=Strategy.PUSHDOWN,
                          index=index, cache=cache)
        answers = sorted(result.fragments,
                         key=lambda f: (f.size, sorted(f.nodes)))
        if len(answers) >= k or beta >= document.size:
            return answers[:k]
        beta = min(beta * 2, document.size)
