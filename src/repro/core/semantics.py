"""Reference (oracle) implementations of the answer semantics.

The algebraic evaluation pipeline is several rewrites away from
Definition 8's declarative statement.  For verification, this module
computes answers *directly from the definitions* by exhaustive
enumeration — exponential, usable only on small documents, and
therefore the ideal independent oracle for property-based testing.

Two oracles:

``definition8_answers``
    Every fragment of the document such that each query term occurs at
    an induced leaf and the predicate holds — Definition 8 verbatim.
``powerset_semantics_answers``
    ``σ_P(F1 ⋈* … ⋈* Fm)`` computed by literal subset enumeration —
    the §2.3 evaluation formula.

The two differ deliberately (DESIGN.md §4): Definition 8's leaf
condition admits fragments the join-based construction never builds
(e.g. ones with extraneous keyword-free leaves are *excluded* by
Definition 8 but a join of keyword nodes can also produce fragments
whose keyword nodes end up internal).  :func:`semantics_gap` computes
the symmetric difference so the relationship can be inspected and
tested rather than assumed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..xmltree.document import Document
from .algebra import multiway_powerset_join
from .enumeration import iter_all_fragments
from .filters import select
from .fragment import Fragment
from .query import Query, is_answer, keyword_fragments

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..guard.budget import QueryBudget

__all__ = ["definition8_answers", "powerset_semantics_answers",
           "semantics_gap"]


def definition8_answers(document: Document, query: Query,
                        limit: Optional[int] = 200_000,
                        budget: Optional["QueryBudget"] = None
                        ) -> frozenset[Fragment]:
    """Answers per Definition 8, by exhaustive fragment enumeration.

    A fragment qualifies iff every query term occurs at one of its
    induced leaves and the query predicate maps it to true.  An
    optional :class:`~repro.guard.QueryBudget` is deadline-polled per
    enumerated fragment (exhaustive enumeration is the slowest loop in
    the library; the oracle must stay abortable too).

    Raises
    ------
    FragmentError
        If the document has more than ``limit`` fragments.
    """
    if budget is None:
        return frozenset(fragment
                         for fragment in iter_all_fragments(document,
                                                            limit=limit)
                         if is_answer(fragment, query))
    budget.start()
    answers = set()
    for fragment in iter_all_fragments(document, limit=limit):
        budget.poll()
        if is_answer(fragment, query):
            answers.add(fragment)
            budget.admit_live(len(answers))
    return frozenset(answers)


def powerset_semantics_answers(document: Document, query: Query,
                               max_operand_size: Optional[int] = 16,
                               budget: Optional["QueryBudget"] = None
                               ) -> frozenset[Fragment]:
    """Answers per the §2.3 evaluation formula, by literal enumeration.

    ``σ_P({⋈(F1' ∪ … ∪ Fm') | Fi' ⊆ Fi, Fi' ≠ ∅})`` with
    ``Fi = σ_{keyword=ki}(nodes(D))``.
    """
    keyword_sets = [keyword_fragments(document, term)
                    for term in query.terms]
    if any(not fs for fs in keyword_sets):
        return frozenset()
    if budget is not None:
        budget.start()
        for fs in keyword_sets:
            budget.admit_candidates(len(fs))
    candidates = multiway_powerset_join(
        keyword_sets, max_operand_size=max_operand_size, budget=budget)
    return select(query.predicate, candidates)


def semantics_gap(document: Document, query: Query,
                  limit: Optional[int] = 200_000
                  ) -> tuple[frozenset[Fragment], frozenset[Fragment]]:
    """The two semantics' symmetric difference.

    Returns ``(only_definition8, only_powerset)``:

    * ``only_definition8`` — fragments the declarative definition
      admits but the join construction never generates (they contain
      nodes from outside the keyword sets' spanning structure);
    * ``only_powerset`` — generated fragments whose keyword coverage
      ends up on internal nodes only, failing the leaf condition.
    """
    declarative = definition8_answers(document, query, limit=limit)
    constructive = powerset_semantics_answers(document, query)
    return (declarative - constructive, constructive - declarative)
