"""Queries and answer semantics (paper Definitions 7 and 8).

A query ``Q_P{k1, …, km}`` is a set of query terms plus a selection
predicate.  Its answer is

    ``σ_P(F1 ⋈* F2 ⋈* … ⋈* Fm)``  with  ``Fi = σ_{keyword=ki}(nodes(D))``

— every fragment obtainable by joining at least one keyword node per
term, filtered by ``P`` and deduplicated.  Definition 8 additionally
phrases the keyword condition over the *leaves* of the answer fragment;
:func:`is_answer` implements that check, and ``strict`` evaluation mode
applies it on top of the algebraic result (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..errors import QueryError
from .filters import Filter, TrueFilter
from .fragment import Fragment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..index.inverted import InvertedIndex
    from ..xmltree.document import Document

__all__ = ["Query", "QueryResult", "keyword_fragments", "is_answer"]


@dataclass(frozen=True)
class Query:
    """``Q_P{k1, …, km}``: query terms plus a selection predicate.

    Terms are normalised to casefolded form on construction so they
    match the tokenizer's output.  ``predicate`` defaults to the
    always-true filter (no restriction).
    """

    terms: tuple[str, ...]
    predicate: Filter = field(default_factory=TrueFilter)

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError("a query needs at least one term")
        normalised = tuple(term.casefold() for term in self.terms)
        if any(not term for term in normalised):
            raise QueryError("query terms must be non-empty")
        if len(set(normalised)) != len(normalised):
            raise QueryError(f"duplicate query terms in {normalised}")
        object.__setattr__(self, "terms", normalised)

    @classmethod
    def of(cls, *terms: str, predicate: Optional[Filter] = None) -> "Query":
        """Convenience constructor: ``Query.of("xquery", "optimization")``."""
        return cls(tuple(terms),
                   predicate if predicate is not None else TrueFilter())

    def describe(self) -> str:
        """The paper's notation, e.g. ``Q[size<=3]{xquery, optimization}``."""
        return f"Q[{self.predicate!r}]{{{', '.join(self.terms)}}}"


@dataclass(frozen=True)
class QueryResult:
    """The outcome of evaluating a query with one strategy.

    Attributes
    ----------
    query:
        The evaluated query.
    fragments:
        The deduplicated answer set.
    strategy:
        Name of the evaluation strategy used.
    elapsed:
        Wall-clock seconds spent in evaluation.
    stats:
        Primitive-operation counters (joins, predicate checks, …) as a
        plain dict snapshot.
    """

    query: Query
    fragments: frozenset[Fragment]
    strategy: str
    elapsed: float
    stats: dict

    def __len__(self) -> int:
        return len(self.fragments)

    def sorted_fragments(self) -> list[Fragment]:
        """Answers ordered smallest-first, ties broken by node ids.

        Smaller fragments are the tighter (more focused) answers; this
        is the presentation order used by the CLI and the examples.
        """
        return sorted(self.fragments,
                      key=lambda f: (f.size, sorted(f.nodes)))

    def top(self, n: int) -> list[Fragment]:
        """The ``n`` smallest answers."""
        return self.sorted_fragments()[:n]

    def non_overlapping(self) -> list[Fragment]:
        """Answers with sub-fragments of other answers removed.

        Implements the §5 discussion of *overlapping answers*: an answer
        that is contained in another answer is presentation redundancy;
        this helper keeps only the maximal fragments.
        """
        fragments = list(self.fragments)
        maximal = []
        for fragment in fragments:
            if not any(fragment.nodes < other.nodes
                       for other in fragments):
                maximal.append(fragment)
        return sorted(maximal, key=lambda f: (f.size, sorted(f.nodes)))


def keyword_fragments(document: "Document", term: str,
                      index: Optional["InvertedIndex"] = None
                      ) -> frozenset[Fragment]:
    """``σ_{keyword=term}(nodes(D))`` as single-node fragments.

    Uses the inverted index when provided, otherwise scans the document.
    """
    if index is not None:
        node_ids: Iterable[int] = index.postings(term)
    else:
        node_ids = document.nodes_with_keyword(term)
    return frozenset(Fragment(document, (nid,), validate=False)
                     for nid in node_ids)


def is_answer(fragment: Fragment, query: Query) -> bool:
    """Definition 8 check: keywords on leaves, predicate satisfied.

    Every query term must occur at some *leaf* of the fragment's induced
    subtree, and the fragment must satisfy the query predicate.
    """
    if not query.predicate.matches(fragment):
        return False
    doc = fragment.document
    leaves = fragment.leaves
    for term in query.terms:
        if not any(term in doc.keywords(leaf) for leaf in leaves):
            return False
    return True


def covers_all_terms(fragment: Fragment, terms: Sequence[str]) -> bool:
    """Whether every term occurs somewhere in the fragment (any node)."""
    return all(fragment.contains_keyword(term) for term in terms)
