"""A small textual query language.

Applications (and the CLI) often receive queries as strings.  The
grammar covers the paper's query form — keywords plus a filter
expression over the built-in predicates::

    query      := keyword+ [ '[' filter ']' ]
    filter     := disjunct ( '|' disjunct )*
    disjunct   := atom ( '&' atom )*
    atom       := '!' atom | '(' filter ')' | comparison | special
    comparison := measure ('<=' | '>=') integer
    measure    := 'size' | 'height' | 'width' | 'leaves' | 'rootdepth'
    special    := 'keyword' ('=' | '!=') word
                | 'tags' '=' word (',' word)*
                | 'equaldepth' '(' word ',' word ')'
                | 'true'

Examples::

    parse_query("xquery optimization [size<=3]")
    parse_query("storage engine [size<=6 & height<=2]")
    parse_query("a b [(width<=4 | leaves<=2) & keyword!=draft]")

Anti-monotonicity of the parsed filter follows automatically from the
combinator rules, so parsed queries get push-down whenever the
expression allows it.
"""

from __future__ import annotations

import re

from ..errors import QueryError
from .filters import (ContainsKeyword, EqualDepth, ExcludesKeyword,
                      Filter, HeightAtMost, LeafCountAtMost, Not,
                      RootDepthAtLeast, SizeAtLeast, SizeAtMost,
                      TagsWithin, TrueFilter, WidthAtMost)
from .query import Query

__all__ = ["parse_query", "parse_filter"]

_TOKEN_RE = re.compile(r"""
    \s*(
        <=|>=|!=|=|\(|\)|\[|\]|&|\||!|,|
        [A-Za-z_][A-Za-z0-9_']*|
        [0-9]+
    )
""", re.VERBOSE)

_MEASURES_AT_MOST = {
    "size": SizeAtMost,
    "height": HeightAtMost,
    "width": WidthAtMost,
    "leaves": LeafCountAtMost,
}


def _tokenize(text: str) -> list[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QueryError(f"cannot tokenize filter near "
                             f"{remainder[:12]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _FilterParser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def parse(self) -> Filter:
        result = self._disjunction()
        if self._pos != len(self._tokens):
            raise QueryError(f"unexpected token {self._peek()!r} in "
                             "filter expression")
        return result

    # -- grammar ------------------------------------------------------

    def _disjunction(self) -> Filter:
        left = self._conjunction()
        while self._accept("|"):
            left = left | self._conjunction()
        return left

    def _conjunction(self) -> Filter:
        left = self._atom()
        while self._accept("&"):
            left = left & self._atom()
        return left

    def _atom(self) -> Filter:
        if self._accept("!"):
            return Not(self._atom())
        if self._accept("("):
            inner = self._disjunction()
            self._expect(")")
            return inner
        word = self._next("a predicate")
        lowered = word.lower()
        if lowered == "true":
            return TrueFilter()
        if lowered in _MEASURES_AT_MOST or lowered == "rootdepth":
            return self._comparison(lowered)
        if lowered == "keyword":
            return self._keyword_predicate()
        if lowered == "tags":
            return self._tags_predicate()
        if lowered == "equaldepth":
            return self._equal_depth_predicate()
        raise QueryError(f"unknown predicate {word!r}")

    def _comparison(self, measure: str) -> Filter:
        op = self._next("'<=' or '>='")
        value = self._integer()
        if measure == "rootdepth":
            if op == ">=":
                return RootDepthAtLeast(value)
            raise QueryError("rootdepth only supports '>='")
        if op == "<=":
            return _MEASURES_AT_MOST[measure](value)
        if op == ">=" and measure == "size":
            return SizeAtLeast(value)
        raise QueryError(f"{measure} does not support operator {op!r}")

    def _keyword_predicate(self) -> Filter:
        op = self._next("'=' or '!='")
        word = self._next("a keyword").casefold()
        if op == "=":
            return ContainsKeyword(word)
        if op == "!=":
            return ExcludesKeyword(word)
        raise QueryError(f"keyword does not support operator {op!r}")

    def _tags_predicate(self) -> Filter:
        self._expect("=")
        tags = [self._next("a tag name")]
        while self._accept(","):
            tags.append(self._next("a tag name"))
        return TagsWithin(tags)

    def _equal_depth_predicate(self) -> Filter:
        self._expect("(")
        first = self._next("a keyword").casefold()
        self._expect(",")
        second = self._next("a keyword").casefold()
        self._expect(")")
        return EqualDepth(first, second)

    # -- token plumbing ------------------------------------------------

    def _peek(self) -> str:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return "<end>"

    def _accept(self, token: str) -> bool:
        if self._peek() == token:
            self._pos += 1
            return True
        return False

    def _expect(self, token: str) -> None:
        if not self._accept(token):
            raise QueryError(f"expected {token!r}, found "
                             f"{self._peek()!r}")

    def _next(self, description: str) -> str:
        if self._pos >= len(self._tokens):
            raise QueryError(f"expected {description} at end of filter")
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _integer(self) -> int:
        token = self._next("an integer")
        if not token.isdigit():
            raise QueryError(f"expected an integer, found {token!r}")
        return int(token)


def parse_filter(text: str) -> Filter:
    """Parse a filter expression such as ``size<=3 & height<=2``."""
    tokens = _tokenize(text)
    if not tokens:
        return TrueFilter()
    return _FilterParser(tokens).parse()


def parse_query(text: str) -> Query:
    """Parse a full textual query: keywords plus optional ``[filter]``.

    >>> q = parse_query("xquery optimization [size<=3]")
    >>> q.terms
    ('xquery', 'optimization')
    >>> q.predicate.is_anti_monotonic
    True
    """
    text = text.strip()
    if not text:
        raise QueryError("empty query string")
    bracket = text.find("[")
    if bracket == -1:
        keywords_part, filter_part = text, ""
    else:
        if not text.endswith("]"):
            raise QueryError("unterminated '[' in query string")
        keywords_part = text[:bracket]
        filter_part = text[bracket + 1:-1]
    terms = tuple(keywords_part.split())
    if not terms:
        raise QueryError("query string contains no keywords")
    return Query(terms, parse_filter(filter_part))
