"""Presentation of overlapping answers (paper §5).

The answer set of a query typically contains fragments that are
sub-fragments of other answers — the paper's *overlapping answers*.
§5 discusses three presentation policies and leaves the choice open;
this module implements all three:

``OverlapPolicy.KEEP``
    Present everything (the raw algebraic answer set).
``OverlapPolicy.HIDE``
    "they can be completely hidden" — present only maximal fragments.
``OverlapPolicy.GROUP``
    "presented in a visually pleasing way to show their structural
    relationships" — group each maximal fragment with the answers it
    contains, as an :class:`AnswerGroup` forest.

:func:`overlap_matrix` quantifies overlap (shared-node fractions), the
measure the INEX community's overlap debate ([3][10] in the paper) is
fought over.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from .fragment import Fragment

__all__ = ["OverlapPolicy", "AnswerGroup", "arrange", "overlap",
           "overlap_matrix"]


class OverlapPolicy(enum.Enum):
    """How overlapping answers are presented (§5)."""

    KEEP = "keep"
    HIDE = "hide"
    GROUP = "group"


@dataclass(frozen=True)
class AnswerGroup:
    """A maximal answer together with the answers it contains.

    ``members`` are the *other* answers that are sub-fragments of
    ``representative``, smallest first.
    """

    representative: Fragment
    members: tuple[Fragment, ...]

    @property
    def total(self) -> int:
        """Number of answers in the group, representative included."""
        return 1 + len(self.members)


def _sorted(fragments: Iterable[Fragment]) -> list[Fragment]:
    return sorted(fragments, key=lambda f: (f.size, sorted(f.nodes)))


def arrange(fragments: Iterable[Fragment],
            policy: OverlapPolicy = OverlapPolicy.GROUP
            ) -> list[AnswerGroup]:
    """Arrange an answer set for presentation under ``policy``.

    Always returns a list of :class:`AnswerGroup`; under ``KEEP`` every
    answer is its own group, under ``HIDE`` only maximal answers appear
    (with empty member lists), under ``GROUP`` each maximal answer
    carries its sub-answers.

    A sub-fragment contained in several maximal answers is listed under
    the smallest such representative (the tightest context).
    """
    answers = _sorted(fragments)
    if policy is OverlapPolicy.KEEP:
        return [AnswerGroup(f, ()) for f in answers]

    maximal = [f for f in answers
               if not any(f.nodes < g.nodes for g in answers)]
    if policy is OverlapPolicy.HIDE:
        return [AnswerGroup(f, ()) for f in _sorted(maximal)]

    members: dict[Fragment, list[Fragment]] = {m: [] for m in maximal}
    for fragment in answers:
        if fragment in members:
            continue
        hosts = [m for m in maximal if fragment.nodes < m.nodes]
        # hosts is non-empty: a non-maximal answer is below some
        # maximal one; pick the tightest.
        host = min(hosts, key=lambda m: (m.size, sorted(m.nodes)))
        members[host].append(fragment)
    return [AnswerGroup(m, tuple(_sorted(members[m])))
            for m in _sorted(maximal)]


def overlap(f1: Fragment, f2: Fragment) -> float:
    """Jaccard overlap of two fragments' node sets (0.0 – 1.0)."""
    union = f1.nodes | f2.nodes
    if not union:
        return 0.0
    return len(f1.nodes & f2.nodes) / len(union)


def overlap_matrix(fragments: Sequence[Fragment]) -> list[list[float]]:
    """Pairwise Jaccard overlaps; the INEX-style overlap diagnostic."""
    items = list(fragments)
    return [[overlap(a, b) for b in items] for a in items]
