"""Logical query plans — the paper's *query evaluation trees* (Figure 5).

A plan is an immutable tree of operator nodes:

``KeywordScan(term)``
    ``σ_{keyword=term}(nodes(D))`` — leaf of the plan.
``Select(predicate, child)``
    ``σ_P`` over the child's output.
``PairwiseJoin(left, right)``
    ``F1 ⋈ F2``.
``FixedPoint(child, bounded)``
    ``F+`` — bounded mode uses the Theorem-1 iteration count, unbounded
    mode uses semi-naive iteration with fixed-point checking.
``PowersetJoin(children)``
    ``F1 ⋈* … ⋈* Fm`` by enumeration (the pre-optimisation form).

Plans are built by :func:`initial_plan`, rewritten by
:mod:`repro.core.optimizer`, executed by
:mod:`repro.core.evaluator`, and rendered by :func:`explain` in the
indented style of the paper's Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import PlanError
from .filters import Filter
from .query import Query

__all__ = [
    "PlanNode",
    "KeywordScan",
    "Select",
    "PairwiseJoin",
    "FixedPoint",
    "PowersetJoin",
    "initial_plan",
    "explain",
]


class PlanNode:
    """Base class for logical plan operators."""

    def children(self) -> tuple["PlanNode", ...]:
        """Child operators, left to right."""
        return ()

    def label(self) -> str:
        """One-line description used by :func:`explain`."""
        raise NotImplementedError

    def walk(self) -> Iterator["PlanNode"]:
        """Yield this node and every descendant, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class KeywordScan(PlanNode):
    """Leaf: the single-node fragments containing ``term``."""

    term: str

    def label(self) -> str:
        return f"scan[keyword={self.term}]"


@dataclass(frozen=True)
class Select(PlanNode):
    """``σ_P`` applied to the child's fragment set."""

    predicate: Filter
    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        push = "a" if self.predicate.is_anti_monotonic else ""
        return f"σ{push}[{self.predicate!r}]"


@dataclass(frozen=True)
class PairwiseJoin(PlanNode):
    """``left ⋈ right`` (pairwise fragment join)."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "⋈"


@dataclass(frozen=True)
class FixedPoint(PlanNode):
    """``child+`` — closure under fragment join.

    ``bounded=True`` runs exactly ``|⊖(F)|`` rounds (Theorem 1);
    ``bounded=False`` iterates semi-naively until stable.  An optional
    anti-monotonic ``predicate`` prunes during iteration (Theorem 3).
    """

    child: PlanNode
    bounded: bool = True
    predicate: Optional[Filter] = None

    def __post_init__(self) -> None:
        if self.predicate is not None \
                and not self.predicate.is_anti_monotonic:
            raise PlanError("only anti-monotonic predicates may prune "
                            "inside a fixed point (Theorem 3)")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        mode = "bounded" if self.bounded else "semi-naive"
        pruned = (f", prune={self.predicate!r}"
                  if self.predicate is not None else "")
        return f"fixpoint[{mode}{pruned}]"


@dataclass(frozen=True)
class PowersetJoin(PlanNode):
    """``F1 ⋈* … ⋈* Fm`` by subset enumeration (pre-optimisation)."""

    operands: tuple[PlanNode, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 1:
            raise PlanError("powerset join needs at least one operand")

    def children(self) -> tuple[PlanNode, ...]:
        return self.operands

    def label(self) -> str:
        return "⋈*"


def initial_plan(query: Query) -> PlanNode:
    """The canonical unoptimised plan: ``σ_P(scan(k1) ⋈* … ⋈* scan(km))``.

    This is exactly the Definition-8 evaluation formula; the optimizer
    turns it into the Figure-5 right-hand tree.
    """
    scans: tuple[PlanNode, ...] = tuple(KeywordScan(t) for t in query.terms)
    return Select(query.predicate, PowersetJoin(scans))


def explain(plan: PlanNode, indent: str = "  ", analyze=None) -> str:
    """Render a plan as an indented operator tree (cf. Figure 5).

    With ``analyze=`` (a :class:`~repro.core.evaluator.PlanAnalysis`
    recorded while executing this plan), every operator line carries its
    measured runtime statistics — fragments in/out, joins, cache hit
    ratio, predicate checks, pushdown discards, self/total time — the
    EXPLAIN ANALYZE form of the same tree.
    """
    if analyze is not None:
        if [op.label for op in analyze.operators] \
                != [node.label() for node in plan.walk()]:
            raise PlanError("analysis does not describe this plan")
        return analyze.render(indent=indent)
    lines: list[str] = []

    def emit(node: PlanNode, level: int) -> None:
        lines.append(f"{indent * level}{node.label()}")
        for child in node.children():
            emit(child, level + 1)

    emit(plan, 0)
    return "\n".join(lines)
