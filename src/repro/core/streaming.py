"""Streaming operator pipeline with top-k early termination.

All four Section-4 strategies in :mod:`repro.core.strategies`
materialize the complete answer set before anything downstream (ranking,
pagination, a CLI ``-n 10``) sees a single fragment.  This module
refactors them into incremental producer/consumer **operators** —
scan → fixpoint/reduce → join → select → emit — that yield answer
fragments *as they are proven*, so a consumer that needs only the best
``k`` answers can stop the producers long before the full set exists.

Two soundness arguments carry everything here:

* **Theorem 3 (anti-monotonic push-down).**  Any anti-monotonic
  conjunct of the final selection may be applied below every join and
  inside every fixed point without changing the answer set.  The
  streaming pipeline pushes the anti-monotonic *component* of the
  effective predicate (the adaptive ``size <= β`` bound plus whatever
  part of the caller's filter is anti-monotonic), which is strictly more
  pruning than :func:`~repro.core.strategies.evaluate`'s all-or-nothing
  push-down — with an identical answer set.

* **The β-round bound.**  A round evaluated under ``size <= β`` yields
  *exactly* the answers of size ≤ β (Theorem 3: no false negatives
  within the bound).  Doubling β therefore only ever *appends* larger
  answers: everything already seen is final, which is what lets
  :func:`stream_top_k` and the collection layer emit results
  incrementally in the canonical order and stop as soon as no unseen
  fragment can precede the current ``k``-th.

The canonical orderings shared by every top-k/ranking path live here
(:func:`fragment_order_key`, :func:`hit_order_key`,
:func:`ranked_order_key`) so streamed and materialized results break
ties identically.  See ``docs/streaming.md``.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Sequence

from ..obs import (NOOP, Observability, STREAM_EARLY_EXITS, STREAM_ROUNDS,
                   STREAM_ROWS)
from .algebra import (JoinCache, KernelArg, fragment_join, join_all,
                      nonempty_subsets, resolve_kernel)
from .filters import Filter, SizeAtMost, select
from .fragment import Fragment
from .query import Query, keyword_fragments
from .reduce import _TICK_BLOCK, reduction_count
from .stats import OperationStats
from .strategies import Strategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..guard.budget import QueryBudget
    from ..index.inverted import InvertedIndex
    from ..xmltree.document import Document

__all__ = [
    "Operator", "ScanOp", "FixpointOp", "JoinOp", "SelectOp",
    "PowersetOp", "FragmentStream", "TopKHeap", "build_pipeline",
    "stream_evaluate", "stream_top_k", "fragment_order_key",
    "hit_order_key", "ranked_order_key",
]


# ----------------------------------------------------------------------
# Canonical orderings
# ----------------------------------------------------------------------
#
# Every presentation/top-k path in the repo must agree on how equal
# fragments tie-break, or a streamed top-k and a materialized sort can
# return different (both "correct") answer lists.  These three keys are
# the single source of truth:

def fragment_order_key(fragment: Fragment) -> tuple:
    """Single-document presentation order: smallest first, then node ids.

    Matches ``QueryResult.sorted_fragments`` and ``top_k_smallest``.
    """
    return (fragment.size, tuple(sorted(fragment.nodes)))


def hit_order_key(document_name: str, fragment: Fragment) -> tuple:
    """Collection presentation order: size, then document, then nodes.

    Matches ``CollectionResult.hits``.
    """
    return (fragment.size, document_name, tuple(sorted(fragment.nodes)))


def ranked_order_key(document_name: str, score: float,
                     fragment: Fragment) -> tuple:
    """Ranked order: best score first, then the compactness tie-breaks.

    Equal scores prefer the smaller fragment, then the lexically
    earlier document, then node ids — exactly the order the stable
    materialized sort in ``DocumentCollection.ranked_search`` produced
    (its per-document ``FragmentScorer.rank`` pre-sorts by
    ``(-score, size, nodes)``, so the final stable ``(-score, size,
    name)`` sort leaves equal keys in node-id order).
    """
    return (-score, fragment.size, document_name,
            tuple(sorted(fragment.nodes)))


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------

class Operator:
    """One stage of a streaming pipeline: an iterable of fragments.

    Operators compose producer→consumer: iterating an operator pulls
    from its upstream operator(s) on demand, so abandoning the iterator
    (top-k satisfied, budget spent, client went away) stops the whole
    pipeline without computing the rest of the answer set.  Each
    operator counts ``rows_in``/``rows_out`` for the flight-recorder /
    metrics streamed-rows accounting.
    """

    label = "operator"

    def __init__(self) -> None:
        self.rows_in = 0
        self.rows_out = 0

    def __iter__(self) -> Iterator[Fragment]:
        raise NotImplementedError

    def counters(self) -> dict:
        """Plain-dict snapshot for telemetry."""
        return {"operator": self.label, "rows_in": self.rows_in,
                "rows_out": self.rows_out}


class ScanOp(Operator):
    """``σ_{keyword=term}(nodes(D))`` as a stream of singleton fragments.

    The keyword set is resolved eagerly at construction (it is the
    pipeline's leaf input and the conjunctive early exit needs its
    emptiness before anything runs); iteration just streams it.
    """

    label = "scan"

    def __init__(self, term: str, fragments: frozenset[Fragment]) -> None:
        super().__init__()
        self.term = term
        self.fragments = fragments

    def __iter__(self) -> Iterator[Fragment]:
        for fragment in self.fragments:
            self.rows_out += 1
            yield fragment


class FixpointOp(Operator):
    """``F+`` (Definition 9) emitted incrementally, round by round.

    ``bounded=True`` mirrors :func:`~repro.core.reduce.fixed_point_bounded`
    (Theorem-1 round count, no fixed-point checking); ``bounded=False``
    mirrors the semi-naive :func:`~repro.core.reduce.fixed_point`.  An
    optional anti-monotonic ``predicate`` prunes fragments as they are
    produced (Theorem 3), exactly like the materialized closures — but
    here every *surviving* fragment is yielded the moment its round
    produces it, so downstream joins start before the closure finishes.
    """

    label = "fixpoint"

    def __init__(self, source: Operator, *, bounded: bool,
                 predicate: Optional[Filter] = None,
                 stats: Optional[OperationStats] = None,
                 cache: Optional[JoinCache] = None,
                 kernel=None,
                 budget: Optional["QueryBudget"] = None) -> None:
        super().__init__()
        self._source = source
        self._bounded = bounded
        self._predicate = predicate
        self._stats = stats
        self._cache = cache
        self._kernel = kernel
        self._budget = budget

    def _filtered(self, fragments) -> frozenset[Fragment]:
        if self._predicate is None:
            return frozenset(fragments)
        return select(self._predicate, fragments, stats=self._stats)

    def __iter__(self) -> Iterator[Fragment]:
        base = []
        for fragment in self._source:
            self.rows_in += 1
            base.append(fragment)
        raw_base = frozenset(base)
        if not raw_base:
            return
        if self._bounded:
            yield from self._iter_bounded(raw_base)
        else:
            yield from self._iter_semi_naive(raw_base)

    def _iter_semi_naive(self, raw_base) -> Iterator[Fragment]:
        stats, cache = self._stats, self._cache
        kernel, budget = self._kernel, self._budget
        result: set[Fragment] = set(self._filtered(raw_base))
        frontier: set[Fragment] = set(result)
        for fragment in result:
            self.rows_out += 1
            yield fragment
        while frontier:
            if stats is not None:
                stats.iterations += 1
            produced: set[Fragment] = set()
            snapshot = list(result)
            for new_fragment in frontier:
                for start in range(0, len(snapshot), _TICK_BLOCK):
                    block = snapshot[start:start + _TICK_BLOCK]
                    if budget is not None:
                        budget.tick(len(block))
                    for existing in block:
                        joined = fragment_join(new_fragment, existing,
                                               stats=stats, cache=cache,
                                               kernel=kernel)
                        if joined not in result and joined not in produced:
                            produced.add(joined)
            produced = set(self._filtered(produced)) - result
            result |= produced
            frontier = produced
            if budget is not None:
                budget.admit_live(len(result))
            for fragment in produced:
                self.rows_out += 1
                yield fragment

    def _iter_bounded(self, raw_base) -> Iterator[Fragment]:
        stats, cache = self._stats, self._cache
        kernel, budget = self._kernel, self._budget
        # Theorem 1 speaks about F itself, so the round count is taken
        # on the *unfiltered* base (matching fixed_point_bounded).
        rounds = reduction_count(raw_base, stats=stats, cache=cache,
                                 kernel=kernel, budget=budget)
        filtered_base = list(self._filtered(raw_base))
        current: set[Fragment] = set(filtered_base)
        for fragment in current:
            self.rows_out += 1
            yield fragment
        emitted = set(current)
        for _ in range(rounds - 1):
            if stats is not None:
                stats.iterations += 1
            produced: set[Fragment] = set()
            for f1 in current:
                for start in range(0, len(filtered_base), _TICK_BLOCK):
                    block = filtered_base[start:start + _TICK_BLOCK]
                    if budget is not None:
                        budget.tick(len(block))
                    for f2 in block:
                        produced.add(fragment_join(f1, f2, stats=stats,
                                                   cache=cache,
                                                   kernel=kernel))
            current = set(self._filtered(produced))
            if budget is not None:
                budget.admit_live(len(current))
            new = current - emitted
            emitted |= new
            for fragment in new:
                self.rows_out += 1
                yield fragment
            # ⋈_{r+1}(F) ⊇ ⋈_r(F) under an anti-monotonic filter, so a
            # round that adds nothing has reached the fixed point early.
            if not new:
                break


class JoinOp(Operator):
    """``left ⋈ right`` streamed against the right-hand producer.

    The left side is drained first (a fixpoint must complete before its
    join partner can be exhaustive anyway); each right-hand fragment
    then joins against the buffered left side and new results flow out
    immediately.  An empty left side short-circuits without consuming
    the right producer at all — the streaming form of the conjunctive
    early exit.  An optional anti-monotonic ``pushed`` filter discards
    doomed join results on the spot (Theorem 3).
    """

    label = "join"

    def __init__(self, left: Operator, right: Operator, *,
                 pushed: Optional[Filter] = None,
                 stats: Optional[OperationStats] = None,
                 cache: Optional[JoinCache] = None,
                 kernel=None,
                 budget: Optional["QueryBudget"] = None) -> None:
        super().__init__()
        self._left = left
        self._right = right
        self._pushed = pushed
        self._stats = stats
        self._cache = cache
        self._kernel = kernel
        self._budget = budget

    def __iter__(self) -> Iterator[Fragment]:
        stats, cache = self._stats, self._cache
        kernel, budget = self._kernel, self._budget
        pushed = self._pushed
        left: list[Fragment] = []
        seen_left: set[Fragment] = set()
        for fragment in self._left:
            self.rows_in += 1
            if fragment not in seen_left:
                seen_left.add(fragment)
                left.append(fragment)
        if not left:
            return
        emitted: set[Fragment] = set()
        for f2 in self._right:
            self.rows_in += 1
            for start in range(0, len(left), _TICK_BLOCK):
                block = left[start:start + _TICK_BLOCK]
                if budget is not None:
                    budget.tick(len(block))
                for f1 in block:
                    joined = fragment_join(f1, f2, stats=stats,
                                           cache=cache, kernel=kernel)
                    if joined in emitted:
                        continue
                    if pushed is not None:
                        if stats is not None:
                            stats.predicate_checks += 1
                        if not pushed.matches(joined):
                            if stats is not None:
                                stats.fragments_discarded += 1
                            continue
                    emitted.add(joined)
                    self.rows_out += 1
                    yield joined
            if budget is not None:
                budget.admit_live(len(emitted))


class SelectOp(Operator):
    """``σ_P`` applied fragment-by-fragment, mid-stream."""

    label = "select"

    def __init__(self, source: Operator, predicate: Filter,
                 stats: Optional[OperationStats] = None) -> None:
        super().__init__()
        self._source = source
        self._predicate = predicate
        self._stats = stats

    def __iter__(self) -> Iterator[Fragment]:
        stats = self._stats
        predicate = self._predicate
        for fragment in self._source:
            self.rows_in += 1
            if stats is not None:
                stats.predicate_checks += 1
            if predicate.matches(fragment):
                self.rows_out += 1
                yield fragment
            elif stats is not None:
                stats.fragments_discarded += 1


class PowersetOp(Operator):
    """Brute-force m-ary powerset join, enumerated incrementally.

    Mirrors :func:`~repro.core.algebra.multiway_powerset_join`'s
    recursion but yields each *new* candidate as its subset combination
    is joined, so even the semantic-reference strategy streams.
    """

    label = "powerset"

    def __init__(self, scans: Sequence[ScanOp], *,
                 max_operand_size: Optional[int] = 16,
                 stats: Optional[OperationStats] = None,
                 cache: Optional[JoinCache] = None,
                 kernel=None,
                 budget: Optional["QueryBudget"] = None) -> None:
        super().__init__()
        self._scans = scans
        self._max_operand = max_operand_size
        self._stats = stats
        self._cache = cache
        self._kernel = kernel
        self._budget = budget

    def __iter__(self) -> Iterator[Fragment]:
        from ..errors import FragmentError
        stats, cache = self._stats, self._cache
        kernel, budget = self._kernel, self._budget
        operands: list[list[Fragment]] = []
        for scan in self._scans:
            operand = []
            for fragment in scan:
                self.rows_in += 1
                operand.append(fragment)
            if self._max_operand is not None \
                    and len(operand) > self._max_operand:
                raise FragmentError(
                    f"powerset join operand has {len(operand)} fragments;"
                    f" enumeration over 2^{len(operand)} subsets refused "
                    "(raise max_operand_size to override)")
            operands.append(operand)
        emitted: set[Fragment] = set()

        def recurse(position: int, partial: list[Fragment]
                    ) -> Iterator[Fragment]:
            if position == len(operands):
                if budget is not None:
                    budget.tick(len(partial))
                    budget.admit_candidates(len(emitted))
                candidate = join_all(partial, stats=stats, cache=cache,
                                     kernel=kernel)
                if candidate not in emitted:
                    emitted.add(candidate)
                    self.rows_out += 1
                    yield candidate
                return
            for subset in nonempty_subsets(operands[position]):
                if budget is not None:
                    budget.tick(max(0, len(subset) - 1))
                joined = join_all(subset, stats=stats, cache=cache,
                                  kernel=kernel)
                partial.append(joined)
                yield from recurse(position + 1, partial)
                partial.pop()

        yield from recurse(0, [])


# ----------------------------------------------------------------------
# Pipeline construction
# ----------------------------------------------------------------------

def _anti_monotonic_part(predicate: Optional[Filter],
                         extra: Optional[Filter]) -> Optional[Filter]:
    """The pushable conjunction of the effective predicate.

    Unlike ``_pushdown`` (which pushes the caller's predicate only when
    the *whole* filter is anti-monotonic), the pipeline pushes each
    anti-monotonic conjunct independently — ``size<=β ∧ ¬keyword=k``
    still prunes on the size bound mid-stream.
    """
    parts = [p for p in (predicate, extra)
             if p is not None and p.is_anti_monotonic]
    if not parts:
        return None
    pushed = parts[0]
    for part in parts[1:]:
        pushed = pushed & part
    return pushed


def build_pipeline(document: "Document", query: Query,
                   strategy: Strategy = Strategy.PUSHDOWN, *,
                   index: Optional["InvertedIndex"] = None,
                   cache: Optional[JoinCache] = None,
                   kernel=None,
                   budget: Optional["QueryBudget"] = None,
                   stats: Optional[OperationStats] = None,
                   extra_predicate: Optional[Filter] = None,
                   keyword_source: Optional[
                       Callable[[str], frozenset[Fragment]]] = None,
                   max_brute_force_operand: int = 16
                   ) -> tuple[Optional[Operator], list[Operator]]:
    """Wire the operator tree of one strategy for one query.

    Returns ``(emit, operators)`` — the terminal operator to iterate
    (``None`` when the conjunctive early exit already proves the answer
    empty) and every operator in the tree for counter collection.  The
    set of fragments the emit operator yields equals
    ``evaluate(document, Query(query.terms, query.predicate &
    extra_predicate), strategy).fragments`` exactly, for all four
    strategies (Theorems 2 and 3); the differential tests assert it.
    """
    term_order = list(query.terms)
    if index is not None:
        term_order = index.rarest_first(term_order)
    keyword_sets = []
    for term in term_order:
        if keyword_source is not None:
            keyword_sets.append(keyword_source(term))
        else:
            keyword_sets.append(keyword_fragments(document, term,
                                                  index=index))
    if budget is not None:
        for fs in keyword_sets:
            budget.admit_candidates(len(fs))
        budget.check_deadline()

    predicate = query.predicate
    if extra_predicate is not None:
        predicate = predicate & extra_predicate
    scans = [ScanOp(term, fs)
             for term, fs in zip(term_order, keyword_sets)]
    operators: list[Operator] = list(scans)
    if any(not fs for fs in keyword_sets):
        # Conjunctive semantics: a term with no matches empties the
        # answer before any join work.
        return None, operators

    if strategy is Strategy.BRUTE_FORCE:
        # The semantic reference enumerates candidates unpruned; only
        # the final selection filters (mid-stream, one per candidate).
        powerset = PowersetOp(scans,
                              max_operand_size=max_brute_force_operand,
                              stats=stats, cache=cache, kernel=kernel,
                              budget=budget)
        emit = SelectOp(powerset, predicate, stats=stats)
        operators.extend([powerset, emit])
        return emit, operators

    pushed = _anti_monotonic_part(query.predicate, extra_predicate)
    if pushed is not None and strategy is not Strategy.PUSHDOWN:
        # SET_REDUCTION / SEMI_NAIVE do not push the caller's predicate
        # (that is PUSHDOWN's defining refinement) — but the adaptive
        # top-k bound is the *consumer's* filter, and pushing it is what
        # bounds the producers' work, so it is pushed for every rewrite
        # strategy.  Answer sets are unchanged either way (Theorem 3).
        pushed = (extra_predicate
                  if extra_predicate is not None
                  and extra_predicate.is_anti_monotonic else None)
    if pushed is not None:
        for scan, fs in zip(scans, keyword_sets):
            if not select(pushed, fs, stats=stats):
                # An anti-monotonic filter that rejects every keyword
                # node of one term rejects every candidate fragment too.
                return None, operators

    bounded = strategy is Strategy.SET_REDUCTION
    fixpoints = [FixpointOp(scan, bounded=bounded, predicate=pushed,
                            stats=stats, cache=cache, kernel=kernel,
                            budget=budget)
                 for scan in scans]
    operators.extend(fixpoints)
    producer: Operator = fixpoints[0]
    for other in fixpoints[1:]:
        producer = JoinOp(producer, other, pushed=pushed, stats=stats,
                          cache=cache, kernel=kernel, budget=budget)
        operators.append(producer)
    emit = SelectOp(producer, predicate, stats=stats)
    operators.append(emit)
    return emit, operators


class FragmentStream:
    """An in-flight streaming evaluation: iterate to pull answers.

    Yields each answer fragment exactly once, as it is proven.  The
    collected set equals the materialized ``evaluate(...)`` answer set;
    abandoning the iterator early (or calling :meth:`close`) stops the
    producers.  ``stats`` accumulates live; ``operator_counters`` /
    ``streamed_rows`` expose the per-operator row accounting.  On
    exhaustion or close, the stream publishes ``repro_stream_rows_total``
    (labelled per operator) and a query-log record when ``obs`` is
    enabled.
    """

    def __init__(self, document: "Document", query: Query,
                 strategy: Strategy, operators: list[Operator],
                 emit: Optional[Operator], stats: OperationStats,
                 obs: Observability) -> None:
        self.query = query
        self.strategy = strategy
        self.stats = stats
        self.operators = operators
        self._document = document
        self._obs = obs
        self._started = time.perf_counter()
        self._answers = 0
        self._finished = False
        self._iter = iter(emit) if emit is not None else iter(())

    def __iter__(self) -> "FragmentStream":
        return self

    def __next__(self) -> Fragment:
        try:
            fragment = next(self._iter)
        except StopIteration:
            self._finish()
            raise
        self._answers += 1
        return fragment

    def close(self) -> None:
        """Stop the producers and publish telemetry (idempotent)."""
        closer = getattr(self._iter, "close", None)
        if closer is not None:
            closer()
        self._finish()

    @property
    def streamed_rows(self) -> int:
        """Rows emitted across all operators so far."""
        return sum(op.rows_out for op in self.operators)

    def operator_counters(self) -> list[dict]:
        """Per-operator ``rows_in``/``rows_out`` snapshots."""
        return [op.counters() for op in self.operators]

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        elapsed = time.perf_counter() - self._started
        self.stats.extras["streamed_rows"] = self.streamed_rows
        ob = self._obs
        if ob.enabled:
            for op in self.operators:
                if op.rows_out:
                    ob.metrics.counter(
                        STREAM_ROWS,
                        "Fragments emitted by streaming pipeline "
                        "operators.",
                        labels={"operator": op.label},
                    ).inc(op.rows_out)
            ob.record_query(
                document=getattr(self._document, "name", "?"),
                terms=self.query.terms,
                filter=repr(self.query.predicate),
                strategy=f"stream-{self.strategy.value}",
                answers=self._answers, elapsed=elapsed,
                stats=self.stats.as_dict())


def stream_evaluate(document: "Document", query: Query,
                    strategy: Strategy = Strategy.PUSHDOWN, *,
                    index: Optional["InvertedIndex"] = None,
                    cache: Optional[JoinCache] = None,
                    kernel: KernelArg = None,
                    obs: Optional[Observability] = None,
                    budget: Optional["QueryBudget"] = None,
                    extra_predicate: Optional[Filter] = None,
                    keyword_source: Optional[
                        Callable[[str], frozenset[Fragment]]] = None,
                    max_brute_force_operand: int = 16) -> FragmentStream:
    """Evaluate ``query`` incrementally; returns a :class:`FragmentStream`.

    The streaming counterpart of :func:`~repro.core.strategies.evaluate`:
    the set of yielded fragments is exactly the materialized answer set
    of ``query.predicate & extra_predicate`` under ``strategy``, but
    fragments arrive as they are proven and the pipeline stops when the
    caller stops pulling.  ``extra_predicate`` exists for consumers
    (top-k, β rounds) that tighten the caller's filter without
    rebuilding the query; its anti-monotonic part is pushed below the
    joins regardless of strategy.
    """
    ob = obs if obs is not None else NOOP
    kernel_obj = resolve_kernel(kernel, document)
    stats = OperationStats()
    if budget is not None:
        budget.start()
        budget.bind_stats(stats)
    emit, operators = build_pipeline(
        document, query, strategy, index=index, cache=cache,
        kernel=kernel_obj, budget=budget, stats=stats,
        extra_predicate=extra_predicate, keyword_source=keyword_source,
        max_brute_force_operand=max_brute_force_operand)
    return FragmentStream(document, query, strategy, operators, emit,
                          stats, ob)


# ----------------------------------------------------------------------
# Top-k consumer
# ----------------------------------------------------------------------

class _ReverseKey:
    """Inverts comparison so ``heapq``'s min-heap acts as a max-heap."""

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_ReverseKey") -> bool:
        return other.key < self.key


class TopKHeap:
    """A bounded heap keeping the ``k`` smallest items by key.

    ``offer`` is O(log k); ``bound()`` exposes the current k-th key so
    producers can prune everything provably behind it.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._heap: list[tuple[_ReverseKey, object]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    def bound(self) -> Optional[tuple]:
        """The current k-th (worst kept) key, or None until full."""
        if not self.full:
            return None
        return self._heap[0][0].key

    def offer(self, item, key: tuple) -> bool:
        """Keep ``item`` if its key belongs in the current top k."""
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (_ReverseKey(key), item))
            return True
        if key < self._heap[0][0].key:
            heapq.heapreplace(self._heap, (_ReverseKey(key), item))
            return True
        return False

    def items_sorted(self) -> list:
        """Kept items, best (smallest key) first."""
        return [item for _, item in
                sorted(self._heap, key=lambda pair: pair[0].key)]


def stream_top_k(document: "Document", query: Query, k: int, *,
                 strategy: Strategy = Strategy.PUSHDOWN,
                 index: Optional["InvertedIndex"] = None,
                 cache: Optional[JoinCache] = None,
                 kernel: KernelArg = None,
                 obs: Optional[Observability] = None,
                 budget: Optional["QueryBudget"] = None,
                 initial_beta: int = 2,
                 extra_predicate: Optional[Filter] = None
                 ) -> list[Fragment]:
    """The ``k`` smallest answers, via adaptive β rounds over the stream.

    Each round streams the pipeline under ``size <= β``; because the
    bound is anti-monotonic, a round yields exactly the answers of size
    ≤ β, so the first round holding ``k`` answers holds the ``k``
    smallest overall and the producers stop there (the early exit is
    counted in ``repro_stream_early_exits_total``).  A shared
    :class:`JoinCache` keeps the re-streamed rounds largely incremental.
    Unlike the pre-streaming implementation this honours the caller's
    ``strategy`` and threads ``budget``/``obs``/``kernel`` through, and
    sorts once at the end (an O(n log k) ``nsmallest``) instead of
    re-sorting the full answer set every round.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if initial_beta < 1:
        raise ValueError("initial_beta must be >= 1")
    ob = obs if obs is not None else NOOP
    if cache is None:
        cache = JoinCache()
    beta = initial_beta
    rounds = 0
    while True:
        rounds += 1
        bound: Filter = SizeAtMost(beta)
        if extra_predicate is not None:
            bound = bound & extra_predicate
        stream = stream_evaluate(document, query, strategy, index=index,
                                 cache=cache, kernel=kernel, obs=obs,
                                 budget=budget, extra_predicate=bound)
        answers = set(stream)
        if len(answers) >= k or beta >= document.size:
            early = beta < document.size
            if ob.enabled:
                ob.metrics.counter(
                    STREAM_ROUNDS,
                    "Adaptive β rounds run by streaming top-k."
                ).inc(rounds)
                if early:
                    ob.metrics.counter(
                        STREAM_EARLY_EXITS,
                        "Streaming evaluations stopped before the "
                        "full answer set existed.",
                        labels={"stage": "topk"}).inc()
            return heapq.nsmallest(k, answers, key=fragment_order_key)
        beta = min(beta * 2, document.size)


def stream_query_top_k(document: "Document", query: Query, k: int,
                       **kwargs) -> list[Fragment]:
    """Alias kept narrow for callers that read better with a verb."""
    return stream_top_k(document, query, k, **kwargs)
