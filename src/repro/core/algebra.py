"""The fragment algebra (paper Section 2.2).

Implements, over :class:`~repro.core.fragment.Fragment` values and
``frozenset`` fragment sets:

* :func:`fragment_join` — ``f1 ⋈ f2`` (Definition 4): the minimal
  fragment containing both operands;
* :func:`pairwise_join` — ``F1 ⋈ F2`` (Definition 5);
* :func:`powerset_join` — ``F1 ⋈* F2`` (Definition 6), by direct
  enumeration of non-empty subset pairs (exponential; exists as the
  semantic reference and the brute-force baseline);
* :func:`multiway_powerset_join` — the m-ary generalisation used for
  queries with more than two keywords;
* :func:`join_all` — ``⋈{f1..fn}`` folding.

Selection (`σ_P`) lives in :mod:`repro.core.filters`; fixed points and
set reduction in :mod:`repro.core.reduce`.

A per-document memo cache makes repeated joins of the same pair O(1);
the cache is keyed on the operand node sets and is safe because
documents and fragments are immutable.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import chain, combinations
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from ..errors import FragmentError, QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..guard.budget import QueryBudget
from ..xmltree.document import Document
from ..xmltree.intervals import IntervalKernel
from ..xmltree.navigation import spanning_nodes
from .fragment import Fragment
from .stats import OperationStats

#: Budget checkpoints charge work in blocks of this many operations
#: (see :mod:`repro.core.reduce`): negligible overhead, bounded
#: deadline overshoot.
_TICK_BLOCK = 256

__all__ = [
    "fragment_join",
    "join_all",
    "pairwise_join",
    "powerset_join",
    "multiway_powerset_join",
    "JoinCache",
    "nonempty_subsets",
    "resolve_kernel",
    "KERNEL_REFERENCE",
    "KERNEL_BITSET",
    "KERNEL_NAMES",
]

#: The frozenset-climbing reference implementation (the default).
KERNEL_REFERENCE = "reference"
#: The interval-bitset integer-arithmetic kernel.
KERNEL_BITSET = "bitset"
#: Every selectable kernel name.
KERNEL_NAMES = (KERNEL_REFERENCE, KERNEL_BITSET)

#: What a ``kernel=`` parameter accepts: a name, a per-document
#: :class:`~repro.xmltree.intervals.IntervalKernel`, or ``None``.
KernelArg = Union[None, str, IntervalKernel]


def resolve_kernel(kernel: KernelArg,
                   document: Document) -> Optional[IntervalKernel]:
    """Resolve a ``kernel=`` argument against one document.

    ``None`` / ``"reference"`` select the frozenset reference path
    (returns ``None``); ``"bitset"`` returns the document's cached
    :class:`~repro.xmltree.intervals.IntervalKernel`; an already
    constructed kernel passes through after a document check.
    """
    if kernel is None or kernel == KERNEL_REFERENCE:
        return None
    if kernel == KERNEL_BITSET:
        return document.interval_kernel()
    if isinstance(kernel, IntervalKernel):
        if kernel.document is not document:
            raise QueryError("interval kernel belongs to a different "
                             "document")
        return kernel
    raise QueryError(f"unknown join kernel {kernel!r}; expected one of "
                     f"{list(KERNEL_NAMES)}")


class JoinCache:
    """LRU memo cache for binary fragment joins.

    Keys combine the owning document's identity **token** (monotonic and
    never reused, unlike ``id()``, so entries can never go stale after a
    document is garbage collected) with the unordered pair of operand
    node sets — commutativity makes the ordering irrelevant — so one
    cache can safely be shared across the documents of a collection.
    A bounded size with least-recently-*used* eviction keeps memory in
    check on large workloads while retaining the hot pairs.

    ``hits`` / ``misses`` count :meth:`get` outcomes over the cache's
    lifetime; :meth:`export_metrics` publishes them to a
    :class:`repro.obs.metrics.MetricsRegistry`.
    """

    __slots__ = ("_table", "_max_entries", "hits", "misses")

    def __init__(self, max_entries: int = 1 << 16) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._table: OrderedDict[tuple, Fragment] = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(f1: Fragment, f2: Fragment) -> tuple:
        return (f1.document.token, frozenset((f1.nodes, f2.nodes)))

    def get(self, f1: Fragment, f2: Fragment) -> Optional[Fragment]:
        """The cached join of ``f1`` and ``f2``, or ``None``."""
        key = self._key(f1, f2)
        hit = self._table.get(key)
        if hit is None:
            self.misses += 1
            return None
        # True LRU: a hit refreshes the entry's recency.
        self._table.move_to_end(key)
        self.hits += 1
        return hit

    def put(self, f1: Fragment, f2: Fragment, result: Fragment) -> None:
        """Record the join of ``f1`` and ``f2``."""
        if len(self._table) >= self._max_entries:
            # LRU eviction: drop the least recently touched entry.
            self._table.popitem(last=False)
        self._table[self._key(f1, f2)] = result

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop all cached joins (hit/miss counters are kept)."""
        self._table.clear()

    def export_metrics(self, metrics) -> None:
        """Publish lifetime hit/miss totals as gauges on ``metrics``.

        Gauges (not counters) because the cache owns the running totals;
        re-exporting after more queries overwrites with the new values.
        """
        from ..obs import JOIN_CACHE_MEMO_HITS, JOIN_CACHE_MEMO_MISSES
        metrics.gauge(JOIN_CACHE_MEMO_HITS,
                      "Lifetime JoinCache memo hits.").set(self.hits)
        metrics.gauge(JOIN_CACHE_MEMO_MISSES,
                      "Lifetime JoinCache memo misses.").set(self.misses)


def fragment_join(f1: Fragment, f2: Fragment,
                  stats: Optional[OperationStats] = None,
                  cache: Optional[JoinCache] = None,
                  kernel: Optional[IntervalKernel] = None) -> Fragment:
    """``f1 ⋈ f2``: the minimal fragment containing both operands.

    The minimal connected subtree containing two subtrees is the
    tree-Steiner closure of the union of their node sets, computed by
    climbing towards the common LCA — either over ``frozenset``
    membership (:func:`repro.xmltree.navigation.spanning_nodes`, the
    reference) or on flat integer arrays when an
    :class:`~repro.xmltree.intervals.IntervalKernel` is supplied.  Both
    paths produce identical fragments (cross-checked in the suite).

    Algebraic properties (tested property-based in the suite):
    idempotent, commutative, associative, absorptive.
    """
    f1._require_same_document(f2)
    # Absorption fast paths: f1 ⋈ (f2 ⊆ f1) = f1.
    if f2.nodes <= f1.nodes:
        return f1
    if f1.nodes <= f2.nodes:
        return f2
    if cache is not None:
        hit = cache.get(f1, f2)
        if hit is not None:
            if stats is not None:
                stats.join_cache_hits += 1
            return hit
    if stats is not None:
        stats.fragment_joins += 1
    if kernel is not None:
        nodes = kernel.join_nodes(f1.nodes, f2.nodes, f1.root, f2.root)
    else:
        nodes = spanning_nodes(f1.document, chain(f1.nodes, f2.nodes))
    result = Fragment(f1.document, nodes, validate=False)
    if cache is not None:
        cache.put(f1, f2, result)
    return result


def join_all(fragments: Iterable[Fragment],
             stats: Optional[OperationStats] = None,
             cache: Optional[JoinCache] = None,
             kernel: Optional[IntervalKernel] = None) -> Fragment:
    """``⋈{f1, ..., fn}``: fold fragment join over a non-empty collection.

    Associativity and commutativity make the fold order irrelevant for
    the result (Definition 6 relies on this).
    """
    iterator = iter(fragments)
    try:
        result = next(iterator)
    except StopIteration:
        raise FragmentError("join_all requires at least one fragment")
    for fragment in iterator:
        result = fragment_join(result, fragment, stats=stats, cache=cache,
                               kernel=kernel)
    return result


def pairwise_join(set1: Iterable[Fragment], set2: Iterable[Fragment],
                  stats: Optional[OperationStats] = None,
                  cache: Optional[JoinCache] = None,
                  kernel: Optional[IntervalKernel] = None,
                  budget: Optional["QueryBudget"] = None
                  ) -> frozenset[Fragment]:
    """``F1 ⋈ F2``: join every pair (Definition 5), deduplicated.

    Commutative, associative, monotone (``F ⋈ F ⊇ F`` by idempotency of
    the underlying join), and distributes over set union.  An optional
    :class:`~repro.guard.QueryBudget` is charged one operation per
    joined pair and checks the result set against its live-fragment
    ceiling; without one the original generator path runs unchanged.
    """
    left = list(set1)
    right = list(set2)
    if budget is None:
        return frozenset(fragment_join(f1, f2, stats=stats, cache=cache,
                                       kernel=kernel)
                         for f1 in left for f2 in right)
    results: set[Fragment] = set()
    for f1 in left:
        # Charge whole blocks so the inner join loop stays a C-speed
        # set comprehension; deadline overshoot is at most one block.
        for start in range(0, len(right), _TICK_BLOCK):
            block = right[start:start + _TICK_BLOCK]
            budget.tick(len(block))
            results.update(fragment_join(f1, f2, stats=stats,
                                         cache=cache, kernel=kernel)
                           for f2 in block)
        budget.admit_live(len(results))
    return frozenset(results)


def nonempty_subsets(items: Sequence) -> Iterable[tuple]:
    """Every non-empty subset of ``items``, as tuples (2^n - 1 of them)."""
    for size in range(1, len(items) + 1):
        yield from combinations(items, size)


def powerset_join(set1: Iterable[Fragment], set2: Iterable[Fragment],
                  stats: Optional[OperationStats] = None,
                  cache: Optional[JoinCache] = None,
                  max_operand_size: Optional[int] = 20,
                  kernel: Optional[IntervalKernel] = None,
                  budget: Optional["QueryBudget"] = None
                  ) -> frozenset[Fragment]:
    """``F1 ⋈* F2`` by direct enumeration (Definition 6).

    Joins ``⋈(F1' ∪ F2')`` for every pair of non-empty subsets
    ``F1' ⊆ F1``, ``F2' ⊆ F2`` — Θ(2^|F1| · 2^|F2|) subset pairs.  This
    is the semantic reference implementation and the paper's brute-force
    strategy; production evaluation uses the Theorem-2 rewrite
    ``F1+ ⋈ F2+`` (see :mod:`repro.core.reduce`).

    Parameters
    ----------
    max_operand_size:
        Guard against accidental exponential blow-up; ``None`` disables
        the check.

    Raises
    ------
    FragmentError
        If an operand exceeds ``max_operand_size``.
    """
    left = list(set1)
    right = list(set2)
    if max_operand_size is not None:
        for operand in (left, right):
            if len(operand) > max_operand_size:
                raise FragmentError(
                    f"powerset join operand has {len(operand)} fragments; "
                    f"enumeration over 2^{len(operand)} subsets refused "
                    "(raise max_operand_size to override)")
    results: set[Fragment] = set()
    for subset1 in nonempty_subsets(left):
        if budget is not None:
            budget.admit_candidates(len(results))
        base = join_all(subset1, stats=stats, cache=cache, kernel=kernel)
        for subset2 in nonempty_subsets(right):
            if budget is not None:
                budget.tick(len(subset2))
            joined = fragment_join(
                base, join_all(subset2, stats=stats, cache=cache,
                               kernel=kernel),
                stats=stats, cache=cache, kernel=kernel)
            results.add(joined)
    return frozenset(results)


def multiway_powerset_join(fragment_sets: Sequence[Iterable[Fragment]],
                           stats: Optional[OperationStats] = None,
                           cache: Optional[JoinCache] = None,
                           max_operand_size: Optional[int] = 20,
                           kernel: Optional[IntervalKernel] = None,
                           budget: Optional["QueryBudget"] = None
                           ) -> frozenset[Fragment]:
    """m-ary powerset join: ``{⋈(F1' ∪ … ∪ Fm') | Fi' ⊆ Fi, Fi' ≠ ∅}``.

    The paper defines the binary case; queries with m keywords need the
    m-ary generalisation (DESIGN.md §4).  Like :func:`powerset_join`
    this is the enumeration reference; the equivalent efficient form is
    ``F1+ ⋈ F2+ ⋈ … ⋈ Fm+``.
    """
    operands = [list(fs) for fs in fragment_sets]
    if not operands:
        raise FragmentError("multiway powerset join needs >= 1 operand")
    if max_operand_size is not None:
        for operand in operands:
            if len(operand) > max_operand_size:
                raise FragmentError(
                    f"powerset join operand has {len(operand)} fragments; "
                    f"enumeration over 2^{len(operand)} subsets refused "
                    "(raise max_operand_size to override)")
    results: set[Fragment] = set()
    partial: list[Fragment] = []

    def recurse(position: int) -> None:
        if position == len(operands):
            if budget is not None:
                budget.tick(len(partial))
                budget.admit_candidates(len(results))
            results.add(join_all(partial, stats=stats, cache=cache,
                                 kernel=kernel))
            return
        for subset in nonempty_subsets(operands[position]):
            if budget is not None:
                budget.tick(max(0, len(subset) - 1))
            joined = join_all(subset, stats=stats, cache=cache,
                              kernel=kernel)
            partial.append(joined)
            recurse(position + 1)
            partial.pop()

    recurse(0)
    return frozenset(results)
