"""Fixed points and fragment set reduction (paper Section 3.1).

* :func:`set_reduce` — ``⊖(F)`` (Definition 10): drop every fragment
  that is a sub-fragment of the join of two *other* fragments of the
  set.  The paper's displayed formula has a typo (``∃`` for ``∄``); we
  implement the prose/Figure-4 semantics and test against Figure 4.
* :func:`iterate_pairwise` — ``⋈_n(F)``: pairwise join of n copies.
* :func:`fixed_point` — ``F+`` (Definition 9) via *semi-naive*
  iteration: each round joins only the previous round's newly produced
  fragments against the accumulated set, exactly like semi-naive Datalog
  evaluation, so reaching the fixed point costs O(|F+|·|F|) joins rather
  than re-joining everything every round.
* :func:`fixed_point_bounded` — the paper's §3.1.2 alternative: compute
  ``k = |⊖(F)|`` first, then run exactly ``k`` pairwise-join rounds
  with **no fixed-point checking**, relying on Theorem 1
  (``⋈_n(F) = ⋈_k(F)``).

An optional anti-monotonic predicate can be threaded through the
iteration (the equation after Theorem 3): fragments failing the filter
are discarded *as they are produced*, which is sound because none of
their super-fragments could satisfy the filter either.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..xmltree.intervals import IntervalKernel
from .algebra import JoinCache, fragment_join, pairwise_join
from .filters import Filter
from .fragment import Fragment
from .stats import OperationStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..guard.budget import QueryBudget

#: Budget checkpoints charge work in blocks of this many operations:
#: large enough that the per-block Python call disappears next to the
#: joins themselves, small enough that a deadline overshoots by at
#: most one block of work.
_TICK_BLOCK = 256

__all__ = [
    "set_reduce",
    "reduction_count",
    "iterate_pairwise",
    "fixed_point",
    "fixed_point_bounded",
    "is_fixed_point",
]


def set_reduce(fragments: Iterable[Fragment],
               stats: Optional[OperationStats] = None,
               cache: Optional[JoinCache] = None,
               kernel: Optional[IntervalKernel] = None,
               budget: Optional["QueryBudget"] = None
               ) -> frozenset[Fragment]:
    """``⊖(F)``: remove fragments subsumed by a join of two others.

    A fragment ``f`` is removed iff there exist distinct ``f', f'' ∈ F``
    (both different from ``f``) with ``f ⊆ f' ⋈ f''``.  O(|F|³) subset
    checks over O(|F|²) joins; the joins dominate and are memoised via
    ``cache``.  An optional :class:`~repro.guard.QueryBudget` is
    charged per pair join and deadline-polled per subset check.
    """
    items = list(dict.fromkeys(fragments))  # stable dedup
    n = len(items)
    if n < 3:
        # Elimination needs three distinct fragments (see Theorem 1's
        # proof preamble), so small sets are already reduced.
        return frozenset(items)
    if budget is not None:
        budget.admit_live(n)
    pair_joins: list[tuple[int, int, Fragment]] = []
    for i in range(n):
        if budget is not None:
            budget.tick(n - i - 1)  # charge the whole row at once
        for j in range(i + 1, n):
            pair_joins.append(
                (i, j, fragment_join(items[i], items[j],
                                     stats=stats, cache=cache,
                                     kernel=kernel)))
    kept = []
    for idx, fragment in enumerate(items):
        subsumed = False
        if budget is not None:
            budget.poll(len(pair_joins))
        for i, j, joined in pair_joins:
            if idx == i or idx == j:
                continue
            if stats is not None:
                stats.subset_checks += 1
            if fragment.nodes <= joined.nodes:
                subsumed = True
                break
        if not subsumed:
            kept.append(fragment)
    return frozenset(kept)


def reduction_count(fragments: Iterable[Fragment],
                    stats: Optional[OperationStats] = None,
                    cache: Optional[JoinCache] = None,
                    kernel: Optional[IntervalKernel] = None,
                    budget: Optional["QueryBudget"] = None) -> int:
    """``|⊖(F)|`` — the Theorem-1 iteration bound for ``F``."""
    return len(set_reduce(fragments, stats=stats, cache=cache,
                          kernel=kernel, budget=budget))


def iterate_pairwise(fragments: Iterable[Fragment], rounds: int,
                     stats: Optional[OperationStats] = None,
                     cache: Optional[JoinCache] = None,
                     predicate: Optional[Filter] = None,
                     kernel: Optional[IntervalKernel] = None,
                     budget: Optional["QueryBudget"] = None
                     ) -> frozenset[Fragment]:
    """``⋈_n(F)``: pairwise fragment join of ``rounds`` copies of ``F``.

    ``rounds = 1`` returns ``F`` itself.  When an anti-monotonic
    ``predicate`` is supplied, fragments failing it are discarded after
    every round (including the first), per Theorem 3.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    base = frozenset(fragments)
    current = _apply_predicate(base, predicate, stats)
    filtered_base = current
    for _ in range(rounds - 1):
        if stats is not None:
            stats.iterations += 1
        current = pairwise_join(current, filtered_base,
                                stats=stats, cache=cache, kernel=kernel,
                                budget=budget)
        current = _apply_predicate(current, predicate, stats)
        if budget is not None:
            budget.admit_live(len(current))
    return current


def fixed_point(fragments: Iterable[Fragment],
                stats: Optional[OperationStats] = None,
                cache: Optional[JoinCache] = None,
                predicate: Optional[Filter] = None,
                kernel: Optional[IntervalKernel] = None,
                budget: Optional["QueryBudget"] = None
                ) -> frozenset[Fragment]:
    """``F+`` via semi-naive iteration with fixed-point checking.

    Each round joins only the frontier (fragments first produced in the
    previous round) against the accumulated result, and stops when a
    round produces nothing new — the §3.1.1 'naive solution' upgraded
    with the standard semi-naive refinement.
    """
    base = _apply_predicate(frozenset(fragments), predicate, stats)
    result: set[Fragment] = set(base)
    frontier: set[Fragment] = set(base)
    while frontier:
        if stats is not None:
            stats.iterations += 1
        produced: set[Fragment] = set()
        snapshot = list(result)
        if budget is None:
            for new_fragment in frontier:
                for existing in snapshot:
                    joined = fragment_join(new_fragment, existing,
                                           stats=stats, cache=cache,
                                           kernel=kernel)
                    if joined not in result and joined not in produced:
                        produced.add(joined)
        else:
            # Charge the budget in blocks, not per pair: one tick per
            # _TICK_BLOCK joins keeps checkpoint overhead negligible
            # while bounding deadline overshoot to one block of work.
            for new_fragment in frontier:
                for start in range(0, len(snapshot), _TICK_BLOCK):
                    block = snapshot[start:start + _TICK_BLOCK]
                    budget.tick(len(block))
                    for existing in block:
                        joined = fragment_join(new_fragment, existing,
                                               stats=stats, cache=cache,
                                               kernel=kernel)
                        if joined not in result \
                                and joined not in produced:
                            produced.add(joined)
        produced = set(_apply_predicate(produced, predicate, stats))
        produced -= result
        result |= produced
        frontier = produced
        if budget is not None:
            budget.admit_live(len(result))
    return frozenset(result)


def fixed_point_bounded(fragments: Iterable[Fragment],
                        stats: Optional[OperationStats] = None,
                        cache: Optional[JoinCache] = None,
                        predicate: Optional[Filter] = None,
                        kernel: Optional[IntervalKernel] = None,
                        budget: Optional["QueryBudget"] = None
                        ) -> frozenset[Fragment]:
    """``F+`` via the Theorem-1 bound: exactly ``|⊖(F)|`` join rounds.

    No fixed-point checking is performed during iteration — the §3.1.2
    'alternative solution'.  The bound ``k`` is computed on the
    *unfiltered* set (Theorem 1 speaks about F itself); the optional
    anti-monotonic predicate then prunes during iteration, which can
    only shrink intermediate sets, never change the filtered result.
    """
    base = frozenset(fragments)
    if not base:
        return base
    k = reduction_count(base, stats=stats, cache=cache, kernel=kernel,
                        budget=budget)
    return iterate_pairwise(base, k, stats=stats, cache=cache,
                            predicate=predicate, kernel=kernel,
                            budget=budget)


def is_fixed_point(fragments: Iterable[Fragment],
                   cache: Optional[JoinCache] = None) -> bool:
    """Whether ``F ⋈ F = F`` — i.e. ``F`` is closed under fragment join."""
    base = frozenset(fragments)
    return pairwise_join(base, base, cache=cache) == base


def _apply_predicate(fragments: frozenset[Fragment],
                     predicate: Optional[Filter],
                     stats: Optional[OperationStats]
                     ) -> frozenset[Fragment]:
    if predicate is None:
        return frozenset(fragments)
    from .filters import select  # local import avoids cycle at load time
    return select(predicate, fragments, stats=stats)
