"""Query evaluation strategies (paper Section 4).

Three strategies produce identical answer sets by Theorems 2 and 3;
they differ — dramatically — in how much work they do:

``BRUTE_FORCE`` (§4.1)
    Enumerate the powerset join directly, then filter.  Exponential in
    the keyword-set sizes; exists as the semantic reference and the
    baseline "for performance comparison with other available
    alternative strategies".

``SET_REDUCTION`` (§4.2)
    Rewrite ``F1 ⋈* F2`` to ``F1+ ⋈ F2+`` (Theorem 2) and compute each
    fixed point in exactly ``|⊖(Fi)|`` rounds (Theorem 1), then filter.

``PUSHDOWN`` (§4.3)
    Additionally push the selection below every join when the predicate
    is anti-monotonic (Theorem 3), pruning doomed fragments as early as
    possible.  Falls back to ``SET_REDUCTION`` behaviour for filters
    without the property (results stay identical; only the opportunity
    for early pruning is lost).

``SEMI_NAIVE``
    ``SET_REDUCTION`` with semi-naive fixed-point iteration instead of
    the Theorem-1 bound — the paper's §3.1.1 'naive solution' upgraded
    with frontier-only joining.  Useful for measuring what the
    Theorem-1 bound buys (ablation S2/S6).
"""

from __future__ import annotations

import enum
import logging
import time
from functools import reduce as _reduce
from typing import TYPE_CHECKING, Callable, Optional

from ..errors import BudgetExceeded, QueryError
from ..obs import NOOP, NULL_SPAN, Observability
from .algebra import (JoinCache, KernelArg, multiway_powerset_join,
                      pairwise_join, resolve_kernel)
from .cost import CostModel
from .evaluator import PlanAnalysis, run_plan
from .filters import select
from .fragment import Fragment
from .optimizer import OptimizerSettings, optimize
from .plan import PlanNode, initial_plan
from .query import Query, QueryResult, keyword_fragments
from .reduce import fixed_point, fixed_point_bounded
from .stats import OperationStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..guard.budget import QueryBudget
    from ..index.inverted import InvertedIndex
    from ..xmltree.document import Document

__all__ = ["Strategy", "evaluate", "answer", "plan_for", "explain_analyze"]

logger = logging.getLogger("repro.strategies")


class Strategy(enum.Enum):
    """Named evaluation strategies; see the module docstring."""

    BRUTE_FORCE = "brute-force"
    SET_REDUCTION = "set-reduction"
    PUSHDOWN = "pushdown"
    SEMI_NAIVE = "semi-naive"

    @classmethod
    def parse(cls, name: str) -> "Strategy":
        """Look a strategy up by its value or (case-insensitive) name."""
        needle = name.strip().lower().replace("_", "-")
        for strategy in cls:
            if needle in (strategy.value, strategy.name.lower()):
                return strategy
        raise QueryError(f"unknown strategy {name!r}; expected one of "
                         f"{[s.value for s in cls]}")


def evaluate(document: "Document", query: Query,
             strategy: Strategy = Strategy.PUSHDOWN,
             index: Optional["InvertedIndex"] = None,
             cache: Optional[JoinCache] = None,
             max_brute_force_operand: int = 16,
             keyword_source: Optional[
                 Callable[[str], frozenset[Fragment]]] = None,
             obs: Optional[Observability] = None,
             kernel: KernelArg = None,
             budget: Optional["QueryBudget"] = None) -> QueryResult:
    """Evaluate ``query`` against ``document`` with the given strategy.

    Returns a :class:`~repro.core.query.QueryResult` carrying the answer
    set, wall-clock time and operation counters.  All strategies return
    the same ``fragments`` (Theorems 2 and 3); tests assert this.

    Parameters
    ----------
    index:
        Optional inverted index; avoids a document scan per term and
        enables rarest-first term ordering.
    cache:
        Optional cross-query join memo cache.
    max_brute_force_operand:
        Safety limit on keyword-set size for the brute-force strategy.
    keyword_source:
        Optional override for ``σ_{keyword=term}``; the relational
        backend passes its SQL-backed lookup here.
    obs:
        Optional :class:`~repro.obs.Observability` handle; when enabled,
        the evaluation is wrapped in an ``execute`` span (with ``scan``
        and per-strategy child spans), per-query metrics are recorded,
        and a query-log record is emitted.
    kernel:
        Join-kernel selection: ``None``/``"reference"`` for the
        frozenset reference path, ``"bitset"`` for the document's
        interval-bitset kernel (identical answers, integer arithmetic —
        see :mod:`repro.xmltree.intervals`).
    budget:
        Optional :class:`~repro.guard.QueryBudget`: cooperative
        checkpoints inside the strategy bodies raise
        :class:`~repro.errors.BudgetExceeded` when the query blows
        past its deadline or operation limits.  ``None`` (the default)
        is the unguarded path, byte-for-byte the pre-guard behaviour.
    """
    ob = obs if obs is not None else NOOP
    recorder = ob.recorder if ob.enabled else None
    kernel_obj = resolve_kernel(kernel, document)
    stats = OperationStats()
    if budget is not None:
        budget.start()
        budget.bind_stats(stats)

    # Span attributes are only worth computing when observability is
    # live; the disabled path must stay free of per-query allocations.
    if ob.enabled:
        execute_span = ob.span("execute", strategy=strategy.value,
                               terms=" ".join(query.terms), stats=stats)
        scan_span = ob.span("scan", stats=stats)
        strategy_span = ob.span("strategy:" + strategy.value,
                                stats=stats)
    else:
        execute_span = scan_span = strategy_span = NULL_SPAN

    cpu_started = 0.0
    mem_token = False
    if recorder is not None:
        mem_token = recorder.begin_memory()
        cpu_started = time.process_time()
    started = time.perf_counter()

    try:
        with execute_span as span:
            with scan_span:
                term_order = list(query.terms)
                if index is not None:
                    # Rarest-first keeps intermediate fragment sets
                    # small.
                    term_order = index.rarest_first(term_order)
                if keyword_source is not None:
                    keyword_sets = [keyword_source(term)
                                    for term in term_order]
                else:
                    keyword_sets = [keyword_fragments(document, term,
                                                      index=index)
                                    for term in term_order]

            empty_terms = [term for term, fs
                           in zip(term_order, keyword_sets) if not fs]
            if budget is not None:
                # Catch pathological dense-keyword queries before any
                # join work: the candidate ceiling applies to every
                # input set.
                for fs in keyword_sets:
                    budget.admit_candidates(len(fs))
                budget.check_deadline()
            with strategy_span:
                if empty_terms:
                    # Conjunctive semantics: a term with no matches
                    # empties the answer.
                    fragments: frozenset[Fragment] = frozenset()
                elif strategy is Strategy.BRUTE_FORCE:
                    fragments = _brute_force(keyword_sets, query, stats,
                                             cache,
                                             max_brute_force_operand,
                                             kernel_obj, budget=budget)
                elif strategy is Strategy.SET_REDUCTION:
                    fragments = _set_reduction(keyword_sets, query,
                                               stats, cache,
                                               bounded=True,
                                               kernel=kernel_obj,
                                               budget=budget)
                elif strategy is Strategy.SEMI_NAIVE:
                    fragments = _set_reduction(keyword_sets, query,
                                               stats, cache,
                                               bounded=False,
                                               kernel=kernel_obj,
                                               budget=budget)
                elif strategy is Strategy.PUSHDOWN:
                    fragments = _pushdown(keyword_sets, query, stats,
                                          cache, kernel_obj,
                                          budget=budget)
                else:  # pragma: no cover - exhaustive over the enum
                    raise QueryError(f"unhandled strategy {strategy}")
            span.set(answers=len(fragments))
    except BudgetExceeded as exc:
        # record_query below is never reached on an abort, so the
        # flight recorder captures the post-mortem here: a
        # budget-exceeded profile is always tail-retained, with the
        # partially-built (and already closed, error-attributed)
        # execute span as its trace.
        if recorder is not None:
            _record_profile(
                recorder, ob, document, query, strategy, index,
                answers=0, elapsed=time.perf_counter() - started,
                cpu_started=cpu_started, mem_token=mem_token,
                stats=stats, budget=budget,
                span=execute_span if ob.tracer.enabled else None,
                outcome="budget-exceeded", reason=exc.reason)
        raise

    elapsed = time.perf_counter() - started
    if ob.enabled:
        ob.record_query(
            document=getattr(document, "name", "?"), terms=query.terms,
            filter=repr(query.predicate), strategy=strategy.value,
            answers=len(fragments), elapsed=elapsed,
            stats=stats.as_dict())
        if recorder is not None:
            _record_profile(
                recorder, ob, document, query, strategy, index,
                answers=len(fragments), elapsed=elapsed,
                cpu_started=cpu_started, mem_token=mem_token,
                stats=stats, budget=budget,
                span=execute_span if ob.tracer.enabled else None)
    if logger.isEnabledFor(logging.DEBUG):
        logger.debug(
            "%s evaluated %s: %d answers, %d joins, %d pruned, %.2fms",
            strategy.value, query.describe(), len(fragments),
            stats.fragment_joins, stats.fragments_discarded,
            elapsed * 1000)
    return QueryResult(query=query, fragments=fragments,
                       strategy=strategy.value, elapsed=elapsed,
                       stats=stats.as_dict())


def _record_profile(recorder, ob, document, query, strategy, index, *,
                    answers, elapsed, cpu_started, mem_token, stats,
                    budget, span, outcome="ok", reason=None):
    """Fold one evaluation into the flight recorder.

    The Section-5 predicted cost is memoized on the recorder (the
    estimate is deterministic per document/query/strategy) so the
    serve loop's repeated queries pay one plan costing, not one per
    evaluation.  Costing failures (e.g. a ``keyword_source`` backend
    with no real :class:`Document`) degrade to an uncalibrated
    profile rather than an error.
    """
    predicate = repr(query.predicate)
    key = (id(document), query.terms, predicate, strategy.value)
    try:
        predicted = recorder.cached_cost(
            key,
            lambda: CostModel(document, index=index)
            .estimate(plan_for(query, strategy)).cost)
    except Exception:
        predicted = None
    recorder.observe(
        metrics=ob.metrics, document=getattr(document, "name", "?"),
        terms=query.terms, filter=predicate,
        strategy=strategy.value, answers=answers, elapsed=elapsed,
        cpu_s=time.process_time() - cpu_started,
        stats=stats.as_dict(), outcome=outcome, reason=reason,
        predicted_cost=predicted,
        peak_memory=recorder.end_memory(mem_token),
        checkpoints=budget.checkpoints if budget is not None else 0,
        span=span)


def plan_for(query: Query,
             strategy: Strategy = Strategy.PUSHDOWN) -> PlanNode:
    """The logical plan a Section-4 strategy executes for ``query``.

    ``BRUTE_FORCE`` is the canonical ``σ_P(scan ⋈* … ⋈* scan)`` plan;
    the other strategies are the optimizer's Theorem-2 rewrite with
    push-down and fixed-point bounding toggled to match:

    * ``SET_REDUCTION`` — bounded fixed points, no push-down;
    * ``SEMI_NAIVE`` — semi-naive fixed points, no push-down;
    * ``PUSHDOWN`` — bounded fixed points with Theorem-3 push-down.
    """
    if strategy is Strategy.BRUTE_FORCE:
        return initial_plan(query)
    if strategy is Strategy.SET_REDUCTION:
        return optimize(query, OptimizerSettings(push_down=False))
    if strategy is Strategy.SEMI_NAIVE:
        return optimize(query, OptimizerSettings(
            push_down=False, bounded_fixed_points=False))
    if strategy is Strategy.PUSHDOWN:
        return optimize(query)
    raise QueryError(f"unhandled strategy {strategy}")  # pragma: no cover


def explain_analyze(document: "Document", query: Query,
                    strategy: Strategy = Strategy.PUSHDOWN,
                    index: Optional["InvertedIndex"] = None,
                    cache: Optional[JoinCache] = None,
                    obs: Optional[Observability] = None,
                    kernel: KernelArg = None,
                    plan: Optional[PlanNode] = None,
                    analysis: Optional[PlanAnalysis] = None,
                    budget: Optional["QueryBudget"] = None
                    ) -> tuple[QueryResult, PlanAnalysis]:
    """EXPLAIN ANALYZE: run ``query`` through its strategy's plan.

    Executes :func:`plan_for`'s plan via the plan evaluator, recording
    per-operator runtime statistics (fragments in/out, joins, cache hit
    ratio, predicate checks, pushdown discards, self/total time), and
    returns ``(result, analysis)``.  Render the analysis with
    ``explain(plan, analyze=analysis)`` — the analysed plan is
    ``analysis.plan``.

    ``plan``/``analysis`` may be supplied to accumulate many executions
    (e.g. every document of a collection) into one analysis; the
    analysis must have been built from the *same* plan object.
    """
    if plan is None:
        plan = analysis.plan if analysis is not None \
            else plan_for(query, strategy)
    if analysis is None:
        analysis = PlanAnalysis(plan)
    elif analysis.plan is not plan:
        raise QueryError("analysis was built for a different plan; "
                         "pass the plan object it analyses")
    result = run_plan(document, query, plan, index=index, cache=cache,
                      strategy_name=strategy.value, obs=obs,
                      kernel=kernel, analysis=analysis, budget=budget)
    return result, analysis


def answer(document: "Document", *terms: str,
           predicate=None,
           strategy: Strategy = Strategy.PUSHDOWN,
           index: Optional["InvertedIndex"] = None) -> QueryResult:
    """One-call convenience API: ``answer(doc, "xquery", "optimization")``."""
    query = Query.of(*terms, predicate=predicate)
    return evaluate(document, query, strategy=strategy, index=index)


# ----------------------------------------------------------------------
# Strategy bodies
# ----------------------------------------------------------------------

def _brute_force(keyword_sets, query: Query, stats: OperationStats,
                 cache: Optional[JoinCache],
                 max_operand: int, kernel=None,
                 budget=None) -> frozenset[Fragment]:
    candidates = multiway_powerset_join(keyword_sets, stats=stats,
                                        cache=cache,
                                        max_operand_size=max_operand,
                                        kernel=kernel, budget=budget)
    return select(query.predicate, candidates, stats=stats)


def _set_reduction(keyword_sets, query: Query, stats: OperationStats,
                   cache: Optional[JoinCache],
                   bounded: bool, kernel=None,
                   budget=None) -> frozenset[Fragment]:
    closure = fixed_point_bounded if bounded else fixed_point
    fixed_points = [closure(fs, stats=stats, cache=cache, kernel=kernel,
                            budget=budget)
                    for fs in keyword_sets]
    candidates = _reduce(
        lambda left, right: pairwise_join(left, right, stats=stats,
                                          cache=cache, kernel=kernel,
                                          budget=budget),
        fixed_points)
    return select(query.predicate, candidates, stats=stats)


def _pushdown(keyword_sets, query: Query, stats: OperationStats,
              cache: Optional[JoinCache],
              kernel=None, budget=None) -> frozenset[Fragment]:
    predicate = query.predicate
    pushed = predicate if predicate.is_anti_monotonic else None
    fixed_points = []
    for fs in keyword_sets:
        if pushed is not None and not select(pushed, fs, stats=stats):
            # An anti-monotonic filter that rejects every keyword node of
            # one term rejects every candidate fragment too.
            return frozenset()
        fixed_points.append(fixed_point(fs, stats=stats, cache=cache,
                                        predicate=pushed, kernel=kernel,
                                        budget=budget))
    candidates = fixed_points[0]
    for other in fixed_points[1:]:
        candidates = pairwise_join(candidates, other,
                                   stats=stats, cache=cache,
                                   kernel=kernel, budget=budget)
        if pushed is not None:
            candidates = select(pushed, candidates, stats=stats)
    # Final selection guarantees correctness for non-anti-monotonic
    # predicates and is a no-op (already satisfied) for pushed ones.
    return select(predicate, candidates, stats=stats)
