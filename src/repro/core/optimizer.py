"""Algebraic plan rewriting (paper Section 3).

Two rewrite rules, applied by :func:`optimize`:

**Theorem 2** (powerset elimination)::

    F1 ⋈* F2 ⋈* … ⋈* Fm   →   F1+ ⋈ F2+ ⋈ … ⋈ Fm+

Each ``Fi+`` is a :class:`~repro.core.plan.FixedPoint` over the scan;
the m-ary join becomes a left-deep chain of pairwise joins.

**Theorem 3** (selection push-down)::

    σ_Pa(F1 ⋈ F2)   →   σ_Pa(σ_Pa(F1) ⋈ σ_Pa(F2))

applied recursively, so an anti-monotonic selection ends up (a) on every
scan, (b) pruning inside every fixed point, and (c) re-applied after
every join — the equation displayed after Theorem 3 in the paper.
Non-anti-monotonic predicates are left where they are.

The optimizer is purely algebraic (the paper's focus); the cost model in
:mod:`repro.core.cost` chooses *between* valid plans, e.g. bounded vs
semi-naive fixed points based on the estimated reduction factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce as _reduce
from typing import Optional

from ..obs import NOOP, Observability
from .cost import CostModel
from .filters import Filter
from .plan import (FixedPoint, KeywordScan, PairwiseJoin, PlanNode,
                   PowersetJoin, Select)
from .query import Query

__all__ = ["OptimizerSettings", "optimize", "push_down_selections",
           "rewrite_powerset"]


@dataclass(frozen=True)
class OptimizerSettings:
    """Knobs for plan rewriting.

    Attributes
    ----------
    push_down:
        Apply Theorem-3 push-down of anti-monotonic selections.
    bounded_fixed_points:
        Use the Theorem-1 bounded iteration inside fixed points.  When a
        cost model is supplied, this is decided per fixed point from the
        estimated reduction factor instead (see §5's RF discussion).
    cost_model:
        Optional :class:`~repro.core.cost.CostModel` used for
        RF-threshold decisions and join ordering.
    """

    push_down: bool = True
    bounded_fixed_points: bool = True
    cost_model: Optional[CostModel] = field(default=None)


def optimize(query: Query,
             settings: Optional[OptimizerSettings] = None,
             obs: Optional[Observability] = None) -> PlanNode:
    """Produce an optimised plan for ``query``.

    Starts from the canonical ``σ_P(scan ⋈* … ⋈* scan)`` plan, applies
    the Theorem-2 rewrite, orders the join chain rarest-first when a
    cost model with term statistics is available, and finally pushes the
    selection down when Theorem 3 applies.  With an enabled ``obs``
    handle the rewrite is wrapped in an ``optimize`` span recording the
    operator count and whether push-down fired.
    """
    ob = obs if obs is not None else NOOP
    with ob.span("optimize", terms=len(query.terms)) as span:
        settings = (settings if settings is not None
                    else OptimizerSettings())
        terms = list(query.terms)
        model = settings.cost_model
        if model is not None:
            terms.sort(key=model.term_cardinality)

        bounded = settings.bounded_fixed_points

        def make_fixed_point(term: str) -> PlanNode:
            scan = KeywordScan(term)
            use_bounded = bounded
            if model is not None:
                use_bounded = model.prefer_bounded_fixed_point(term)
            return FixedPoint(scan, bounded=use_bounded)

        chain: PlanNode = _reduce(
            PairwiseJoin, (make_fixed_point(term) for term in terms))
        plan: PlanNode = Select(query.predicate, chain)
        pushed = settings.push_down and query.predicate.is_anti_monotonic
        if pushed:
            plan = push_down_selections(plan)
        if ob.enabled:
            span.set(push_down=pushed,
                     operators=sum(1 for _ in plan.walk()))
    return plan


def rewrite_powerset(node: PlanNode, bounded: bool = True) -> PlanNode:
    """Apply the Theorem-2 rewrite to every ``PowersetJoin`` in a plan."""
    if isinstance(node, PowersetJoin):
        fixed_points = [FixedPoint(rewrite_powerset(op, bounded), bounded)
                        for op in node.operands]
        return _reduce(PairwiseJoin, fixed_points)
    if isinstance(node, Select):
        return Select(node.predicate, rewrite_powerset(node.child, bounded))
    if isinstance(node, PairwiseJoin):
        return PairwiseJoin(rewrite_powerset(node.left, bounded),
                            rewrite_powerset(node.right, bounded))
    if isinstance(node, FixedPoint):
        return FixedPoint(rewrite_powerset(node.child, bounded),
                          node.bounded, node.predicate)
    return node


def push_down_selections(node: PlanNode) -> PlanNode:
    """Apply Theorem-3 push-down to every eligible selection in a plan.

    Each ``Select`` whose predicate is anti-monotonic is propagated to
    the scans, threaded into fixed points as a pruning predicate, and
    re-applied above every join, matching the expansion after Theorem 3.
    Selections with other predicates are left untouched.
    """
    if isinstance(node, Select):
        child = push_down_selections(node.child)
        if node.predicate.is_anti_monotonic:
            return Select(node.predicate, _push(node.predicate, child))
        return Select(node.predicate, child)
    if isinstance(node, PairwiseJoin):
        return PairwiseJoin(push_down_selections(node.left),
                            push_down_selections(node.right))
    if isinstance(node, FixedPoint):
        return FixedPoint(push_down_selections(node.child),
                          node.bounded, node.predicate)
    if isinstance(node, PowersetJoin):
        return PowersetJoin(tuple(push_down_selections(op)
                                  for op in node.operands))
    return node


def _push(predicate: Filter, node: PlanNode) -> PlanNode:
    """Push an anti-monotonic predicate through one subtree."""
    if isinstance(node, KeywordScan):
        return Select(predicate, node)
    if isinstance(node, Select):
        # Merge: pushing P through σ_Q(X) keeps σ_Q and pushes P inward.
        return Select(node.predicate, _push(predicate, node.child))
    if isinstance(node, PairwiseJoin):
        return Select(predicate,
                      PairwiseJoin(_push(predicate, node.left),
                                   _push(predicate, node.right)))
    if isinstance(node, FixedPoint):
        return FixedPoint(_push(predicate, node.child),
                          node.bounded, predicate)
    if isinstance(node, PowersetJoin):
        # ⋈* is a union of joins of operand subsets, and σ_Pa commutes
        # with unions and joins alike, so pushing into each operand is
        # sound; the outer selection is re-applied by the caller.
        return Select(predicate,
                      PowersetJoin(tuple(_push(predicate, op)
                                         for op in node.operands)))
    raise TypeError(f"unknown plan node {type(node).__name__}")
