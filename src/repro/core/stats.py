"""Operation counters for the algebra.

Every algebra entry point accepts an optional :class:`OperationStats`;
when supplied, the number of primitive operations performed (fragment
joins, predicate evaluations, subset checks) is accumulated there.  The
benchmark harness uses these counters to report *logical* work — the
quantity the paper's optimisation claims are about — alongside wall-clock
time, which depends on implementation detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OperationStats"]


@dataclass
class OperationStats:
    """Mutable tally of primitive algebra operations.

    Attributes
    ----------
    fragment_joins:
        Number of binary fragment-join computations (cache misses only
        count once when a memo cache is in use; see ``join_cache_hits``).
    join_cache_hits:
        Joins answered from the memo cache.
    predicate_checks:
        Filter evaluations performed by selections.
    subset_checks:
        Fragment-containment tests (used by set reduction).
    fragments_discarded:
        Fragments eliminated early by pushed-down selections.
    iterations:
        Pairwise-join rounds executed by fixed-point computations.
    """

    fragment_joins: int = 0
    join_cache_hits: int = 0
    predicate_checks: int = 0
    subset_checks: int = 0
    fragments_discarded: int = 0
    iterations: int = 0
    extras: dict = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter."""
        self.fragment_joins = 0
        self.join_cache_hits = 0
        self.predicate_checks = 0
        self.subset_checks = 0
        self.fragments_discarded = 0
        self.iterations = 0
        self.extras.clear()

    @property
    def total_joins(self) -> int:
        """Joins requested, whether computed or served from cache."""
        return self.fragment_joins + self.join_cache_hits

    def merge(self, other: "OperationStats") -> None:
        """Add another tally into this one."""
        self.fragment_joins += other.fragment_joins
        self.join_cache_hits += other.join_cache_hits
        self.predicate_checks += other.predicate_checks
        self.subset_checks += other.subset_checks
        self.fragments_discarded += other.fragments_discarded
        self.iterations += other.iterations
        for key, value in other.extras.items():
            self.extras[key] = self.extras.get(key, 0) + value

    def as_dict(self) -> dict:
        """A plain-dict snapshot, convenient for reporting."""
        snapshot = {
            "fragment_joins": self.fragment_joins,
            "join_cache_hits": self.join_cache_hits,
            "predicate_checks": self.predicate_checks,
            "subset_checks": self.subset_checks,
            "fragments_discarded": self.fragments_discarded,
            "iterations": self.iterations,
        }
        snapshot.update(self.extras)
        return snapshot

    def snapshot(self) -> "OperationStats":
        """An independent copy of the current counter values.

        The tracer snapshots a tally when a span opens so the span can
        later report only the work done while it was open.
        """
        return OperationStats(
            fragment_joins=self.fragment_joins,
            join_cache_hits=self.join_cache_hits,
            predicate_checks=self.predicate_checks,
            subset_checks=self.subset_checks,
            fragments_discarded=self.fragments_discarded,
            iterations=self.iterations,
            extras=dict(self.extras))

    def delta(self, since: "OperationStats") -> "OperationStats":
        """The work done after ``since`` was snapshotted (``self − since``).

        Extras present only in ``since`` come out negative-free: keys
        are differenced where shared and copied where new.
        """
        extras = {key: value - since.extras.get(key, 0)
                  for key, value in self.extras.items()}
        return OperationStats(
            fragment_joins=self.fragment_joins - since.fragment_joins,
            join_cache_hits=self.join_cache_hits - since.join_cache_hits,
            predicate_checks=self.predicate_checks - since.predicate_checks,
            subset_checks=self.subset_checks - since.subset_checks,
            fragments_discarded=(self.fragments_discarded
                                 - since.fragments_discarded),
            iterations=self.iterations - since.iterations,
            extras={key: value for key, value in extras.items() if value})
