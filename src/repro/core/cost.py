"""A cost model for the algebra (paper Section 5, built out).

The paper defers cost modelling to future work but sketches what it must
do: estimate operator costs, and in particular decide whether computing
``⊖(F)`` pays for itself via the *reduction factor* ``RF = (a - b)/a``
with ``a = |F|`` and ``b = |⊖(F)|``.  This module provides:

* cardinality estimation per plan operator,
* a unit-cost estimate per operator (joins weighted by expected
  fragment size),
* the RF-threshold decision rule: prefer the Theorem-1 bounded fixed
  point when the *estimated* RF of the keyword set is at least the
  calibrated threshold ``v`` (because the ⊖ computation then removes
  enough iterations to amortise its own O(|F|²) joins).

Estimates are intentionally simple and fully deterministic — the point
is to reproduce the *decision structure* the paper describes, and to
give the S2 bench a concrete RF/v mechanism to measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .plan import (FixedPoint, KeywordScan, PairwiseJoin, PlanNode,
                   PowersetJoin, Select)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..index.inverted import InvertedIndex
    from ..xmltree.document import Document

__all__ = ["CostEstimate", "CostModel", "DEFAULT_RF_THRESHOLD"]

#: Default reduction-factor threshold ``v``: below this, ⊖'s own cost is
#: assumed to outweigh the iterations it saves.  Calibrated empirically
#: by ``benchmarks/bench_reduction_factor.py`` (see EXPERIMENTS.md, S2).
DEFAULT_RF_THRESHOLD = 0.25

#: Anti-monotonic filters prune aggressively; lacking per-filter
#: statistics we assume a selection keeps this fraction of fragments.
_DEFAULT_FILTER_SELECTIVITY = 0.5


@dataclass(frozen=True)
class CostEstimate:
    """Estimated output cardinality and cumulative cost of a plan node."""

    cardinality: float
    cost: float

    def __add__(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(self.cardinality + other.cardinality,
                            self.cost + other.cost)


class CostModel:
    """Cardinality/cost estimator bound to one document (and its index).

    Parameters
    ----------
    document:
        The queried document.
    index:
        Optional inverted index supplying exact term frequencies; without
        it term cardinalities fall back to a heuristic constant.
    rf_threshold:
        The §5 threshold ``v`` for the bounded-fixed-point decision.
    filter_selectivity:
        Assumed fraction of fragments surviving one anti-monotonic
        selection.
    """

    def __init__(self, document: "Document",
                 index: Optional["InvertedIndex"] = None,
                 rf_threshold: float = DEFAULT_RF_THRESHOLD,
                 filter_selectivity: float = _DEFAULT_FILTER_SELECTIVITY
                 ) -> None:
        if not 0.0 <= rf_threshold <= 1.0:
            raise ValueError("rf_threshold must be in [0, 1]")
        if not 0.0 < filter_selectivity <= 1.0:
            raise ValueError("filter_selectivity must be in (0, 1]")
        self._document = document
        self._index = index
        self.rf_threshold = rf_threshold
        self.filter_selectivity = filter_selectivity

    # ------------------------------------------------------------------
    # Term statistics
    # ------------------------------------------------------------------

    def term_cardinality(self, term: str) -> int:
        """Expected size of ``σ_{keyword=term}(nodes(D))``."""
        if self._index is not None:
            return self._index.document_frequency(term)
        # Without an index assume a mildly selective term.
        return max(1, self._document.size // 20)

    def estimate_reduction_factor(self, term: str) -> float:
        """Estimated RF of the keyword set of ``term``.

        Heuristic: keyword nodes that are ancestors of other keyword
        nodes, or siblings under a shared parent, tend to be subsumed by
        pairwise joins.  Lacking the actual ⊖ computation (whose cost is
        the very thing being traded off), we estimate RF from posting
        clustering: the fraction of posting nodes whose parent also has
        a posting node under it.
        """
        if self._index is None:
            return 0.0
        postings = self._index.postings(term)
        if len(postings) < 3:
            return 0.0
        parents = [self._document.parent(n) for n in postings]
        parent_counts: dict[int, int] = {}
        for parent in parents:
            if parent is not None:
                parent_counts[parent] = parent_counts.get(parent, 0) + 1
        clustered = sum(count for count in parent_counts.values()
                        if count > 1)
        # Within a sibling cluster of size c, roughly c - 2 fragments are
        # subsumed once the two extremes join (cf. Figure 4).
        reducible = sum(max(0, count - 2)
                        for count in parent_counts.values() if count > 1)
        del clustered
        return min(1.0, reducible / len(postings))

    def prefer_bounded_fixed_point(self, term: str) -> bool:
        """The §5 decision rule: bounded iff estimated RF ≥ threshold."""
        return self.estimate_reduction_factor(term) >= self.rf_threshold

    # ------------------------------------------------------------------
    # Plan costing
    # ------------------------------------------------------------------

    def estimate(self, plan: PlanNode) -> CostEstimate:
        """Estimated cardinality and cumulative cost of a plan subtree."""
        if isinstance(plan, KeywordScan):
            cardinality = float(self.term_cardinality(plan.term))
            return CostEstimate(cardinality, cardinality)
        if isinstance(plan, Select):
            child = self.estimate(plan.child)
            kept = child.cardinality * self.filter_selectivity
            return CostEstimate(kept, child.cost + child.cardinality)
        if isinstance(plan, PairwiseJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            pairs = left.cardinality * right.cardinality
            # Joins deduplicate heavily; assume sqrt-style collapse.
            out = max(left.cardinality, right.cardinality,
                      math.sqrt(pairs))
            return CostEstimate(out, left.cost + right.cost + pairs)
        if isinstance(plan, FixedPoint):
            child = self.estimate(plan.child)
            n = max(1.0, child.cardinality)
            # Fixed points are bounded by 2^n - 1 but collapse massively
            # in tree-shaped data; model growth as quadratic.
            out = min(2.0 ** min(n, 30.0) - 1.0, n * n)
            rounds = max(1.0, math.log2(n + 1.0)) if plan.bounded else n
            reduce_cost = n * n if plan.bounded else 0.0
            return CostEstimate(out,
                                child.cost + reduce_cost + rounds * out * n)
        if isinstance(plan, PowersetJoin):
            children = [self.estimate(op) for op in plan.operands]
            subsets = 1.0
            for child in children:
                subsets *= (2.0 ** min(child.cardinality, 40.0)) - 1.0
            out = min(subsets, sum(c.cardinality for c in children) ** 2)
            return CostEstimate(out,
                                sum(c.cost for c in children) + subsets)
        raise TypeError(f"unknown plan node {type(plan).__name__}")
