"""Reduction-factor statistics (paper Section 5).

The paper defines the *reduction factor* of a fragment set ``F`` as

    ``RF = (a - b) / a``  with  ``a = |F|``, ``b = |⊖(F)|``

(``RF = 0`` — no reduction; ``RF → 1`` — massive reduction) and sketches
an optimizer that estimates RF, compares it against an empirically
calibrated threshold ``v``, and performs set reduction only when
``RF ≥ v``.  This module supplies the exact computation, a cheap
sampling estimator, and the calibration helper the S2 bench uses to
locate ``v``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .algebra import JoinCache
from .fragment import Fragment
from .reduce import set_reduce
from .stats import OperationStats

__all__ = [
    "reduction_factor",
    "estimate_reduction_factor",
    "CalibrationPoint",
    "calibrate_threshold",
]


def reduction_factor(fragments: Iterable[Fragment],
                     stats: Optional[OperationStats] = None,
                     cache: Optional[JoinCache] = None) -> float:
    """Exact ``RF = (|F| - |⊖(F)|) / |F|`` (0.0 for empty sets)."""
    items = frozenset(fragments)
    if not items:
        return 0.0
    reduced = set_reduce(items, stats=stats, cache=cache)
    return (len(items) - len(reduced)) / len(items)


def estimate_reduction_factor(fragments: Sequence[Fragment],
                              sample_size: int = 12,
                              trials: int = 4,
                              seed: int = 0,
                              cache: Optional[JoinCache] = None) -> float:
    """Estimate RF by reducing small random samples of ``F``.

    Exact ⊖ costs O(|F|²) joins — precisely what the optimizer is trying
    to avoid paying blindly.  Sampling reduces the cost to
    O(trials · sample_size²) while preserving the ranking between
    low-RF and high-RF sets (validated in the S2 bench).

    Sampling *underestimates* RF because subsuming pairs may fall
    outside the sample; that bias is conservative for the decision rule
    (we skip reduction only when even the optimistic samples show none).
    """
    items = list(fragments)
    if len(items) <= sample_size:
        return reduction_factor(items, cache=cache)
    rng = random.Random(seed)
    estimates = []
    for _ in range(max(1, trials)):
        sample = rng.sample(items, sample_size)
        estimates.append(reduction_factor(sample, cache=cache))
    return sum(estimates) / len(estimates)


@dataclass(frozen=True)
class CalibrationPoint:
    """One observation for threshold calibration.

    Attributes
    ----------
    rf:
        Measured (or estimated) reduction factor of the fragment set.
    reduction_paid_off:
        Whether evaluating with set reduction was cheaper than without
        for this observation (by whatever cost metric the experiment
        uses — joins or wall time).
    """

    rf: float
    reduction_paid_off: bool


def calibrate_threshold(points: Sequence[CalibrationPoint]) -> float:
    """Choose the RF threshold ``v`` minimising decision errors.

    Scans candidate thresholds (the observed RF values plus 0 and 1) and
    returns the one for which the rule "reduce iff RF ≥ v" misclassifies
    the fewest observations.  Ties prefer the smaller threshold, i.e.
    reducing more often, since Theorem 1 never makes results wrong —
    only slower.
    """
    if not points:
        return 0.0
    candidates = sorted({0.0, 1.0} | {p.rf for p in points})
    best_threshold = 0.0
    best_errors = len(points) + 1
    for threshold in candidates:
        errors = sum(
            1 for p in points
            if (p.rf >= threshold) != p.reduction_paid_off)
        if errors < best_errors:
            best_errors = errors
            best_threshold = threshold
    return best_threshold
