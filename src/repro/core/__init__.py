"""The paper's algebraic query model: fragments, operations, filters,
queries, plans, optimisation and evaluation strategies."""

from .algebra import (JoinCache, fragment_join, join_all,
                      multiway_powerset_join, pairwise_join, powerset_join)
from .cost import CostEstimate, CostModel, DEFAULT_RF_THRESHOLD
from .enumeration import (count_subfragments,
                          find_anti_monotonicity_violation,
                          iter_all_fragments, iter_subfragments,
                          verify_anti_monotonic)
from .evaluator import (OperatorRunStats, PlanAnalysis, PlanEvaluator,
                        run_plan)
from .filters import (And, ContainsKeyword, EqualDepth, ExcludesKeyword,
                      Filter, HeightAtMost, LeafCountAtMost, Not, Or,
                      PredicateFilter, RootDepthAtLeast, SizeAtLeast,
                      SizeAtMost, TagsWithin, TrueFilter, WidthAtMost,
                      select)
from .fragment import Fragment
from .optimizer import (OptimizerSettings, optimize, push_down_selections,
                        rewrite_powerset)
from .plan import (FixedPoint, KeywordScan, PairwiseJoin, PlanNode,
                   PowersetJoin, Select, explain, initial_plan)
from .query import (Query, QueryResult, covers_all_terms, is_answer,
                    keyword_fragments)
from .queryparser import parse_filter, parse_query
from .semantics import (definition8_answers, powerset_semantics_answers,
                        semantics_gap)
from .reduce import (fixed_point, fixed_point_bounded, is_fixed_point,
                     iterate_pairwise, reduction_count, set_reduce)
from .presentation import (AnswerGroup, OverlapPolicy, arrange, overlap,
                            overlap_matrix)
from .statistics import (CalibrationPoint, calibrate_threshold,
                         estimate_reduction_factor, reduction_factor)
from .stats import OperationStats
from .strategies import (Strategy, answer, evaluate, explain_analyze,
                         plan_for)
from .streaming import (FragmentStream, fragment_order_key, hit_order_key,
                        ranked_order_key, stream_evaluate, stream_top_k)
from .topk import top_k_smallest
from .witnesses import highlighted_outline, missing_terms, witnesses

__all__ = [
    # fragments & algebra
    "Fragment", "fragment_join", "join_all", "pairwise_join",
    "powerset_join", "multiway_powerset_join", "JoinCache",
    # fixed points & reduction
    "fixed_point", "fixed_point_bounded", "iterate_pairwise",
    "set_reduce", "reduction_count", "is_fixed_point",
    # filters & selection
    "Filter", "TrueFilter", "SizeAtMost", "SizeAtLeast", "HeightAtMost",
    "WidthAtMost", "ContainsKeyword", "ExcludesKeyword", "EqualDepth",
    "RootDepthAtLeast", "TagsWithin", "LeafCountAtMost", "And", "Or",
    "Not", "PredicateFilter", "select",
    # presentation & retrieval helpers
    "OverlapPolicy", "AnswerGroup", "arrange", "overlap",
    "overlap_matrix", "top_k_smallest",
    # streaming pipeline
    "FragmentStream", "stream_evaluate", "stream_top_k",
    "fragment_order_key", "hit_order_key", "ranked_order_key",
    # query language & oracles
    "parse_query", "parse_filter", "definition8_answers",
    "powerset_semantics_answers", "semantics_gap",
    # provenance
    "witnesses", "missing_terms", "highlighted_outline",
    # queries & evaluation
    "Query", "QueryResult", "keyword_fragments", "is_answer",
    "covers_all_terms", "Strategy", "evaluate", "answer",
    "plan_for", "explain_analyze",
    # plans & optimisation
    "PlanNode", "KeywordScan", "Select", "PairwiseJoin", "FixedPoint",
    "PowersetJoin", "initial_plan", "explain", "optimize",
    "OptimizerSettings", "push_down_selections", "rewrite_powerset",
    "PlanEvaluator", "run_plan", "PlanAnalysis", "OperatorRunStats",
    # cost & statistics
    "CostModel", "CostEstimate", "DEFAULT_RF_THRESHOLD",
    "reduction_factor", "estimate_reduction_factor", "CalibrationPoint",
    "calibrate_threshold", "OperationStats",
    # enumeration / verification
    "iter_subfragments", "iter_all_fragments", "count_subfragments",
    "find_anti_monotonicity_violation", "verify_anti_monotonic",
]
