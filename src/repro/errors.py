"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class at their outermost layer while
still being able to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DocumentError(ReproError):
    """Raised when a document is structurally invalid or cannot be built."""


class ParseError(DocumentError):
    """Raised when XML input cannot be parsed into a document tree."""


class FragmentError(ReproError):
    """Raised when a fragment violates the paper's Definition 2.

    A fragment must be a non-empty set of nodes of a single document whose
    induced subgraph is a rooted (connected) tree.
    """


class CrossDocumentError(FragmentError):
    """Raised when an operation mixes fragments of different documents."""


class PlanError(ReproError):
    """Raised when a logical query plan is malformed or cannot be executed."""


class QueryError(ReproError):
    """Raised when a query specification is invalid (e.g. no keywords)."""


class StorageError(ReproError):
    """Raised by the relational (sqlite3) storage backend."""


class ShardError(StorageError):
    """Raised by the sharded on-disk index (:mod:`repro.storage.shards`).

    Structured like :class:`BudgetExceeded`: carries which invariant was
    violated (``reason``), which shard file tripped it and the path, so
    routers and servers can log/skip a bad shard without string parsing.

    Attributes
    ----------
    reason:
        Machine-readable cause: ``"missing"``, ``"truncated"``,
        ``"bad-magic"``, ``"version-skew"``, ``"checksum"``,
        ``"bad-header"``, ``"bad-manifest"``, ``"unknown-document"`` or
        ``"read-only"``.
    shard:
        The shard number involved, or ``None`` when the failure is not
        tied to a single shard (e.g. a bad manifest).
    path:
        The offending file, when known.
    """

    def __init__(self, message: str, reason: str = "corrupt",
                 shard=None, path=None) -> None:
        super().__init__(message)
        self.reason = reason
        self.shard = shard
        self.path = str(path) if path is not None else None

    def __reduce__(self):
        return (type(self), (str(self), self.reason, self.shard,
                             self.path))

    def to_dict(self) -> dict:
        """JSON-friendly form, used by the router report and the CLI."""
        return {"error": "shard", "reason": self.reason,
                "message": str(self), "shard": self.shard,
                "path": self.path}


class WALError(StorageError):
    """Raised by the live-mutation layer (:mod:`repro.storage.mutation`).

    Attributes
    ----------
    reason:
        Machine-readable cause: ``"missing"``, ``"bad-op"``,
        ``"bad-epoch"``, ``"torn"``, ``"unknown-document"``,
        ``"read-only"``, ``"closed"`` or ``"corrupt"``.
    path:
        The offending file or directory, when known.
    """

    def __init__(self, message: str, reason: str = "corrupt",
                 path=None) -> None:
        super().__init__(message)
        self.reason = reason
        self.path = str(path) if path is not None else None

    def __reduce__(self):
        return (type(self), (str(self), self.reason, self.path))

    def to_dict(self) -> dict:
        """JSON-friendly form, used by fsck and the ingest endpoint."""
        return {"error": "wal", "reason": self.reason,
                "message": str(self), "path": self.path}


class ExecutionError(ReproError):
    """Raised when parallel execution exhausts its failure budget.

    Only reachable with ``fallback="never"``: the default policy
    degrades failed chunks to an in-process serial re-evaluation
    instead of raising.
    """


class WorkloadError(ReproError):
    """Raised when a synthetic workload specification is unsatisfiable."""


class BudgetExceeded(ReproError):
    """Raised when a query blows through its :class:`~repro.guard.QueryBudget`.

    Cooperative abort: checkpoints inside the evaluation hot loops raise
    this as soon as a limit (wall deadline, join-operation budget, live
    fragment or candidate-set ceiling) is crossed.  The exception is
    *structured* — it carries which limit tripped, how long the query had
    run, and a partial-progress snapshot — so servers and logs can report
    the abort without re-deriving anything.

    Attributes
    ----------
    reason:
        Which limit tripped: ``"deadline"``, ``"join-ops"``,
        ``"live-fragments"`` or ``"candidates"``.
    elapsed:
        Seconds between the budget's start and the abort.
    progress:
        Plain-dict snapshot of the work done so far (join-op count and,
        when the budget was bound to an
        :class:`~repro.core.stats.OperationStats`, its counters).
    """

    def __init__(self, message: str, reason: str = "budget",
                 elapsed: float = 0.0, progress=None) -> None:
        super().__init__(message)
        self.reason = reason
        self.elapsed = elapsed
        self.progress = dict(progress) if progress else {}

    def __reduce__(self):
        # Preserve the structured fields across pickling (the default
        # BaseException reduction re-calls __init__ with .args only).
        return (type(self), (str(self), self.reason, self.elapsed,
                             self.progress))

    def to_dict(self) -> dict:
        """JSON-friendly form, used by the query endpoint and the CLI."""
        return {"error": "budget-exceeded", "reason": self.reason,
                "message": str(self), "elapsed_s": round(self.elapsed, 6),
                "progress": dict(self.progress)}


class AdmissionRejected(ReproError):
    """Raised when the pre-admission cost screen refuses a query.

    The screen (:func:`repro.guard.screen`) estimates the cost of the
    requested strategy's plan with :class:`~repro.core.cost.CostModel`
    *before any evaluation work runs*; a query whose estimate exceeds
    the configured ceiling — even after trying the downgrade strategy —
    is rejected with this error.
    """

    def __init__(self, message: str, estimated_cost: float = 0.0,
                 max_cost: float = 0.0) -> None:
        super().__init__(message)
        self.estimated_cost = estimated_cost
        self.max_cost = max_cost

    def __reduce__(self):
        return (type(self), (str(self), self.estimated_cost,
                             self.max_cost))

    def to_dict(self) -> dict:
        """JSON-friendly form, used by the query endpoint and the CLI."""
        return {"error": "admission-rejected", "message": str(self),
                "estimated_cost": self.estimated_cost,
                "max_cost": self.max_cost}
