"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class at their outermost layer while
still being able to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DocumentError(ReproError):
    """Raised when a document is structurally invalid or cannot be built."""


class ParseError(DocumentError):
    """Raised when XML input cannot be parsed into a document tree."""


class FragmentError(ReproError):
    """Raised when a fragment violates the paper's Definition 2.

    A fragment must be a non-empty set of nodes of a single document whose
    induced subgraph is a rooted (connected) tree.
    """


class CrossDocumentError(FragmentError):
    """Raised when an operation mixes fragments of different documents."""


class PlanError(ReproError):
    """Raised when a logical query plan is malformed or cannot be executed."""


class QueryError(ReproError):
    """Raised when a query specification is invalid (e.g. no keywords)."""


class StorageError(ReproError):
    """Raised by the relational (sqlite3) storage backend."""


class ExecutionError(ReproError):
    """Raised when parallel execution exhausts its failure budget.

    Only reachable with ``fallback="never"``: the default policy
    degrades failed chunks to an in-process serial re-evaluation
    instead of raising.
    """


class WorkloadError(ReproError):
    """Raised when a synthetic workload specification is unsatisfiable."""
