"""repro — An Algebraic Query Model for Retrieval of XML Fragments.

A faithful, production-quality reproduction of Sujeet Pradhan's VLDB
2006 paper: a database-style algebra (selection + fragment joins) for
keyword search over document-centric XML, with anti-monotonic filter
push-down, fixed-point evaluation via set reduction (Theorems 1–3), a
relational storage backend, classic LCA-based baselines, and a full
benchmark harness.

Quickstart
----------
>>> import repro
>>> doc = repro.parse("<a><b>red apple</b><c><d>green pear</d>"
...                   "<e>red pear</e></c></a>")
>>> result = repro.answer(doc, "red", "pear",
...                       predicate=repro.SizeAtMost(3))
>>> sorted(f.label() for f in result.fragments)
['⟨n2,n3,n4⟩', '⟨n4⟩']

See ``examples/quickstart.py`` for a guided tour.
"""

from .core import (And, CalibrationPoint, ContainsKeyword, CostModel,
                   EqualDepth, ExcludesKeyword, Filter, FixedPoint,
                   Fragment, HeightAtMost, JoinCache, KeywordScan,
                   LeafCountAtMost, Not, OperationStats,
                   OptimizerSettings, Or, PairwiseJoin, PlanEvaluator,
                   PowersetJoin, PredicateFilter, Query, QueryResult,
                   RootDepthAtLeast, Select, SizeAtLeast, SizeAtMost,
                   Strategy, TagsWithin, TrueFilter, WidthAtMost, answer,
                   calibrate_threshold, count_subfragments,
                   covers_all_terms, estimate_reduction_factor, evaluate,
                   explain, find_anti_monotonicity_violation, fixed_point,
                   fixed_point_bounded, fragment_join, initial_plan,
                   is_answer, is_fixed_point, iter_all_fragments,
                   iter_subfragments, iterate_pairwise, join_all,
                   keyword_fragments, multiway_powerset_join, optimize,
                   pairwise_join, powerset_join, push_down_selections,
                   parse_filter, parse_query, reduction_count,
                   reduction_factor, rewrite_powerset, run_plan, select,
                   set_reduce, top_k_smallest, verify_anti_monotonic)
from .collection import (CollectionHit, CollectionResult,
                         DocumentCollection)
from .core.presentation import (AnswerGroup, OverlapPolicy, arrange,
                                overlap, overlap_matrix)
from .errors import (AdmissionRejected, BudgetExceeded,
                     CrossDocumentError, DocumentError, FragmentError,
                     ParseError, PlanError, QueryError, ReproError,
                     StorageError, WorkloadError)
from .exec import BatchRunner, ParallelExecutor
from .guard import (AdmissionDecision, AdmissionPolicy, CircuitBreaker,
                    QueryBudget, screen)
from .xmltree.intervals import IntervalKernel
from .index import InvertedIndex, Tokenizer
from .obs import (NOOP, MetricsRegistry, Observability, QueryLog,
                  QueryRecord, SpanTracer)
from .ranking import (FragmentScorer, ScoredFragment, compactness_score,
                      proximity_score, tf_idf_score)
from .storage import RelationalQueryEngine, RelationalStore
from .xmltree import (Document, DocumentBuilder, document_to_xml,
                      fragment_outline, fragment_to_xml, parse, parse_file)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # documents
    "Document", "DocumentBuilder", "parse", "parse_file",
    "document_to_xml", "fragment_to_xml", "fragment_outline",
    "InvertedIndex", "Tokenizer",
    # algebra
    "Fragment", "fragment_join", "join_all", "pairwise_join",
    "powerset_join", "multiway_powerset_join", "JoinCache",
    "fixed_point", "fixed_point_bounded", "iterate_pairwise",
    "set_reduce", "reduction_count", "is_fixed_point",
    # filters
    "Filter", "TrueFilter", "SizeAtMost", "SizeAtLeast", "HeightAtMost",
    "WidthAtMost", "ContainsKeyword", "ExcludesKeyword", "EqualDepth",
    "RootDepthAtLeast", "TagsWithin", "LeafCountAtMost", "And", "Or",
    "Not", "PredicateFilter", "select",
    # queries
    "Query", "QueryResult", "keyword_fragments", "is_answer",
    "covers_all_terms", "Strategy", "evaluate", "answer",
    "top_k_smallest", "parse_query", "parse_filter",
    # plans & optimisation
    "KeywordScan", "Select", "PairwiseJoin", "FixedPoint",
    "PowersetJoin", "initial_plan", "explain", "optimize",
    "OptimizerSettings", "push_down_selections", "rewrite_powerset",
    "PlanEvaluator", "run_plan", "CostModel", "OperationStats",
    "reduction_factor", "estimate_reduction_factor", "CalibrationPoint",
    "calibrate_threshold",
    # verification helpers
    "iter_subfragments", "iter_all_fragments", "count_subfragments",
    "find_anti_monotonicity_violation", "verify_anti_monotonic",
    # storage
    "RelationalStore", "RelationalQueryEngine",
    # collections
    "DocumentCollection", "CollectionResult", "CollectionHit",
    # parallel execution & join kernel
    "ParallelExecutor", "BatchRunner", "IntervalKernel",
    # presentation (§5 overlapping answers)
    "OverlapPolicy", "AnswerGroup", "arrange", "overlap",
    "overlap_matrix",
    # ranking
    "FragmentScorer", "ScoredFragment", "tf_idf_score",
    "compactness_score", "proximity_score",
    # observability
    "Observability", "NOOP", "SpanTracer", "MetricsRegistry",
    "QueryLog", "QueryRecord",
    # guard rails
    "QueryBudget", "AdmissionPolicy", "AdmissionDecision", "screen",
    "CircuitBreaker",
    # errors
    "ReproError", "DocumentError", "ParseError", "FragmentError",
    "CrossDocumentError", "PlanError", "QueryError", "StorageError",
    "WorkloadError", "BudgetExceeded", "AdmissionRejected",
]
