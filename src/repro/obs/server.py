"""A live metrics + query-serving endpoint over one
:class:`~repro.obs.Observability`.

:class:`MetricsServer` runs a stdlib :class:`ThreadingHTTPServer` on a
daemon thread and serves the handle's current state:

``GET /metrics``
    Prometheus text exposition (format 0.0.4) of the metrics registry —
    point a Prometheus scrape job straight at it.
``GET /healthz``
    ``ok`` (liveness probe) — ``degraded`` while the
    ``repro_exec_degraded`` gauge is set, ``breaker-open`` while the
    query circuit breaker is open (both still HTTP 200: the server
    keeps answering), and ``draining`` with HTTP 503 once shutdown has
    begun.
``GET /varz``
    The whole registry as JSON, plus server uptime, the degraded flag,
    query-log counts and (with a collection attached) the guard-rail
    state: queue depth, in-flight count, breaker state.
``GET /slow``
    The retained slow-query records as a JSON array (empty without a
    query log).
``GET /timeseries?name=&window=``
    Ring-buffer time series from an attached
    :class:`~repro.obs.MetricsHistory` sampler: without ``name`` the
    series catalog, with it every label set of that metric as
    point-by-point JSON (counter deltas/rates, gauge values, histogram
    quantiles per interval) plus a trailing-``window``-seconds
    aggregate.  404 when no sampler is attached.
``GET /alertz``
    Machine-readable SLO alert states from an attached
    :class:`~repro.obs.SLOMonitor` — per-objective fast/slow burn
    rates, ok/warning/critical state and hysteresis bookkeeping.  Any
    critical alert also flips ``/healthz`` to ``degraded``.
``POST /query``
    Evaluate one query against the attached
    :class:`~repro.collection.DocumentCollection`, behind the full
    guard-rail stack (see :class:`QueryGuardrails`): bounded admission
    queue (HTTP 429 when full), concurrency semaphore (503 on wait
    timeout), pre-admission cost screen (422), per-request deadlines
    propagated into a :class:`~repro.guard.QueryBudget` (422 on budget
    abort), and a circuit breaker that fails fast (503) after
    consecutive execution failures.  Load-shedding responses carry
    ``Retry-After``.
``POST /ingest``
    Add/replace/remove documents on a *writable* collection
    (:class:`~repro.collection.MutableDocumentCollection`, served via
    ``repro-search serve --index DIR --writable``): the batch is
    validated whole, applied through the WAL under a single-writer
    lock, and (by default) committed as one new epoch before the
    response returns.  Writes share the admission queue and
    concurrency slots with queries; read-only collections answer 403.
    In-flight queries are unaffected — each pinned its epoch at
    admission.

Unsupported methods get HTTP 405 with an ``Allow`` header rather than
a hang or a 404 fallthrough; unknown paths get 404.

Reads are snapshots: each request renders the registry at that moment,
so a long-running search can be watched live::

    obs = Observability(query_log=QueryLog(slow_query_ms=50))
    with MetricsServer(obs, collection=collection) as server:
        print(f"query endpoint at {server.url}/query")

The CLI wires this up via ``repro-search … --metrics-port N`` (serve
while the search runs) and ``repro-search serve`` (serve queries over
HTTP and stdin).  Only stdlib is used; there is no dependency on a
Prometheus client library.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading
import time
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Mapping, Optional
from urllib.parse import parse_qs, urlsplit

from ..core.query import Query
from ..core.queryparser import parse_filter, parse_query
from ..core.strategies import Strategy
from ..errors import (AdmissionRejected, BudgetExceeded, ExecutionError,
                      ReproError)
from ..guard.admission import AdmissionPolicy
from ..guard.breaker import BREAKER_STATE_CODES, OPEN, CircuitBreaker
from ..guard.budget import QueryBudget
from . import (EXEC_DEGRADED, GUARD_ADMITTED, GUARD_BREAKER_STATE,
               GUARD_REJECTED, GUARD_SHED, PROCESS_RSS, Observability)
from .history import MetricsHistory
from .slo import (CRITICAL, FEEDBACK_TIGHTEN_ADMISSION,
                  FEEDBACK_TRIP_BREAKERS, AlertState, SLOMonitor)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..collection.collection import DocumentCollection

__all__ = ["MetricsServer", "QueryGuardrails", "process_stats"]


def process_stats() -> dict:
    """Resource facts about this process for ``/varz``.

    Linux reads ``/proc/self`` (RSS from ``VmRSS``, FD count from
    ``/proc/self/fd``); elsewhere RSS degrades to ``resource``'s
    ``ru_maxrss`` and missing facts are ``None`` rather than errors.

    ``ru_maxrss`` is a lifetime *peak*, not the current resident set
    (and on darwin it is reported in bytes, not KiB), so ``rss_kind``
    labels what ``rss_bytes`` actually is: ``"current"`` (procfs),
    ``"peak"`` (rusage fallback) or ``None`` when unavailable.
    Consumers that plot live memory — the RSS gauge, the time-series
    sampler — must skip peak values: a flat lifetime high-water mark
    masquerading as live memory is worse than no series at all.
    """
    rss = None
    rss_kind = None
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    rss = int(line.split()[1]) * 1024
                    rss_kind = "current"
                    break
    except (OSError, ValueError, IndexError):
        pass
    if rss is None:  # pragma: no cover - non-Linux fallback
        try:
            import resource
            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            rss = peak if sys.platform == "darwin" else peak * 1024
            rss_kind = "peak"
        except Exception:
            rss = None
            rss_kind = None
    open_fds = None
    try:
        open_fds = len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-procfs platform
        pass
    return {"pid": os.getpid(),
            "rss_bytes": rss,
            "rss_kind": rss_kind,
            "open_fds": open_fds,
            "python": platform.python_version(),
            "platform": platform.platform()}

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Largest accepted ``POST /query`` body.
MAX_BODY_BYTES = 1 << 20


@dataclass(frozen=True)
class QueryGuardrails:
    """Serving-side guard-rail configuration for ``POST /query``.

    Parameters
    ----------
    max_concurrency:
        Queries evaluating at once; the rest wait on the semaphore.
    max_queue:
        Requests allowed to wait for a slot; beyond it the server
        sheds with HTTP 429.
    queue_timeout_s:
        Longest a queued request waits for a slot before shedding
        with HTTP 503.
    retry_after_s:
        ``Retry-After`` hint on every shed response.
    default_deadline_ms:
        Server-side wall-clock ceiling per query.  A request may ask
        for less but never more (the effective deadline is the
        minimum of the two).
    max_join_ops / max_live_fragments / max_candidates:
        Default per-query :class:`~repro.guard.QueryBudget` limits;
        ``max_join_ops`` may be tightened per request.
    admission:
        Optional :class:`~repro.guard.AdmissionPolicy`: cost-screen
        every query before evaluation (HTTP 422 on rejection).
    breaker_failures / breaker_reset_s:
        Circuit-breaker trip threshold and cooldown.
    strategy / kernel / workers / resilience / faults:
        Evaluation configuration forwarded to
        :meth:`DocumentCollection.search` (``faults`` exists for
        deterministic failure-injection tests).
    """

    max_concurrency: int = 4
    max_queue: int = 16
    queue_timeout_s: float = 2.0
    retry_after_s: float = 1.0
    default_deadline_ms: Optional[float] = None
    max_join_ops: Optional[int] = None
    max_live_fragments: Optional[int] = None
    max_candidates: Optional[int] = None
    admission: Optional[AdmissionPolicy] = None
    breaker_failures: int = 5
    breaker_reset_s: float = 30.0
    strategy: Strategy = Strategy.PUSHDOWN
    kernel: Optional[str] = None
    workers: Optional[int] = None
    resilience: object = None
    faults: object = None

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")


class _GuardState:
    """Mutable serving state: queue, semaphore, breaker, drain flag."""

    def __init__(self, rails: QueryGuardrails) -> None:
        self.rails = rails
        self.semaphore = threading.Semaphore(rails.max_concurrency)
        self.lock = threading.Lock()
        self.idle = threading.Condition(self.lock)
        self.queued = 0
        self.in_flight = 0
        self.draining = False
        # SLO feedback: < 1.0 scales the admission policy's max_cost
        # down while a burn-rate alert is critical.
        self.admission_scale = 1.0
        self.tightenings = 0
        self.breaker = CircuitBreaker(
            failure_threshold=rails.breaker_failures,
            reset_s=rails.breaker_reset_s)

    def try_enqueue(self) -> Optional[str]:
        """Join the admission queue; a string names the shed reason."""
        with self.lock:
            if self.draining:
                return "draining"
            if self.queued >= self.rails.max_queue:
                return "queue-full"
            self.queued += 1
            return None

    def acquire_slot(self) -> bool:
        """Wait (bounded) for an evaluation slot; leaves the queue."""
        acquired = self.semaphore.acquire(
            timeout=self.rails.queue_timeout_s)
        with self.lock:
            self.queued -= 1
            if acquired:
                self.in_flight += 1
        return acquired

    def release_slot(self) -> None:
        self.semaphore.release()
        with self.idle:
            self.in_flight -= 1
            self.idle.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting and wait for in-flight queries to finish."""
        with self.idle:
            self.draining = True
            return self.idle.wait_for(
                lambda: self.in_flight == 0 and self.queued == 0,
                timeout=timeout)

    def tighten_admission(self, factor: float = 0.5,
                          floor: float = 0.125) -> float:
        """Scale the admission cost ceiling down (SLO feedback on a
        critical burn-rate alert); returns the new scale."""
        with self.lock:
            self.admission_scale = max(floor,
                                       self.admission_scale * factor)
            self.tightenings += 1
            return self.admission_scale

    def relax_admission(self) -> None:
        """Restore the configured admission policy (alert cleared)."""
        with self.lock:
            self.admission_scale = 1.0

    def effective_admission(self) -> Optional[AdmissionPolicy]:
        """The configured admission policy with any SLO tightening
        applied (``None`` when no policy is configured)."""
        base = self.rails.admission
        with self.lock:
            scale = self.admission_scale
        if base is None or scale >= 1.0:
            return base
        return replace(base, max_cost=base.max_cost * scale)

    def snapshot(self) -> dict:
        with self.lock:
            return {"queued": self.queued,
                    "in_flight": self.in_flight,
                    "draining": self.draining,
                    "max_concurrency": self.rails.max_concurrency,
                    "max_queue": self.rails.max_queue,
                    "admission_scale": self.admission_scale,
                    "tightenings": self.tightenings,
                    "breaker": self.breaker.to_dict()}


def _parse_ingest(payload: Mapping) -> tuple[list, list[str], bool]:
    """Validate one ``POST /ingest`` body into (adds, removes, commit).

    ``{"documents": [{"name": ..., "xml": ...}, ...],
    "remove": [name, ...], "commit": true}`` — every document is parsed
    here, before any guarded resource or WAL byte is consumed, so a bad
    batch is rejected whole.
    """
    from ..xmltree.parser import parse
    if not isinstance(payload, Mapping):
        raise ReproError("request body must be a JSON object")
    specs = payload.get("documents", [])
    if not isinstance(specs, (list, tuple)):
        raise ReproError('"documents" must be a list')
    adds = []
    for spec in specs:
        if (not isinstance(spec, Mapping)
                or not isinstance(spec.get("name"), str)
                or not spec["name"]
                or not isinstance(spec.get("xml"), str)):
            raise ReproError('each document needs a non-empty "name" '
                             'and an "xml" string')
        adds.append((spec["name"], parse(spec["xml"],
                                         name=spec["name"])))
    removes = payload.get("remove", [])
    if isinstance(removes, str):
        removes = [removes]
    if not isinstance(removes, (list, tuple)) \
            or not all(isinstance(n, str) and n for n in removes):
        raise ReproError('"remove" must be a list of document names')
    commit = payload.get("commit", True)
    if not isinstance(commit, bool):
        raise ReproError('"commit" must be a boolean')
    if not adds and not removes:
        raise ReproError('nothing to ingest: provide "documents" '
                         'and/or "remove"')
    return adds, list(removes), commit


def _parse_request(payload: Mapping) -> tuple[Query, dict]:
    """Build the :class:`Query` (and options) of one request body.

    Accepts either ``{"query": "red pear [size<=3]"}`` (the CLI's
    textual form) or ``{"terms": [...], "filter": "size<=3"}``.
    """
    if not isinstance(payload, Mapping):
        raise ReproError("request body must be a JSON object")
    if "query" in payload:
        query = parse_query(str(payload["query"]))
    elif "terms" in payload:
        terms = payload["terms"]
        if (not isinstance(terms, (list, tuple))
                or not all(isinstance(t, str) for t in terms)):
            raise ReproError('"terms" must be a list of strings')
        predicate = None
        if payload.get("filter"):
            predicate = parse_filter(str(payload["filter"]))
        query = Query.of(*terms, predicate=predicate)
    else:
        raise ReproError('request needs "query" or "terms"')
    options = {}
    if payload.get("strategy"):
        options["strategy"] = Strategy.parse(str(payload["strategy"]))
    for key in ("deadline_ms", "max_join_ops", "limit"):
        if payload.get(key) is not None:
            value = payload[key]
            if not isinstance(value, (int, float)) or value <= 0:
                raise ReproError(f'"{key}" must be a positive number')
            options[key] = value
    if payload.get("offset") is not None:
        value = payload["offset"]
        if isinstance(value, bool) or not isinstance(value, int) \
                or value < 0:
            raise ReproError('"offset" must be a non-negative integer')
        options["offset"] = value
    if payload.get("stream") is not None:
        if not isinstance(payload["stream"], bool):
            raise ReproError('"stream" must be a boolean')
        options["stream"] = payload["stream"]
    return query, options


class _Handler(BaseHTTPRequestHandler):
    """Route tables for one :class:`MetricsServer`."""

    # Set per served request by ThreadingHTTPServer subclass below.
    server: "_ObsHTTPServer"

    protocol_version = "HTTP/1.1"

    GET_ROUTES = {"/metrics": "_get_metrics", "/healthz": "_get_healthz",
                  "/varz": "_get_varz", "/slow": "_get_slow",
                  "/timeseries": "_get_timeseries",
                  "/alertz": "_get_alertz",
                  "/debug/flightrecorder": "_get_flightrecorder"}
    #: Prefix-matched GET routes; the handler receives the path suffix.
    GET_PREFIX_ROUTES = {"/debug/trace/": "_get_trace"}
    POST_ROUTES = {"/query": "_post_query", "/ingest": "_post_ingest"}

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""

    # -- method dispatch ----------------------------------------------

    def _clean_path(self) -> str:
        return self.path.split("?", 1)[0].rstrip("/") or "/"

    def _allowed(self, path: str) -> str:
        methods = []
        if path in self.GET_ROUTES:
            methods.append("GET")
        if path in self.POST_ROUTES:
            methods.append("POST")
        return ", ".join(methods)

    def _route(self, method: str, table: Mapping[str, str]) -> None:
        path = self._clean_path()
        name = table.get(path)
        if name is not None:
            getattr(self, name)()
            return
        if method == "GET":
            for prefix, handler in self.GET_PREFIX_ROUTES.items():
                if path.startswith(prefix) and len(path) > len(prefix):
                    getattr(self, handler)(path[len(prefix):])
                    return
        allowed = self._allowed(path)
        if allowed:
            # Known path, wrong verb: 405 + Allow, never a fallthrough.
            self._reply(f"method {method} not allowed for {path}; "
                        f"allowed: {allowed}\n",
                        "text/plain; charset=utf-8", status=405,
                        headers={"Allow": allowed})
        else:
            self._reply(f"not found: {self.path!r}; try /metrics, "
                        f"/healthz, /varz, /slow, /timeseries, /alertz, "
                        f"/debug/flightrecorder, /debug/trace/<id>, "
                        f"POST /query or POST /ingest\n",
                        "text/plain; charset=utf-8", status=404)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET", self.GET_ROUTES)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._route("POST", self.POST_ROUTES)

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        self._route("PUT", {})

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._route("DELETE", {})

    def do_PATCH(self) -> None:  # noqa: N802 - http.server API
        self._route("PATCH", {})

    # -- GET endpoints ------------------------------------------------

    def _get_metrics(self) -> None:
        self.server.refresh_gauges()
        self._reply(self.server.obs.metrics.to_prometheus(),
                    PROMETHEUS_CONTENT_TYPE)

    def _get_healthz(self) -> None:
        guard = self.server.guard
        if guard is not None and guard.snapshot()["draining"]:
            self._reply("draining\n", "text/plain; charset=utf-8",
                        status=503)
            return
        if guard is not None and guard.breaker.state == OPEN:
            body = "breaker-open\n"
        elif self.server.degraded():
            body = "degraded\n"
        else:
            body = "ok\n"
        self._reply(body, "text/plain; charset=utf-8")

    def _get_varz(self) -> None:
        self._reply(json.dumps(self.server.varz(), indent=2,
                               sort_keys=True) + "\n",
                    "application/json")

    def _get_slow(self) -> None:
        records = []
        if self.server.obs.query_log is not None:
            records = [r.to_dict()
                       for r in self.server.obs.query_log.slow_queries()]
        self._reply(json.dumps(records, indent=2) + "\n",
                    "application/json")

    def _query_params(self) -> dict[str, str]:
        """The request's query-string parameters (last value wins)."""
        return {key: values[-1]
                for key, values in
                parse_qs(urlsplit(self.path).query).items()}

    def _get_timeseries(self) -> None:
        history = self.server.history
        if history is None:
            self._reply_json(
                {"error": "no-history",
                 "message": "no metrics history sampler is attached; "
                            "serve with --sample-interval"}, status=404)
            return
        params = self._query_params()
        window_s: Optional[float] = None
        if params.get("window"):
            try:
                window_s = float(params["window"])
                if window_s <= 0:
                    raise ValueError
            except ValueError:
                self._reply_json(
                    {"error": "bad-request",
                     "message": "window must be a positive number of "
                                "seconds"}, status=400)
                return
        self._reply_json(history.timeseries_doc(
            params.get("name") or None, window_s))

    def _get_alertz(self) -> None:
        slo = self.server.slo
        if slo is None:
            # 200, not 404: "no objectives configured" is a healthy
            # answer the ops console can render, not a routing error.
            self._reply_json({"enabled": False, "state": "ok",
                              "objectives": 0, "alerts": [],
                              "message": "no SLOs configured; serve "
                                         "with --slo"})
            return
        self._reply_json(slo.snapshot())

    def _get_flightrecorder(self) -> None:
        recorder = getattr(self.server.obs, "recorder", None)
        if recorder is None:
            self._reply_json(
                {"error": "no-recorder",
                 "message": "no flight recorder is attached; serve "
                            "with --profile-queries"}, status=404)
            return
        recorder.publish_calibration(self.server.obs.metrics)
        self._reply_json(recorder.snapshot())

    def _get_trace(self, trace_id: str) -> None:
        recorder = getattr(self.server.obs, "recorder", None)
        if recorder is None:
            self._reply_json(
                {"error": "no-recorder",
                 "message": "no flight recorder is attached; serve "
                            "with --profile-queries"}, status=404)
            return
        doc = recorder.chrome_trace(trace_id)
        if doc is None:
            self._reply_json(
                {"error": "unknown-trace",
                 "message": f"no retained trace {trace_id!r}; see "
                            f"/debug/flightrecorder for retained ids"},
                status=404)
            return
        # Chrome trace-event JSON: load in chrome://tracing or Perfetto.
        self._reply(json.dumps(doc, indent=2) + "\n", "application/json")

    # -- POST /query --------------------------------------------------

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._reply_json({"error": "bad-request",
                              "message": "missing or oversized body"},
                             status=413 if length > 0 else 411)
            return None
        return self.rfile.read(length)

    def _post_query(self) -> None:
        body = self._read_body()
        if body is None:
            return
        status, headers, doc = self.server.serve_query(body)
        lines = (doc.pop("_stream", None)
                 if isinstance(doc, dict) else None)
        if lines is not None:
            self._reply_ndjson(lines, status=status, headers=headers)
        else:
            self._reply_json(doc, status=status, headers=headers)

    def _post_ingest(self) -> None:
        body = self._read_body()
        if body is None:
            return
        status, headers, doc = self.server.serve_ingest(body)
        self._reply_json(doc, status=status, headers=headers)

    # -- plumbing -----------------------------------------------------

    def _reply_ndjson(self, lines, status: int = 200,
                      headers: Optional[Mapping[str, str]] = None
                      ) -> None:
        """Send an iterable of JSON documents as chunked NDJSON.

        HTTP/1.1 chunked transfer framing, one JSON document per line;
        each document is flushed as its own chunk so clients can render
        hits before the response completes.
        """
        self.send_response(status)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        for doc in lines:
            data = (json.dumps(doc, sort_keys=True) + "\n"
                    ).encode("utf-8")
            self.wfile.write(b"%x\r\n" % len(data) + data + b"\r\n")
            self.wfile.flush()
        self.wfile.write(b"0\r\n\r\n")

    def _reply_json(self, doc: dict, status: int = 200,
                    headers: Optional[Mapping[str, str]] = None) -> None:
        self._reply(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    "application/json", status=status, headers=headers)

    def _reply(self, body: str, content_type: str, status: int = 200,
               headers: Optional[Mapping[str, str]] = None) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)


class _ObsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the obs handle + guard state."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], obs: Observability,
                 collection: Optional["DocumentCollection"] = None,
                 guardrails: Optional[QueryGuardrails] = None,
                 history: Optional[MetricsHistory] = None,
                 slo: Optional[SLOMonitor] = None,
                 slo_feedback: bool = False) -> None:
        super().__init__(address, _Handler)
        self.obs = obs
        self.collection = collection
        self.guard: Optional[_GuardState] = None
        if collection is not None:
            self.guard = _GuardState(guardrails if guardrails is not None
                                     else QueryGuardrails())
        self.history = history
        self.slo = slo
        self.slo_feedback = slo_feedback
        # Writes are single-writer: POST /ingest batches validate and
        # apply under this lock (queries never take it — they pin
        # epochs instead).
        self.ingest_lock = threading.Lock()
        if slo is not None:
            slo.attach()
            if slo_feedback:
                slo.add_listener(self._on_slo_transition)
        self.started = time.time()

    def degraded(self) -> bool:
        """Whether the last parallel run needed the serial fallback.

        Reads the ``repro_exec_degraded`` gauge without creating it;
        a handle that never ran a pool reports healthy.  A sharded
        collection with failed shards or tripped per-shard breakers
        reports degraded, and so does any critical SLO alert — the
        burn-rate engine exists precisely to catch trouble the
        point-in-time flags miss.
        """
        gauge = self.obs.metrics.get(EXEC_DEGRADED)
        if gauge is not None and gauge.value:
            return True
        if self.slo is not None and self.slo.critical:
            return True
        return bool(getattr(self.collection, "degraded", False))

    def _on_slo_transition(self, state: AlertState,
                           previous: str) -> None:
        """Close the observe → decide loop on alert transitions.

        Entering critical tightens admission (halves the cost ceiling)
        and pre-trips breakers of shards already showing failures;
        leaving critical — once *no* objective is critical — restores
        the configured admission policy.  Tripped shard breakers heal
        through their own half-open probes; feedback never forces them
        closed.
        """
        objective = state.objective
        actions = objective.feedback or (FEEDBACK_TIGHTEN_ADMISSION,
                                         FEEDBACK_TRIP_BREAKERS)
        if state.state == CRITICAL:
            if (FEEDBACK_TIGHTEN_ADMISSION in actions
                    and self.guard is not None):
                self.guard.tighten_admission()
            if FEEDBACK_TRIP_BREAKERS in actions:
                router = getattr(self.collection, "router", None)
                if router is not None:
                    router.pretrip_suspect_shards()
        elif previous == CRITICAL and self.slo is not None \
                and not self.slo.critical:
            if self.guard is not None:
                self.guard.relax_admission()

    def refresh_gauges(self) -> None:
        """Recompute point-in-time gauges before a metrics export.

        Sets the process RSS gauge and, when a flight recorder is
        attached, republishes the per-strategy calibration ratios —
        both are snapshots, not counters, so they are computed on
        read rather than on the query hot path.
        """
        stats = process_stats()
        # Only a *current* RSS becomes a gauge: the rusage fallback is
        # a lifetime peak, and a flat peak plotted as live memory by
        # the time-series sampler would be a lie (it stays in /varz,
        # labelled rss_kind="peak").
        if (stats.get("rss_bytes") is not None
                and stats.get("rss_kind") == "current"):
            self.obs.metrics.gauge(
                PROCESS_RSS,
                "Resident-set size of the serving process."
            ).set(stats["rss_bytes"])
        recorder = getattr(self.obs, "recorder", None)
        if recorder is not None:
            recorder.publish_calibration(self.obs.metrics)

    def varz(self) -> dict:
        """The ``/varz`` document: uptime + registry + serving state."""
        obs = self.obs
        self.refresh_gauges()
        doc: dict = {
            "uptime_seconds": round(time.time() - self.started, 3),
            "degraded": self.degraded(),
            "metrics": obs.metrics.to_json(),
            "process": process_stats(),
        }
        if obs.query_log is not None:
            records = obs.query_log.records
            doc["query_log"] = {
                "records": len(records),
                "max_records": obs.query_log.max_records,
                "evicted": obs.query_log.evicted,
                "slow": sum(1 for r in records if r.slow),
                "slow_query_ms": obs.query_log.slow_query_ms,
            }
        recorder = getattr(obs, "recorder", None)
        if recorder is not None:
            doc["flight_recorder"] = {
                "profiles": len(recorder),
                "recorded": recorder.recorded,
                "evicted": recorder.evicted,
                "traces": len(recorder.trace_ids()),
                "calibration": recorder.publish_calibration(obs.metrics),
            }
        if self.guard is not None:
            self._publish_breaker()
            doc["guard"] = self.guard.snapshot()
        if self.history is not None:
            doc["history"] = self.history.stats()
        if self.slo is not None:
            doc["slo"] = self.slo.snapshot()
        shard_stats = getattr(self.collection, "shard_stats", None)
        if shard_stats is not None:
            # Sharded collections report attach health, bytes mapped,
            # router fan-out and per-shard breaker states.
            doc["shards"] = shard_stats()
        mutable = getattr(self.collection, "mutable", None)
        if mutable is not None:
            # Writable serves surface the epoch state head-on: what a
            # new query pins, what old pins still hold alive, and how
            # much WAL is waiting for a commit.
            doc["epochs"] = {
                "current": mutable.epoch,
                "pending_wal_records": mutable.pending_records,
                "pinned": doc["shards"].get("pinned_epochs", {}),
                "published": doc["shards"].get("published_epochs", []),
            }
        return doc

    # -- guard metric helpers -----------------------------------------

    def _count_shed(self, reason: str) -> None:
        self.obs.metrics.counter(
            GUARD_SHED, "Requests shed by the serving guard rails.",
            labels={"reason": reason}).inc()

    def _count_rejected(self, reason: str) -> None:
        self.obs.metrics.counter(
            GUARD_REJECTED, "Queries rejected before evaluation.",
            labels={"reason": reason}).inc()

    def _count_admitted(self) -> None:
        self.obs.metrics.counter(
            GUARD_ADMITTED, "Queries admitted and evaluated.").inc()

    def _publish_breaker(self) -> None:
        if self.guard is not None:
            self.obs.metrics.gauge(
                GUARD_BREAKER_STATE,
                "Query circuit-breaker state "
                "(0 closed, 1 half-open, 2 open)."
            ).set(BREAKER_STATE_CODES[self.guard.breaker.state])

    # -- the guarded query path ---------------------------------------

    def serve_query(self, body: bytes
                    ) -> tuple[int, Optional[dict], dict]:
        """Run one ``POST /query`` request through the guard stack.

        Returns ``(status, extra headers, response document)``.
        Factored off the handler so tests can drive the whole
        admission pipeline without a socket.
        """
        guard = self.guard
        if guard is None:
            return 503, None, {
                "error": "no-collection",
                "message": "no document collection is attached; start "
                           "the server with a collection to serve "
                           "queries"}
        rails = guard.rails
        retry = {"Retry-After": f"{rails.retry_after_s:g}"}

        # 1. Parse (before consuming any guarded resource).
        try:
            payload = json.loads(body.decode("utf-8"))
            query, options = _parse_request(payload)
        except (ValueError, ReproError) as exc:
            self._count_rejected("parse")
            return 400, None, {"error": "bad-request",
                               "message": str(exc)}

        # 2. Bounded admission queue.
        shed = guard.try_enqueue()
        if shed is not None:
            self._count_shed(shed)
            status = 503 if shed == "draining" else 429
            return status, retry, {
                "error": "shed", "reason": shed,
                "message": f"request shed ({shed}); retry later"}

        # 3. Concurrency slot (bounded wait).
        if not guard.acquire_slot():
            self._count_shed("overload")
            return 503, retry, {
                "error": "shed", "reason": "overload",
                "message": f"no evaluation slot within "
                           f"{rails.queue_timeout_s:g}s; retry later"}
        try:
            return self._evaluate_admitted(guard, query, options, retry)
        finally:
            guard.release_slot()

    def serve_ingest(self, body: bytes
                     ) -> tuple[int, Optional[dict], dict]:
        """Run one ``POST /ingest`` request through the guard stack.

        Writes share the admission queue and concurrency slots with
        queries (a write burst cannot starve the query path past the
        configured bounds) and serialise on the ingest lock.  The
        batch is validated whole before the first WAL byte; with
        ``commit`` (default) the new epoch is durable before the
        response, and in-flight queries keep serving the epoch they
        pinned.
        """
        guard = self.guard
        if guard is None:
            return 503, None, {
                "error": "no-collection",
                "message": "no document collection is attached; start "
                           "the server with a collection to ingest"}
        writable = getattr(self.collection, "mutable", None)
        if writable is None:
            return 403, None, {
                "error": "read-only",
                "message": "this collection is not writable; serve a "
                           "mutable index ('repro-search serve "
                           "--index DIR --writable')"}
        rails = guard.rails
        retry = {"Retry-After": f"{rails.retry_after_s:g}"}

        # 1. Parse + validate the whole batch (no resources consumed).
        try:
            payload = json.loads(body.decode("utf-8"))
            adds, removes, commit = _parse_ingest(payload)
        except (ValueError, ReproError) as exc:
            self._count_rejected("parse")
            return 400, None, {"error": "bad-request",
                               "message": str(exc)}

        # 2/3. Same bounded queue + slots as queries.
        shed = guard.try_enqueue()
        if shed is not None:
            self._count_shed(shed)
            status = 503 if shed == "draining" else 429
            return status, retry, {
                "error": "shed", "reason": shed,
                "message": f"request shed ({shed}); retry later"}
        if not guard.acquire_slot():
            self._count_shed("overload")
            return 503, retry, {
                "error": "shed", "reason": "overload",
                "message": f"no evaluation slot within "
                           f"{rails.queue_timeout_s:g}s; retry later"}
        started = time.perf_counter()
        try:
            with self.ingest_lock:
                adding = {name for name, _ in adds}
                for name in removes:
                    if name not in adding and name not in self.collection:
                        self._count_rejected("unknown-document")
                        return 404, None, {
                            "error": "unknown-document", "name": name,
                            "message": f"cannot remove unknown "
                                       f"document {name!r}"}
                try:
                    for name, document in adds:
                        self.collection.add(document, name,
                                            commit=False)
                    for name in removes:
                        self.collection.remove(name, commit=False)
                    epoch = (self.collection.commit() if commit
                             else None)
                except ReproError as exc:
                    guard.breaker.record_failure()
                    self._publish_breaker()
                    return 500, None, {"error": "ingest-failed",
                                       "message": str(exc)}
        finally:
            guard.release_slot()
        guard.breaker.record_success()
        self._publish_breaker()
        self._count_admitted()
        return 200, None, {
            "added": sorted(name for name, _ in adds),
            "removed": sorted(removes),
            "committed": commit,
            "epoch": epoch if commit else writable.epoch,
            "pending_wal_records": writable.pending_records,
            "elapsed_ms": round((time.perf_counter() - started) * 1000,
                                3),
        }

    def _evaluate_admitted(self, guard: _GuardState, query: Query,
                           options: dict, retry: dict
                           ) -> tuple[int, Optional[dict], dict]:
        rails = guard.rails
        strategy = options.get("strategy", rails.strategy)

        # 4. Pre-admission cost screen (a client-side error: it does
        #    not consume a breaker probe or count as a failure).  The
        #    effective policy may be tighter than the configured one
        #    while an SLO alert is critical.
        admission = guard.effective_admission()
        if admission is not None:
            try:
                decision = self.collection.screen(
                    admission, query, strategy)
                decision.raise_if_rejected()
            except AdmissionRejected as exc:
                self._count_rejected("admission")
                return 422, None, exc.to_dict()
            strategy = decision.strategy

        # 5. Circuit breaker — checked last so probes are spent on
        #    real evaluation attempts only.
        if not guard.breaker.allow():
            self._publish_breaker()
            self._count_shed("breaker-open")
            return 503, retry, {
                "error": "shed", "reason": "breaker-open",
                "message": "circuit breaker is open after repeated "
                           "failures; retry later"}

        # 6. Per-request budget: the request may tighten the server's
        #    deadline/join ceiling, never loosen them.
        deadline_ms = _min_optional(options.get("deadline_ms"),
                                    rails.default_deadline_ms)
        max_join_ops = _min_optional(options.get("max_join_ops"),
                                     rails.max_join_ops)
        budget = None
        if any(v is not None for v in (
                deadline_ms, max_join_ops, rails.max_live_fragments,
                rails.max_candidates)):
            budget = QueryBudget(
                deadline_s=(deadline_ms / 1000.0
                            if deadline_ms is not None else None),
                max_join_ops=(int(max_join_ops)
                              if max_join_ops is not None else None),
                max_live_fragments=rails.max_live_fragments,
                max_candidates=rails.max_candidates)

        limit = int(options.get("limit", 50))
        offset = int(options.get("offset", 0))
        stream = bool(options.get("stream"))
        started = time.perf_counter()
        try:
            if stream:
                # The streaming path materialises exactly one page of
                # hits: evaluation work is bounded by ``offset + limit``
                # (adaptive β rounds under the hood), not by the answer
                # set.  Iteration happens here, while the concurrency
                # slot is held, so the guard stack sees the work.
                page_hits = list(self.collection.search(
                    query, strategy=strategy, obs=self.obs,
                    workers=rails.workers, kernel=rails.kernel,
                    resilience=rails.resilience, faults=rails.faults,
                    budget=budget, stream=True, limit=offset + limit))
            else:
                result = self.collection.search(
                    query, strategy=strategy, obs=self.obs,
                    workers=rails.workers, kernel=rails.kernel,
                    resilience=rails.resilience, faults=rails.faults,
                    budget=budget)
        except BudgetExceeded as exc:
            # The collection layer already counted
            # repro_guard_budget_exceeded_total; only the breaker and
            # the response are the server's business here.
            guard.breaker.record_failure()
            self._publish_breaker()
            return 422, None, exc.to_dict()
        except (ExecutionError, ReproError) as exc:
            guard.breaker.record_failure()
            self._publish_breaker()
            return 500, None, {"error": "execution-failed",
                               "message": str(exc)}
        guard.breaker.record_success()
        self._publish_breaker()
        self._count_admitted()
        elapsed = time.perf_counter() - started
        if stream:
            page = page_hits[offset:offset + limit]
            exhausted = len(page_hits) < offset + limit
            return 200, None, {"_stream": self._stream_lines(
                page, strategy, offset, limit, exhausted, elapsed)}
        hits = result.hits
        page = hits[offset:offset + limit]
        next_offset = offset + len(page)
        return 200, None, {
            "answers": len(result),
            "returned": len(page),
            "offset": offset,
            "limit": limit,
            "next_offset": (next_offset if next_offset < len(hits)
                            else None),
            "elapsed_ms": round(elapsed * 1000, 3),
            "strategy": strategy.value,
            "matched_documents": result.matched_documents,
            "hits": [{"document": hit.document_name,
                      "nodes": sorted(hit.fragment.nodes),
                      "size": hit.fragment.size}
                     for hit in page],
        }

    @staticmethod
    def _stream_lines(page, strategy, offset: int, limit: int,
                      exhausted: bool, elapsed: float):
        """NDJSON line documents for one streamed ``/query`` page.

        One meta line, one line per hit, one trailing summary line —
        the shape a client needs to render results incrementally.
        """
        yield {"stream": True, "strategy": strategy.value,
               "offset": offset, "limit": limit}
        for hit in page:
            yield {"document": hit.document_name,
                   "nodes": sorted(hit.fragment.nodes),
                   "size": hit.fragment.size}
        yield {"returned": len(page),
               "next_offset": (None if exhausted
                               else offset + limit),
               "elapsed_ms": round(elapsed * 1000, 3)}


def _min_optional(a: Optional[float],
                  b: Optional[float]) -> Optional[float]:
    """Minimum of two optional ceilings (``None`` = unlimited)."""
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


class MetricsServer:
    """Serve one observability handle's state — and, with a collection
    attached, queries — over HTTP.

    Parameters
    ----------
    obs:
        The live handle to expose.  Serving :data:`~repro.obs.NOOP`
        raises ``ValueError`` — a disabled handle records nothing, so
        the endpoint would lie.
    host:
        Bind address; loopback by default (the endpoint is diagnostic,
        not hardened).
    port:
        TCP port; ``0`` (default) picks a free one — read it back from
        :attr:`port` after :meth:`start`.
    collection:
        Optional :class:`~repro.collection.DocumentCollection`;
        enables ``POST /query`` behind the guard rails.
    guardrails:
        Serving configuration (:class:`QueryGuardrails`); defaults
        apply when a collection is given without one.
    history:
        Optional :class:`~repro.obs.MetricsHistory`; enables
        ``GET /timeseries``.  If its sampler thread is not already
        running, :meth:`start` starts it and :meth:`stop` stops it
        (a sampler the caller started stays the caller's).
    slo:
        Optional :class:`~repro.obs.SLOMonitor`; enables
        ``GET /alertz`` and folds critical alerts into ``/healthz``.
        The monitor is attached to the history sampler so objectives
        re-evaluate after every sample.
    slo_feedback:
        When true, critical alerts act: admission tightens (max_cost
        halves, floor 1/8) and suspect shard breakers pre-trip;
        admission restores once no objective is critical.
    """

    def __init__(self, obs: Observability, host: str = "127.0.0.1",
                 port: int = 0,
                 collection: Optional["DocumentCollection"] = None,
                 guardrails: Optional[QueryGuardrails] = None,
                 history: Optional[MetricsHistory] = None,
                 slo: Optional[SLOMonitor] = None,
                 slo_feedback: bool = False) -> None:
        if not obs.enabled:
            raise ValueError("cannot serve a disabled (NOOP) "
                             "observability handle")
        if slo is not None and history is not None \
                and slo.history is not history:
            raise ValueError("the SLO monitor must evaluate the same "
                             "history the server samples")
        self._obs = obs
        self._host = host
        self._requested_port = port
        self._collection = collection
        self._guardrails = guardrails
        self._history = history
        self._slo = slo
        self._slo_feedback = slo_feedback
        self._owns_history = False
        self._server: Optional[_ObsHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsServer":
        """Bind and serve on a daemon thread; returns ``self``."""
        if self._server is not None:
            return self
        self._server = _ObsHTTPServer((self._host, self._requested_port),
                                      self._obs,
                                      collection=self._collection,
                                      guardrails=self._guardrails,
                                      history=self._history,
                                      slo=self._slo,
                                      slo_feedback=self._slo_feedback)
        if self._history is not None and not self._history.running:
            self._history.start()
            self._owns_history = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-metrics:{self.port}", daemon=True)
        self._thread.start()
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful drain: shed new queries, wait for in-flight ones.

        Returns ``True`` once the server is idle (always ``True`` when
        no collection is attached).  The server keeps answering GET
        endpoints while draining; ``/healthz`` reports ``draining``
        with HTTP 503 so load balancers stop routing to it.
        """
        if self._server is None or self._server.guard is None:
            return True
        return self._server.guard.drain(timeout=timeout)

    def stop(self, drain_timeout: Optional[float] = 5.0) -> None:
        """Drain in-flight queries, then shut down (idempotent)."""
        if self._server is None:
            return
        self.drain(timeout=drain_timeout)
        if self._owns_history and self._history is not None:
            self._history.stop()
            self._owns_history = False
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def history(self) -> Optional[MetricsHistory]:
        """The attached time-series sampler, if any."""
        return self._history

    @property
    def slo(self) -> Optional[SLOMonitor]:
        """The attached SLO monitor, if any."""
        return self._slo

    def varz(self) -> dict:
        """The live ``/varz`` document, without a socket round-trip
        (the in-process ops console source reads this)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.varz()

    @property
    def port(self) -> int:
        """The bound port (the OS-assigned one when constructed with 0)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server, e.g. ``http://127.0.0.1:9464``."""
        return f"http://{self._host}:{self.port}"

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = (f"url={self.url!r}" if self.running else "stopped")
        return f"MetricsServer({state})"
