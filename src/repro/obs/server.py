"""A live metrics endpoint over one :class:`~repro.obs.Observability`.

:class:`MetricsServer` runs a stdlib :class:`ThreadingHTTPServer` on a
daemon thread and serves the handle's current state:

``/metrics``
    Prometheus text exposition (format 0.0.4) of the metrics registry —
    point a Prometheus scrape job straight at it.
``/healthz``
    ``ok`` (liveness probe) — or ``degraded`` while the
    ``repro_exec_degraded`` gauge is set, i.e. the last parallel run
    had to fall back to in-process serial evaluation (still HTTP 200:
    degraded mode keeps answering).
``/varz``
    The whole registry as JSON, plus server uptime, the degraded flag
    and query-log counts.
``/slow``
    The retained slow-query records as a JSON array (empty without a
    query log).

Reads are snapshots: each request renders the registry at that moment,
so a long-running search can be watched live::

    obs = Observability(query_log=QueryLog(slow_query_ms=50))
    with MetricsServer(obs) as server:
        print(f"metrics at {server.url}/metrics")
        collection.search(query, obs=obs, workers=4)

The CLI wires this up via ``repro-search … --metrics-port N`` (serve
while the search runs) and ``repro-search serve`` (serve while reading
queries from stdin).  Only stdlib is used; there is no dependency on a
Prometheus client library.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from . import EXEC_DEGRADED, Observability

__all__ = ["MetricsServer"]

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Route table for one :class:`MetricsServer`."""

    # Set per served request by ThreadingHTTPServer subclass below.
    server: "_ObsHTTPServer"

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        obs = self.server.obs
        if path == "/metrics":
            self._reply(obs.metrics.to_prometheus(),
                        PROMETHEUS_CONTENT_TYPE)
        elif path == "/healthz":
            body = ("degraded\n" if self.server.degraded() else "ok\n")
            self._reply(body, "text/plain; charset=utf-8")
        elif path == "/varz":
            self._reply(json.dumps(self.server.varz(), indent=2,
                                   sort_keys=True) + "\n",
                        "application/json")
        elif path == "/slow":
            records = []
            if obs.query_log is not None:
                records = [r.to_dict()
                           for r in obs.query_log.slow_queries()]
            self._reply(json.dumps(records, indent=2) + "\n",
                        "application/json")
        else:
            body = (f"not found: {self.path!r}; try /metrics, /healthz,"
                    f" /varz or /slow\n")
            self._reply(body, "text/plain; charset=utf-8", status=404)

    def _reply(self, body: str, content_type: str,
               status: int = 200) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class _ObsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the observability handle."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 obs: Observability) -> None:
        super().__init__(address, _Handler)
        self.obs = obs
        self.started = time.time()

    def degraded(self) -> bool:
        """Whether the last parallel run needed the serial fallback.

        Reads the ``repro_exec_degraded`` gauge without creating it;
        a handle that never ran a pool reports healthy.
        """
        gauge = self.obs.metrics.get(EXEC_DEGRADED)
        return bool(gauge is not None and gauge.value)

    def varz(self) -> dict:
        """The ``/varz`` document: uptime + registry + query-log state."""
        obs = self.obs
        doc: dict = {
            "uptime_seconds": round(time.time() - self.started, 3),
            "degraded": self.degraded(),
            "metrics": obs.metrics.to_json(),
        }
        if obs.query_log is not None:
            records = obs.query_log.records
            doc["query_log"] = {
                "records": len(records),
                "slow": sum(1 for r in records if r.slow),
                "slow_query_ms": obs.query_log.slow_query_ms,
            }
        return doc


class MetricsServer:
    """Serve one observability handle's state over HTTP.

    Parameters
    ----------
    obs:
        The live handle to expose.  Serving :data:`~repro.obs.NOOP`
        raises ``ValueError`` — a disabled handle records nothing, so
        the endpoint would lie.
    host:
        Bind address; loopback by default (the endpoint is diagnostic,
        not hardened).
    port:
        TCP port; ``0`` (default) picks a free one — read it back from
        :attr:`port` after :meth:`start`.
    """

    def __init__(self, obs: Observability, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        if not obs.enabled:
            raise ValueError("cannot serve a disabled (NOOP) "
                             "observability handle")
        self._obs = obs
        self._host = host
        self._requested_port = port
        self._server: Optional[_ObsHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsServer":
        """Bind and serve on a daemon thread; returns ``self``."""
        if self._server is not None:
            return self
        self._server = _ObsHTTPServer((self._host, self._requested_port),
                                      self._obs)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-metrics:{self.port}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The bound port (the OS-assigned one when constructed with 0)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server, e.g. ``http://127.0.0.1:9464``."""
        return f"http://{self._host}:{self.port}"

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = (f"url={self.url!r}" if self.running else "stopped")
        return f"MetricsServer({state})"
