"""Metrics time series: a background sampler over one registry
(``repro.obs.history``).

The metrics registry answers "what is true *now*"; nothing in the
point-in-time layer answers "is p99 degrading over the last five
minutes?".  :class:`MetricsHistory` closes that gap with a bounded
temporal store:

* a **sampler** (daemon thread, or :meth:`~MetricsHistory.sample_once`
  driven by tests) snapshots the registry every ``interval_s`` seconds
  and folds the *movement* since the previous sample into per-series
  ring buffers — memory is O(series × capacity) by construction, never
  O(traffic);
* **counters** are stored as per-interval deltas (and derived rates),
  so a trailing-window QPS is one sum, and process restarts (value
  going backwards) are detected and treated as a fresh baseline;
* **gauges** are stored as last-value samples;
* **histograms** are folded into mergeable :class:`QuantileSketch`
  summaries — one small sketch per interval — so p50/p95/p99 over an
  *arbitrary trailing window* is a merge of the window's sketches, with
  no raw samples retained anywhere.

Consumers: the ``GET /timeseries`` endpoint and the ``repro-search
top`` console (:mod:`repro.obs.console`) read series for dashboards;
the SLO engine (:mod:`repro.obs.slo`) registers a sampler listener and
evaluates burn rates after every sample.

Thread safety: the sampler snapshots the registry through its
(lock-guarded) ``to_json`` export, then folds under one history lock;
readers (``window`` / ``series`` / ``timeseries_doc``) copy under the
same lock, so HTTP server threads can render series while the sampler
folds and query threads keep writing the registry.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Iterable, Mapping, Optional, Sequence

from .metrics import MetricsRegistry

__all__ = ["QuantileSketch", "MetricsHistory",
           "HISTORY_SAMPLES", "HISTORY_SERIES",
           "DEFAULT_QUANTILES"]

#: Counter: samples the history sampler has folded (self-reported into
#: the sampled registry, so the sampler's own cadence is a series too).
HISTORY_SAMPLES = "repro_history_samples_total"
#: Gauge: time series currently retained by the history store.
HISTORY_SERIES = "repro_history_series"

#: Quantile points reported by default for histogram series.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


class QuantileSketch:
    """A mergeable weighted quantile summary (GK-style compaction).

    The summary is a sorted list of ``(value, exact, spread, delta)``
    entries — the Greenwald–Khanna ``g``/``Δ`` bookkeeping, split so
    point masses stay recognisable: ``exact`` counts observations at
    precisely the representative value, ``spread`` counts folded
    observations strictly below it, and ``delta`` bounds the rank
    ambiguity the entry inherited from its surroundings (mass of
    *later* entries that may lie at or below this value).  Weights
    (``exact + spread``) always sum to ``n``, and each entry
    guarantees ``rank(value) ∈ [rmin, rmin + delta]`` with ``rmin``
    the prefix weight sum — the invariant every operation preserves:

    * **insert** gives a fresh value ``delta = spread + delta`` of its
      right neighbour (the neighbour's below-value mass may sit on
      either side of the newcomer);
    * **fold** (compress) moves the left entry's whole weight into the
      right entry's ``spread``, and is admitted only while the merged
      ``spread + delta`` stays within ``epsilon * n``;
    * **merge** interleaves two summaries, coalescing equal values
      (deltas add) and charging each unmatched entry the other
      summary's next-greater ``spread + delta`` — the classic
      mergeable-GK penalty, so merged bounds add instead of
      compounding.

    Bucket-fed sketches (:meth:`observe_buckets`, the
    :class:`MetricsHistory` path) have a *small, fixed* value domain —
    one representative per histogram bucket — so duplicate coalescing
    keeps them exact (``rank_error_bound == epsilon`` with zero spent
    budget) and quantile accuracy is dominated by bucket resolution,
    as with PromQL's ``histogram_quantile``.  High-cardinality raw
    streams may exhaust the budget before reaching the memory cap; the
    sketch then enforces the cap anyway and *reports* the looser bound
    through :attr:`rank_error_bound` rather than pretending to an
    ``epsilon`` it no longer meets.

    When fed from histogram bucket deltas (:meth:`observe_buckets`)
    the inserted values are bucket representatives — the midpoint of
    each finite bucket and the last finite bound for the ``+Inf``
    tail — so reported quantiles are additionally bounded by the
    histogram's bucket resolution, exactly like PromQL's
    ``histogram_quantile``.
    """

    __slots__ = ("epsilon", "_entries", "_count")

    def __init__(self, epsilon: float = 0.005) -> None:
        if not 0.0 < epsilon < 0.5:
            raise ValueError("epsilon must be in (0, 0.5)")
        self.epsilon = epsilon
        # sorted [value, exact, spread, delta]; exact = mass at the
        # value, spread = folded mass strictly below it, delta = rank
        # ambiguity inherited from neighbouring entries.
        self._entries: list[list[float]] = []
        self._count: float = 0.0

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def insert(self, value: float, weight: float = 1.0) -> None:
        """Record ``weight`` observations of exactly ``value``."""
        if weight <= 0:
            return
        value = float(value)
        # Coalesce exact duplicates in place (common when folding
        # bucketised inputs: every interval contributes the same
        # representative values); a coalesced point mass adds no rank
        # ambiguity, which is what keeps bucket-fed sketches exact.
        lo, hi = 0, len(self._entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._entries[mid][0] < value:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self._entries) and self._entries[lo][0] == value:
            self._entries[lo][1] += weight
        else:
            # The right neighbour's below-value mass may sit on
            # either side of the newcomer: inherit that ambiguity.
            if lo < len(self._entries):
                neighbour = self._entries[lo]
                delta = neighbour[2] + neighbour[3]
            else:
                delta = 0.0
            self._entries.insert(
                lo, [value, float(weight), 0.0, delta])
        self._count += weight
        # Amortise: let the summary grow to 2x capacity between
        # compress passes, so a saturated sketch pays O(capacity) per
        # O(capacity) inserts, not per insert.
        if len(self._entries) > self._capacity() * 2:
            self.compress()

    def observe_buckets(self, bounds: Sequence[float],
                        counts: Sequence[float]) -> None:
        """Fold one histogram *delta*: per-bucket counts since the last
        sample, ``counts`` one longer than ``bounds`` (the ``+Inf``
        tail last)."""
        previous = 0.0
        for bound, count in zip(bounds, counts):
            if count > 0:
                lower = previous if previous < bound else 0.0
                self.insert((lower + bound) / 2.0, count)
            previous = bound
        tail = counts[len(bounds)] if len(counts) > len(bounds) else 0
        if tail > 0:
            # The open tail has no upper bound; the last finite bound
            # is the only honest representative (an underestimate,
            # flagged in the docs).
            self.insert(previous if bounds else 0.0, tail)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch.

        A mergeable-GK interleave: entries with equal values coalesce
        (exact/spread/delta all add — rank brackets are additive), and
        an unmatched entry is charged the *other* summary's
        next-greater ``spread + delta`` (that mass may lie at or below
        the entry's value).  Bucket-fed sketches share one value
        domain, so every entry coalesces and the union stays exact;
        heterogeneous raw streams add their bounds instead of
        silently compounding them.
        """
        a, b = self._entries, other._entries
        out: list[list[float]] = []
        i = j = 0
        while i < len(a) or j < len(b):
            if i < len(a) and j < len(b) and a[i][0] == b[j][0]:
                out.append([a[i][0], a[i][1] + b[j][1],
                            a[i][2] + b[j][2], a[i][3] + b[j][3]])
                i += 1
                j += 1
            elif j >= len(b) or (i < len(a) and a[i][0] < b[j][0]):
                penalty = (b[j][2] + b[j][3]) if j < len(b) else 0.0
                out.append([a[i][0], a[i][1], a[i][2],
                            a[i][3] + penalty])
                i += 1
            else:
                penalty = (a[i][2] + a[i][3]) if i < len(a) else 0.0
                out.append([b[j][0], b[j][1], b[j][2],
                            b[j][3] + penalty])
                j += 1
        self._entries = out
        self._count += other._count
        if len(self._entries) > self._capacity() * 2:
            self.compress()
        return self

    @classmethod
    def merged(cls, sketches: Iterable["QuantileSketch"],
               epsilon: Optional[float] = None) -> "QuantileSketch":
        """A fresh sketch holding the union of ``sketches``."""
        sketches = list(sketches)
        if epsilon is None:
            epsilon = min((s.epsilon for s in sketches), default=0.005)
        out = cls(epsilon=epsilon)
        for sketch in sketches:
            out.merge(sketch)
        return out

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------

    def _capacity(self) -> int:
        return max(8, int(3.0 / self.epsilon))

    def compress(self) -> None:
        """Collapse adjacent entries while each merged entry's rank
        ambiguity stays within the ``epsilon * n`` budget — the
        Greenwald–Khanna merge rule: fold left into right only while
        ``weight_left + spread_right + delta_right <= epsilon * n``.
        If the memory cap is still exceeded after the budgeted pass,
        keep collapsing the cheapest neighbours and let
        :attr:`rank_error_bound` carry the honest, looser figure.

        Folding keeps the right entry's value (a conservative,
        Prometheus-style upper bound): the left entry's whole weight
        becomes the right entry's below-value ``spread``.
        """
        if len(self._entries) <= 2:
            return
        budget = self.epsilon * self._count
        self._fold_pass(lambda ambiguity: ambiguity <= budget,
                        chain=True)
        need = len(self._entries) - self._capacity()
        if need > 0:
            # Memory floor: fold exactly the surplus, picking the
            # pairs whose merged ambiguity is smallest.
            entries = self._entries
            costs = sorted(entries[i][1] + entries[i][2]
                           + entries[i + 1][2] + entries[i + 1][3]
                           for i in range(1, len(entries) - 1))
            threshold = costs[min(need, len(costs)) - 1]
            self._fold_pass(lambda ambiguity: ambiguity <= threshold,
                            chain=False, limit=need)

    def _fold_pass(self, admit: Callable[[float], bool],
                   chain: bool, limit: Optional[int] = None) -> None:
        """One left-to-right fold sweep; ``admit(ambiguity)`` decides
        each fold, where ``ambiguity`` is the merged entry's resulting
        ``spread + delta`` (left weight + right spread + right delta).
        The first entry is never folded away — it anchors the
        summary's minimum.  Without ``chain`` a freshly merged entry
        cannot immediately receive another fold, so a sweep collapses
        pairs, not whole runs."""
        entries = self._entries
        out: list[list[float]] = [entries[0][:]]
        folds = 0
        just_merged = False
        for value, exact, spread, delta in entries[1:]:
            left_weight = out[-1][1] + out[-1][2]
            ambiguity = left_weight + spread + delta
            allowed = (len(out) > 1 and (chain or not just_merged)
                       and (limit is None or folds < limit))
            if allowed and admit(ambiguity):
                out.pop()
                out.append([value, exact, spread + left_weight,
                            delta])
                folds += 1
                just_merged = True
            else:
                out.append([value, exact, spread, delta])
                just_merged = False
        self._entries = out

    @property
    def rank_error_bound(self) -> float:
        """The fraction of ``n`` by which a reported quantile's rank
        may be off.

        At any entry the rank uncertainty is its below-value
        ``spread`` plus its inherited ``delta``; the bound is the
        worst entry's total, floored at ``epsilon``.  Point masses
        (``spread == delta == 0``) contribute nothing — a quantile
        landing inside an atom's rank span returns the atom's exact
        value — which is why bucket-fed sketches always report
        ``epsilon``.  High-cardinality raw streams report the honest,
        looser figure if the memory cap forced folds past the
        budget."""
        if not self._count or not self._entries:
            return self.epsilon
        worst = max(entry[2] + entry[3] for entry in self._entries)
        return max(self.epsilon, worst / self._count)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def count(self) -> float:
        return self._count

    def query(self, q: float) -> Optional[float]:
        """The ``q``-quantile (``0 <= q <= 1``), or ``None`` if empty.

        Interpolates linearly on cumulative weight between adjacent
        summary entries, so sparkline series move smoothly instead of
        stepping bucket to bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._entries:
            return None
        target = q * self._count
        cumulative = 0.0
        previous_value = self._entries[0][0]
        previous_cum = 0.0
        for value, exact, spread, delta in self._entries:
            cumulative += exact + spread
            # First entry whose rank bracket [rmin, rmin + delta]
            # reaches the target.
            if cumulative + delta >= target:
                if cumulative == previous_cum:
                    return value
                span = value - previous_value
                fraction = (target - previous_cum) / (
                    cumulative - previous_cum)
                return previous_value + span * max(0.0, min(1.0, fraction))
            previous_value = value
            previous_cum = cumulative
        return self._entries[-1][0]

    def quantiles(self, qs: Sequence[float] = DEFAULT_QUANTILES
                  ) -> dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ...}`` for each requested point."""
        return {_quantile_key(q): self.query(q) for q in qs}

    # ------------------------------------------------------------------
    # Serialisation (the /timeseries JSON path)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {"epsilon": self.epsilon, "count": self._count,
                "entries": [list(entry) for entry in self._entries]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "QuantileSketch":
        """Rebuild from :meth:`to_dict` output.

        A valid dump already satisfies the rank-bracket invariant, so
        entries are adopted verbatim (re-inserting them would charge
        the neighbour penalty twice).  Two-element legacy entries are
        treated as point masses.
        """
        sketch = cls(epsilon=float(data.get("epsilon", 0.005)))
        entries = []
        for entry in data.get("entries", ()):
            value, exact = float(entry[0]), float(entry[1])
            spread = float(entry[2]) if len(entry) > 2 else 0.0
            delta = float(entry[3]) if len(entry) > 3 else spread
            entries.append([value, exact, spread, delta])
        entries.sort(key=lambda e: e[0])
        sketch._entries = entries
        sketch._count = sum(e[1] + e[2] for e in entries)
        return sketch

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"QuantileSketch(n={self._count:g}, "
                f"entries={len(self._entries)}, "
                f"epsilon={self.epsilon})")


def _quantile_key(q: float) -> str:
    scaled = q * 100.0
    if scaled == int(scaled):
        return f"p{int(scaled)}"
    return f"p{scaled:g}".replace(".", "_")


class _Series:
    """One named+labelled ring of samples."""

    __slots__ = ("name", "labels", "kind", "points")

    def __init__(self, name: str, labels: tuple, kind: str,
                 capacity: int) -> None:
        self.name = name
        self.labels = labels
        self.kind = kind
        # counter: (ts, delta, rate); gauge: (ts, value);
        # histogram: (ts, sketch, count_delta, sum_delta)
        self.points: deque = deque(maxlen=capacity)


class MetricsHistory:
    """Bounded time-series store fed by sampling one registry.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.MetricsRegistry` to sample.
    interval_s:
        Sampling cadence of the background thread (and the assumed
        spacing when deriving rates for the very first interval).
    capacity:
        Points retained per series (ring buffer).  The default — 720
        points at 5 s — keeps one hour of history.
    epsilon:
        Rank-error budget per :class:`QuantileSketch` compression.
    max_series:
        Hard ceiling on retained series; series beyond it are dropped
        (counted in :meth:`stats`) rather than growing without bound
        when a caller labels a metric with unbounded cardinality.
    clock:
        Injectable wall clock (tests drive a fake and call
        :meth:`sample_once` directly).
    """

    def __init__(self, registry: MetricsRegistry,
                 interval_s: float = 5.0, capacity: int = 720,
                 epsilon: float = 0.005, max_series: int = 2048,
                 clock: Callable[[], float] = time.time) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        if max_series < 1:
            raise ValueError("max_series must be >= 1")
        self.registry = registry
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self.epsilon = float(epsilon)
        self.max_series = int(max_series)
        self._clock = clock
        self._lock = threading.Lock()
        self._series: dict[tuple, _Series] = {}
        self._last: dict[tuple, dict] = {}
        self._last_ts: Optional[float] = None
        self._samples = 0
        self._sample_errors = 0
        self._series_dropped = 0
        self._listeners: list[Callable[["MetricsHistory", float], None]] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def add_listener(self, listener: Callable[["MetricsHistory", float],
                                              None]) -> None:
        """Call ``listener(history, now)`` after every folded sample
        (the SLO monitor's hook).  Listeners run outside the history
        lock, on the sampler thread."""
        self._listeners.append(listener)

    def sample_once(self, now: Optional[float] = None) -> int:
        """Snapshot the registry and fold the movement; returns the
        number of series updated.  The first call establishes the
        baseline: counters and histograms contribute their first point
        on the *second* sample (a cumulative value is not a rate)."""
        now = self._clock() if now is None else float(now)
        snapshot = self.registry.to_json().get("metrics", ())
        with self._lock:
            first = self._last_ts is None
            dt = (self.interval_s if first
                  else max(1e-9, now - self._last_ts))
            updated = 0
            last: dict[tuple, dict] = {}
            for record in snapshot:
                key = (record["name"],
                       tuple(sorted((record.get("labels") or {}).items())))
                last[key] = record
                if self._fold(key, record, self._last.get(key), now, dt,
                              first):
                    updated += 1
            self._last = last
            self._last_ts = now
            self._samples += 1
            self.registry.gauge(
                HISTORY_SERIES,
                "Time series retained by the history store."
            ).set(len(self._series))
            self.registry.counter(
                HISTORY_SAMPLES,
                "Samples folded by the history sampler.").inc()
        for listener in list(self._listeners):
            listener(self, now)
        return updated

    def _fold(self, key: tuple, record: Mapping,
              prior: Optional[Mapping], now: float, dt: float,
              first: bool) -> bool:
        kind = record.get("kind", "untyped")
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                self._series_dropped += 1
                return False
            series = _Series(record["name"], key[1], kind, self.capacity)
            self._series[key] = series
        if kind == "gauge":
            series.points.append((now, record.get("value", 0)))
            return True
        if first:
            return False
        if kind == "counter":
            value = record.get("value", 0)
            before = prior.get("value", 0) if prior else 0
            delta = value - before
            if delta < 0:  # process restart: the counter went backwards
                delta = value
            series.points.append((now, delta, delta / dt))
            return True
        if kind == "histogram":
            counts = list(record.get("counts", ()))
            prior_counts = list(prior.get("counts", ())) if prior else []
            if len(prior_counts) != len(counts):
                prior_counts = [0] * len(counts)
            deltas = [a - b for a, b in zip(counts, prior_counts)]
            if any(d < 0 for d in deltas):  # restart
                deltas = counts
                prior = None
            count_delta = (record.get("count", 0)
                           - (prior.get("count", 0) if prior else 0))
            sum_delta = (record.get("sum", 0.0)
                         - (prior.get("sum", 0.0) if prior else 0.0))
            sketch = QuantileSketch(epsilon=self.epsilon)
            sketch.observe_buckets(record.get("buckets", ()), deltas)
            sketch.compress()
            series.points.append((now, sketch, count_delta, sum_delta))
            return True
        return False

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MetricsHistory":
        """Start the daemon sampler thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-history-sampler", daemon=True)
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 - the sampler must survive
                self._sample_errors += 1

    def stop(self) -> None:
        """Stop the sampler thread (idempotent)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsHistory":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _matching(self, name: str,
                  labels: Optional[Mapping] = None) -> list[_Series]:
        if labels is None:
            return [s for (n, _), s in self._series.items() if n == name]
        key = (name, tuple(sorted((str(k), str(v))
                                  for k, v in labels.items())))
        found = self._series.get(key)
        return [found] if found is not None else []

    def _window_points(self, series: _Series,
                       window_s: Optional[float]) -> list[tuple]:
        points = list(series.points)
        if window_s is None or self._last_ts is None:
            return points
        # A point stamped ts summarises the interval *ending* at ts,
        # so a point exactly on the horizon belongs to the previous
        # window: strictly-greater keeps a 2-interval window at
        # exactly 2 points.
        horizon = self._last_ts - float(window_s)
        return [p for p in points if p[0] > horizon]

    def window(self, name: str, window_s: Optional[float] = None,
               labels: Optional[Mapping] = None,
               quantiles: Sequence[float] = DEFAULT_QUANTILES
               ) -> Optional[dict]:
        """Aggregate one series over the trailing ``window_s`` seconds
        (the whole ring when ``None``).

        Counters report ``{"sum", "rate"}``; gauges ``{"last", "min",
        "max", "mean"}``; histograms the merged-sketch quantiles plus
        ``{"count", "sum", "mean"}``.  Returns ``None`` when the series
        does not exist; a present series with no points in the window
        reports ``samples: 0``.
        """
        with self._lock:
            matching = self._matching(name, labels)
            if not matching:
                return None
            kind = matching[0].kind
            windows = [self._window_points(s, window_s) for s in matching]
        points = sorted((p for pts in windows for p in pts),
                        key=lambda p: p[0])
        doc: dict = {"name": name, "kind": kind,
                     "window_s": window_s, "samples": len(points)}
        if not points:
            return doc
        span = max(points[-1][0] - points[0][0], self.interval_s)
        if window_s is not None:
            span = max(span, 1e-9) if len(points) > 1 else self.interval_s
        if kind == "counter":
            total = sum(p[1] for p in points)
            doc["sum"] = total
            doc["rate"] = total / (float(window_s) if window_s
                                   else span)
        elif kind == "gauge":
            values = [p[1] for p in points]
            doc.update(last=values[-1], min=min(values),
                       max=max(values),
                       mean=sum(values) / len(values))
        elif kind == "histogram":
            merged = QuantileSketch.merged([p[1] for p in points],
                                           epsilon=self.epsilon)
            count = sum(p[2] for p in points)
            total = sum(p[3] for p in points)
            doc.update(count=count, sum=total,
                       mean=(total / count) if count else 0.0,
                       quantiles=merged.quantiles(quantiles))
        return doc

    def quantile(self, name: str, q: float,
                 window_s: Optional[float] = None,
                 labels: Optional[Mapping] = None) -> Optional[float]:
        """One merged quantile over the trailing window, or ``None``
        when the series is missing or saw no samples in the window."""
        doc = self.window(name, window_s=window_s, labels=labels,
                          quantiles=(q,))
        if not doc or doc.get("kind") != "histogram" \
                or not doc.get("count"):
            return None
        return doc["quantiles"][_quantile_key(q)]

    def delta(self, name: str, window_s: Optional[float] = None,
              labels: Optional[Mapping] = None) -> Optional[float]:
        """Summed counter movement over the trailing window."""
        doc = self.window(name, window_s=window_s, labels=labels)
        if not doc or doc.get("kind") != "counter":
            return None
        return doc.get("sum", 0.0)

    def last(self, name: str,
             labels: Optional[Mapping] = None,
             window_s: Optional[float] = None) -> Optional[float]:
        """Most recent gauge value (or worst ``max`` when windowed)."""
        doc = self.window(name, window_s=window_s, labels=labels)
        if not doc or doc.get("kind") != "gauge" or not doc["samples"]:
            return None
        return doc["max"] if window_s is not None else doc["last"]

    def series(self, name: str, labels: Optional[Mapping] = None,
               window_s: Optional[float] = None,
               quantiles: Sequence[float] = DEFAULT_QUANTILES
               ) -> list[dict]:
        """Point-by-point JSON for every label set of ``name``.

        Counter points are ``[ts, delta, rate]``; gauge points
        ``[ts, value]``; histogram points ``[ts, count, p50, ..]`` with
        per-interval quantiles, ready for sparklines.
        """
        with self._lock:
            matching = self._matching(name, labels)
            snapshots = [(s, self._window_points(s, window_s))
                         for s in matching]
        out = []
        for series, points in snapshots:
            doc: dict = {"name": series.name,
                         "labels": dict(series.labels),
                         "kind": series.kind,
                         "interval_s": self.interval_s,
                         "samples": len(points)}
            if series.kind == "counter":
                doc["points"] = [[ts, delta, rate]
                                 for ts, delta, rate in points]
            elif series.kind == "gauge":
                doc["points"] = [[ts, value] for ts, value in points]
            else:
                keys = [_quantile_key(q) for q in quantiles]
                doc["quantile_keys"] = keys
                doc["points"] = [
                    [ts, count] + [sketch.query(q) for q in quantiles]
                    for ts, sketch, count, _sum in points]
            out.append(doc)
        return out

    def catalog(self) -> list[dict]:
        """Every retained series: name, labels, kind, point count."""
        with self._lock:
            return [{"name": s.name, "labels": dict(s.labels),
                     "kind": s.kind, "points": len(s.points)}
                    for s in self._series.values()]

    def timeseries_doc(self, name: Optional[str] = None,
                       window_s: Optional[float] = None) -> dict:
        """The ``GET /timeseries`` response document."""
        if name is None:
            return {"stats": self.stats(), "series": self.catalog()}
        return {"name": name, "window_s": window_s,
                "series": self.series(name, window_s=window_s),
                "window": self.window(name, window_s=window_s)}

    def stats(self) -> dict:
        """Sampler health for ``/varz``."""
        with self._lock:
            return {"interval_s": self.interval_s,
                    "capacity": self.capacity,
                    "epsilon": self.epsilon,
                    "samples": self._samples,
                    "sample_errors": self._sample_errors,
                    "series": len(self._series),
                    "series_dropped": self._series_dropped,
                    "max_series": self.max_series,
                    "running": self.running,
                    "last_sample_ts": self._last_ts}

    def __repr__(self) -> str:
        return (f"MetricsHistory(series={len(self._series)}, "
                f"samples={self._samples}, "
                f"interval_s={self.interval_s}, "
                f"running={self.running})")
