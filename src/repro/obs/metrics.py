"""Counters, gauges and histograms with JSON / Prometheus export.

A :class:`MetricsRegistry` is a small, dependency-free metrics store in
the Prometheus data model: named instruments, optional labels, and for
histograms a fixed set of upper-bound buckets.  Instruments are created
lazily (get-or-create by name + labels) so call sites never need setup
code::

    registry = MetricsRegistry()
    registry.counter("repro_queries_total").inc()
    registry.histogram("repro_query_latency_seconds").observe(0.0042)
    print(registry.to_prometheus())

Export formats:

* :meth:`MetricsRegistry.to_json` / :meth:`MetricsRegistry.from_json` —
  a lossless dump, used by the CLI's ``--metrics-out`` and re-read by the
  ``repro-search metrics`` subcommand;
* :meth:`MetricsRegistry.to_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` / sample lines), scrapable as-is.

The disabled path is :data:`NULL_METRICS`: its instruments are one
shared no-op object, so metric calls on a disabled registry cost a
method call and nothing else.

Thread safety: all *registry-level* operations — get-or-create,
lookup, export (JSON/Prometheus/summary), :meth:`~MetricsRegistry.diff`
and :meth:`~MetricsRegistry.merge` — hold one reentrant lock, so a
query thread can keep registering instruments while HTTP server
threads export snapshots (see :mod:`repro.obs.server`) without
"dictionary changed size during iteration" failures.  Individual
instrument updates (``inc`` / ``set`` / ``observe``) stay lock-free:
the supported concurrency model is one writer thread plus any number
of exporting readers.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Iterable, Mapping, Optional, Sequence, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullMetrics", "NULL_METRICS", "DEFAULT_BUCKETS",
           "LATENCY_BUCKETS", "RATIO_BUCKETS", "exponential_buckets",
           "LATENCY_LOG_BUCKETS", "SIZE_LOG_BUCKETS",
           "COST_ERROR_BUCKETS"]

#: General-purpose magnitude buckets (counts of things).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)

#: Latency buckets in seconds, 0.5 ms – 10 s.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0)

#: Buckets for quantities in [0, 1] (hit ratios, reduction factors).
RATIO_BUCKETS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def exponential_buckets(start: float, factor: float,
                        count: int) -> tuple[float, ...]:
    """``count`` log-scaled bucket bounds: ``start * factor**i``.

    The standard client-library helper for long-tailed quantities:
    equal resolution per decade instead of per unit.  ``start`` must be
    positive and ``factor`` > 1 so the bounds are strictly increasing.
    """
    if start <= 0:
        raise ValueError("start must be > 0")
    if factor <= 1:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(start * factor ** i for i in range(count))


#: Flight-recorder latency buckets in seconds: 0.1 ms – ~13 s, base 2.
LATENCY_LOG_BUCKETS: tuple[float, ...] = exponential_buckets(
    0.0001, 2.0, 18)

#: Result-size buckets: 1 – 16384 answer fragments, base 2.
SIZE_LOG_BUCKETS: tuple[float, ...] = exponential_buckets(1.0, 2.0, 15)

#: Cost-error (measured/predicted) buckets, symmetric around 1 on a
#: log scale: 1/64 – 64, base 2.
COST_ERROR_BUCKETS: tuple[float, ...] = exponential_buckets(
    1.0 / 64.0, 2.0, 13)

LabelsArg = Optional[Mapping[str, str]]


def _label_key(labels: LabelsArg) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return f"{value:g}" if isinstance(value, float) else str(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double quote and newline are the three characters the
    format requires escaping inside quoted label values.
    """
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` line body (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: tuple[tuple[str, str], ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


class _Instrument:
    """Shared plumbing: identity, help text, labels.

    Each instrument carries its own mutation lock so concurrent
    writers (search threads sharing one ``obs=`` handle) never lose
    updates — ``+=`` on a plain attribute is a read-modify-write that
    the GIL does not make atomic.  Value *reads* stay lock-free: a
    torn read of a single attribute is impossible, and exports already
    snapshot the instrument table under the registry lock.
    """

    kind = "untyped"

    __slots__ = ("name", "help", "labels", "_mutate")

    def __init__(self, name: str, help: str = "",
                 labels: LabelsArg = None) -> None:
        if not name or not name.replace("_", "a").replace(":", "a") \
                .isalnum() or name[0].isdigit():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labels = _label_key(labels)
        self._mutate = threading.Lock()


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    __slots__ = ("_value",)

    def __init__(self, name: str, help: str = "",
                 labels: LabelsArg = None) -> None:
        super().__init__(name, help, labels)
        self._value: float = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._mutate:
            self._value += amount

    @property
    def value(self) -> Union[int, float]:
        return self._value


class Gauge(_Instrument):
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    __slots__ = ("_value",)

    def __init__(self, name: str, help: str = "",
                 labels: LabelsArg = None) -> None:
        super().__init__(name, help, labels)
        self._value: float = 0

    def set(self, value: Union[int, float]) -> None:
        self._value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._mutate:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._mutate:
            self._value -= amount

    @property
    def value(self) -> Union[int, float]:
        return self._value


class Histogram(_Instrument):
    """Fixed-bucket histogram with sum and count.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit ``+Inf`` bucket catches the tail.  Bucket counts are stored
    per-bucket and exported cumulatively (the Prometheus convention).
    """

    kind = "histogram"

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None,
                 labels: LabelsArg = None) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds) \
                or len(set(bounds)) != len(bounds):
            raise ValueError("buckets must be strictly increasing")
        self.buckets = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self._sum: float = 0.0
        self._count: int = 0

    def observe(self, value: Union[int, float]) -> None:
        """Record one sample."""
        with self._mutate:
            self._counts[bisect_left(self.buckets, value)] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``inf`` last."""
        out = []
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out


class MetricsRegistry:
    """Get-or-create store for instruments, with exporters.

    Registry-level operations are serialized by one reentrant lock
    (``merge`` get-or-creates while holding it), so exports from
    server threads see consistent instrument tables while the query
    thread registers new series.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple, _Instrument] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Instrument accessors
    # ------------------------------------------------------------------

    def _get(self, cls, name: str, help: str, labels: LabelsArg,
             **kwargs) -> _Instrument:
        key = (name, _label_key(labels))
        with self._lock:
            found = self._instruments.get(key)
            if found is not None:
                if not isinstance(found, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{found.kind}")
                return found
            instrument = cls(name, help=help, labels=labels, **kwargs)
            self._instruments[key] = instrument
            return instrument

    def get(self, name: str,
            labels: LabelsArg = None) -> Optional[_Instrument]:
        """The instrument registered under ``name``/``labels``, or
        ``None`` — a read-only probe that never creates a series."""
        with self._lock:
            return self._instruments.get((name, _label_key(labels)))

    def counter(self, name: str, help: str = "",
                labels: LabelsArg = None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: LabelsArg = None) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  labels: LabelsArg = None) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def instruments(self) -> list[_Instrument]:
        """Every registered instrument, in registration order."""
        with self._lock:
            return list(self._instruments.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return any(key[0] == name for key in self._instruments)

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        """A lossless plain-dict dump (see :meth:`from_json`)."""
        metrics = []
        for instrument in self.instruments():
            record: dict = {"name": instrument.name,
                            "kind": instrument.kind,
                            "help": instrument.help,
                            "labels": dict(instrument.labels)}
            if isinstance(instrument, Histogram):
                record["buckets"] = list(instrument.buckets)
                record["counts"] = list(instrument._counts)
                record["sum"] = instrument.sum
                record["count"] = instrument.count
            else:
                record["value"] = instrument.value
            metrics.append(record)
        return {"metrics": metrics}

    @classmethod
    def from_json(cls, data: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_json` dump."""
        registry = cls()
        for record in data.get("metrics", ()):
            name, labels = record["name"], record.get("labels") or None
            kind = record.get("kind", "untyped")
            if kind == "counter":
                registry.counter(name, record.get("help", ""),
                                 labels).inc(record.get("value", 0))
            elif kind == "gauge":
                registry.gauge(name, record.get("help", ""),
                               labels).set(record.get("value", 0))
            elif kind == "histogram":
                histogram = registry.histogram(
                    name, record.get("help", ""),
                    buckets=record.get("buckets"), labels=labels)
                histogram._counts = list(record.get("counts", ()))
                if len(histogram._counts) != len(histogram.buckets) + 1:
                    raise ValueError(
                        f"histogram {name!r}: counts do not match buckets")
                histogram._sum = float(record.get("sum", 0.0))
                histogram._count = int(record.get("count", 0))
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
        return registry

    def to_json_text(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=False)

    # ------------------------------------------------------------------
    # Mergeable deltas (cross-process telemetry)
    # ------------------------------------------------------------------

    def diff(self, baseline: Optional[Mapping] = None) -> dict:
        """This registry's state minus a :meth:`to_json` ``baseline``.

        The result has the same shape as :meth:`to_json` but every
        value, histogram bucket count and sum is the *increment* since
        the baseline was taken — the mergeable delta format a pool
        worker ships back to its parent.  Instruments whose values did
        not move are omitted, so an idle worker ships an empty delta.
        Gauges are differenced like counters: the engine's gauges
        (e.g. JoinCache memo totals) are running totals, so increments
        sum correctly across workers.
        """
        before: dict[tuple, Mapping] = {}
        for record in (baseline or {}).get("metrics", ()):
            key = (record["name"],
                   _label_key(record.get("labels") or None))
            before[key] = record
        metrics = []
        with self._lock:
            snapshot = list(self._instruments.items())
        for key, instrument in snapshot:
            prior = before.get(key)
            record: dict = {"name": instrument.name,
                            "kind": instrument.kind,
                            "help": instrument.help,
                            "labels": dict(instrument.labels)}
            if isinstance(instrument, Histogram):
                prior_counts = (list(prior.get("counts", ()))
                                if prior else [])
                if len(prior_counts) != len(instrument._counts):
                    prior_counts = [0] * len(instrument._counts)
                counts = [now - then for now, then
                          in zip(instrument._counts, prior_counts)]
                count = instrument.count - (int(prior.get("count", 0))
                                            if prior else 0)
                if not count and not any(counts):
                    continue
                record["buckets"] = list(instrument.buckets)
                record["counts"] = counts
                record["sum"] = instrument.sum - (
                    float(prior.get("sum", 0.0)) if prior else 0.0)
                record["count"] = count
            else:
                value = instrument.value - (prior.get("value", 0)
                                            if prior else 0)
                if not value:
                    continue
                record["value"] = value
            metrics.append(record)
        return {"metrics": metrics}

    def merge(self, delta: Mapping) -> None:
        """Fold a :meth:`diff` dump (or a full :meth:`to_json` dump of a
        fresh registry) into this one.

        Counters and gauges are incremented by the delta's values;
        histogram bucket counts, sums and counts are added elementwise.
        A name registered here with a different kind, or a histogram
        with different buckets, raises :class:`ValueError` — merged
        worker deltas must agree with the parent on instrument identity.

        The whole merge holds the registry lock (reentrantly across
        its get-or-creates), so exporters never see half a delta.
        """
        with self._lock:
            self._merge_locked(delta)

    def _merge_locked(self, delta: Mapping) -> None:
        for record in delta.get("metrics", ()):
            name = record["name"]
            labels = record.get("labels") or None
            help_text = record.get("help", "")
            kind = record.get("kind", "untyped")
            if kind == "counter":
                self.counter(name, help_text,
                             labels).inc(record.get("value", 0))
            elif kind == "gauge":
                self.gauge(name, help_text,
                           labels).inc(record.get("value", 0))
            elif kind == "histogram":
                histogram = self.histogram(name, help_text,
                                           buckets=record.get("buckets"),
                                           labels=labels)
                counts = list(record.get("counts", ()))
                if tuple(record.get("buckets", ())) != histogram.buckets \
                        or len(counts) != len(histogram._counts):
                    raise ValueError(
                        f"histogram {name!r}: delta buckets do not match "
                        f"the registered instrument")
                for i, value in enumerate(counts):
                    histogram._counts[i] += value
                histogram._sum += float(record.get("sum", 0.0))
                histogram._count += int(record.get("count", 0))
            else:
                raise ValueError(f"unknown metric kind {kind!r}")

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        by_name: dict[str, list[_Instrument]] = {}
        for instrument in self.instruments():
            by_name.setdefault(instrument.name, []).append(instrument)
        lines = []
        for name, group in by_name.items():
            head = group[0]
            if head.help:
                lines.append(f"# HELP {name} {_escape_help(head.help)}")
            lines.append(f"# TYPE {name} {head.kind}")
            for instrument in group:
                if isinstance(instrument, Histogram):
                    for bound, cumulative in instrument.cumulative_counts():
                        le = ("+Inf" if bound == float("inf")
                              else _format_value(bound))
                        labels = _format_labels(instrument.labels,
                                                (("le", le),))
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    labels = _format_labels(instrument.labels)
                    lines.append(f"{name}_sum{labels} "
                                 f"{_format_value(instrument.sum)}")
                    lines.append(f"{name}_count{labels} "
                                 f"{instrument.count}")
                else:
                    labels = _format_labels(instrument.labels)
                    lines.append(f"{name}{labels} "
                                 f"{_format_value(instrument.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def summary(self) -> str:
        """A human-readable one-line-per-metric summary."""
        lines = []
        for instrument in self.instruments():
            labels = _format_labels(instrument.labels)
            if isinstance(instrument, Histogram):
                lines.append(
                    f"{instrument.name}{labels}  count={instrument.count}"
                    f"  mean={instrument.mean:.6g}"
                    f"  sum={instrument.sum:.6g}")
            else:
                lines.append(f"{instrument.name}{labels}  "
                             f"{_format_value(instrument.value)}")
        return "\n".join(lines)


class _NullInstrument:
    """One object that silently absorbs every instrument method."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Metrics disabled: accessors return the shared null instrument."""

    enabled = False

    __slots__ = ()

    def counter(self, name, help="", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", buckets=None,
                  labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name, labels=None) -> None:
        return None

    def instruments(self) -> list:
        return []

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def to_json(self) -> dict:
        return {"metrics": []}

    def diff(self, baseline=None) -> dict:
        return {"metrics": []}

    def merge(self, delta) -> None:
        pass

    def to_prometheus(self) -> str:
        return ""

    def summary(self) -> str:
        return ""


#: Shared disabled registry.
NULL_METRICS = NullMetrics()
