"""Cross-process telemetry deltas (``repro.obs.delta``).

Spans, metrics and query records produced inside a pool worker would
otherwise die with the worker.  An :class:`ObsDelta` is the in-band
envelope that keeps them alive: plain picklable data — a
:meth:`~repro.obs.metrics.MetricsRegistry.diff` metrics increment,
serialized span trees, query-record dicts — captured on the worker after
each chunk and merged into the parent's handle next to the chunk's
results.

The merge is *identity preserving*: metric increments land on the same
unlabeled series the serial path uses (so parent-side counters are
equal to a serial run's on the same workload), while spans and query
records are stamped with a ``worker=N`` label so their origin stays
visible in the merged trace and log.

Worker side::

    baseline = {}                                 # per-worker, persistent
    delta, baseline = capture_delta(obs, baseline)
    return rows, seconds, delta                   # ships with the results

Parent side::

    merge_delta(parent_obs, delta, worker="2")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ObsDelta", "capture_delta", "merge_delta"]

#: Counter of worker deltas folded into a parent handle.
DELTAS_MERGED = "repro_pool_deltas_merged_total"


@dataclass
class ObsDelta:
    """One worker's telemetry increment: plain data, pickles cheaply.

    Attributes
    ----------
    metrics:
        A :meth:`MetricsRegistry.diff` dump — instrument increments
        since the previous capture.
    spans:
        Serialized root spans (``Span.to_dict`` form) recorded since the
        previous capture.
    records:
        Query-log records (``QueryRecord.to_dict`` form) drained from
        the worker's log.
    profiles:
        Flight-recorder profiles (``QueryProfile.to_dict`` form)
        drained from the worker's recorder ring.
    traces:
        Tail-sampled traces the worker retained, keyed by trace id
        (Chrome trace events + serialized span tree).
    """

    metrics: dict = field(default_factory=lambda: {"metrics": []})
    spans: list = field(default_factory=list)
    records: list = field(default_factory=list)
    profiles: list = field(default_factory=list)
    traces: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.metrics.get("metrics") or self.spans
                    or self.records or self.profiles or self.traces)


def capture_delta(obs, baseline: Optional[dict] = None
                  ) -> tuple[ObsDelta, dict]:
    """Capture (and drain) one telemetry increment from ``obs``.

    Returns ``(delta, new_baseline)``.  The tracer and query log are
    drained — their contents ship exactly once — while the metrics
    registry keeps accumulating and the returned baseline snapshot marks
    the cut for the next capture.
    """
    if not obs.enabled:
        return ObsDelta(), baseline or {}
    metrics = obs.metrics.diff(baseline)
    new_baseline = obs.metrics.to_json()
    spans = []
    if obs.tracer.enabled:
        spans = [root.to_dict(epoch=root.started or None)
                 for root in obs.tracer.roots]
        obs.tracer.clear()
    records = []
    if obs.query_log is not None:
        records = [record.to_dict()
                   for record in obs.query_log.drain()]
    profiles: list = []
    traces: dict = {}
    if getattr(obs, "recorder", None) is not None:
        profiles, traces = obs.recorder.drain()
    return ObsDelta(metrics=metrics, spans=spans, records=records,
                    profiles=profiles, traces=traces), new_baseline


def merge_delta(obs, delta: Optional[ObsDelta],
                worker: Optional[str] = None) -> None:
    """Fold a worker's :class:`ObsDelta` into the parent handle ``obs``.

    Metric increments merge onto the parent's (unlabeled) series, so
    totals match a serial run; span trees rehydrate under the currently
    open span with a ``worker`` attribute; query records pass through
    :meth:`~repro.obs.querylog.QueryLog.ingest`, which re-derives
    ``slow`` from the parent's threshold and counts slow queries into
    ``repro_slow_queries_total`` exactly as the serial path does.
    """
    if delta is None or not obs.enabled or not delta:
        return
    obs.metrics.merge(delta.metrics)
    obs.metrics.counter(
        DELTAS_MERGED, "Worker telemetry deltas merged by the parent."
    ).inc()
    if delta.spans:
        obs.tracer.adopt(delta.spans,
                         **({"worker": worker} if worker else {}))
    if delta.records:
        from . import SLOW_QUERIES
        for data in delta.records:
            record = (obs.query_log.ingest(data, worker=worker)
                      if obs.query_log is not None else None)
            if record is not None and record.slow:
                obs.metrics.counter(
                    SLOW_QUERIES,
                    "Queries at or over the slow threshold.").inc()
    if (delta.profiles or delta.traces) \
            and getattr(obs, "recorder", None) is not None:
        # Histograms/cost counters already travelled in the metrics
        # diff above; ingest only folds the profiles/traces into the
        # parent ring and refreshes the calibration gauges.
        obs.recorder.ingest(delta.profiles, delta.traces,
                            worker=worker, metrics=obs.metrics)
