"""``repro-search top`` — a live ANSI terminal console over the
serving stack (``repro.obs.console``).

Renders one compact frame per refresh: health and uptime, QPS and
p50/p99 latency sparklines from the ``/timeseries`` ring buffers,
guard-rail state (queue, in-flight, breaker, admission scale), per-SLO
burn rates from ``/alertz``, and per-shard router health from the
``/varz`` shards section.  HTML-free and stdlib-only: the "dashboard"
is a terminal.

Two data sources:

* :class:`HttpSource` scrapes a running
  :class:`~repro.obs.server.MetricsServer` (``repro-search top URL``),
  tolerating missing endpoints — a server without a sampler or SLOs
  still renders, with those panes marked off;
* :class:`LocalSource` reads an in-process server handle directly
  (no socket), for embedding and for deterministic tests.

:class:`OpsConsole` is deliberately split render-from-fetch:
``render(data)`` is a pure string function over one snapshot dict, so
tests assert on frames without a terminal or a clock.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Callable, Mapping, Optional, Sequence, TextIO

from . import QUERIES_TOTAL, QUERY_LATENCY

__all__ = ["sparkline", "HttpSource", "LocalSource", "OpsConsole"]

#: Eight-level block characters, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: ANSI: clear screen and home the cursor (one frame replaces the last).
CLEAR = "\x1b[2J\x1b[H"

_STATE_MARKS = {"ok": "·", "warning": "!", "critical": "!!"}


def sparkline(values: Sequence[Optional[float]], width: int = 32) -> str:
    """Render the trailing ``width`` values as a block-character strip.

    Scales to the window's own min/max (a flat series renders as a
    low line); ``None`` gaps render as spaces.  Returns ``""`` for an
    empty series.
    """
    tail = list(values)[-width:]
    present = [v for v in tail if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for value in tail:
        if value is None:
            chars.append(" ")
        elif span <= 0:
            chars.append(SPARK_CHARS[0])
        else:
            index = int((value - lo) / span * (len(SPARK_CHARS) - 1))
            chars.append(SPARK_CHARS[index])
    return "".join(chars)


def _histogram_columns(series_doc: Optional[Mapping]
                       ) -> dict[str, list[Optional[float]]]:
    """Per-quantile point columns of one ``/timeseries`` histogram
    series document (``{"p50": [...], "p99": [...]}``)."""
    out: dict[str, list[Optional[float]]] = {}
    for series in (series_doc or {}).get("series") or []:
        keys = series.get("quantile_keys") or []
        for offset, key in enumerate(keys):
            column = out.setdefault(key, [])
            for point in series.get("points") or []:
                # histogram points are [ts, count, q1, q2, ...]
                column.append(point[2 + offset]
                              if len(point) > 2 + offset else None)
    return out


def _counter_rates(series_doc: Optional[Mapping]) -> list[float]:
    """Per-point rate column of one counter series document."""
    rates: list[float] = []
    for series in (series_doc or {}).get("series") or []:
        for index, point in enumerate(series.get("points") or []):
            # counter points are [ts, delta, rate]
            value = point[2] if len(point) > 2 else 0.0
            if index < len(rates):
                rates[index] += value
            else:
                rates.append(value)
    return rates


class HttpSource:
    """Scrape one running metrics server over HTTP.

    Endpoints that are missing or erroring yield ``None`` sections
    rather than exceptions: the console keeps rendering whatever the
    server does serve.
    """

    def __init__(self, url: str, timeout_s: float = 2.0) -> None:
        self.url = url.rstrip("/")
        if "://" not in self.url:
            self.url = "http://" + self.url
        self.timeout_s = timeout_s

    def _get_json(self, path: str) -> Optional[dict]:
        try:
            with urllib.request.urlopen(self.url + path,
                                        timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError):
            return None

    def fetch(self) -> dict:
        varz = self._get_json("/varz")
        alerts = self._get_json("/alertz")
        qps = self._get_json(f"/timeseries?name={QUERIES_TOTAL}")
        latency = self._get_json(f"/timeseries?name={QUERY_LATENCY}")
        return {"target": self.url, "varz": varz, "alerts": alerts,
                "qps": _counter_rates(qps),
                "latency": _histogram_columns(latency)}


class LocalSource:
    """Read an in-process :class:`~repro.obs.server.MetricsServer`
    (no socket round-trips)."""

    def __init__(self, server) -> None:
        self._server = server

    def fetch(self) -> dict:
        server = self._server
        varz = server.varz() if server.running else None
        history = server.history
        slo = server.slo
        qps = latency = None
        if history is not None:
            qps = history.timeseries_doc(QUERIES_TOTAL)
            latency = history.timeseries_doc(QUERY_LATENCY)
        return {"target": (server.url if server.running
                           else "in-process"),
                "varz": varz,
                "alerts": slo.snapshot() if slo is not None else None,
                "qps": _counter_rates(qps),
                "latency": _histogram_columns(latency)}


def _ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 1000:.1f}"


def _last_present(values: Sequence[Optional[float]]) -> Optional[float]:
    """Most recent non-``None`` value (idle intervals have no
    quantiles; the console shows the last busy one)."""
    for value in reversed(list(values)):
        if value is not None:
            return value
    return None


def _burn(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2f}"


class OpsConsole:
    """Render fetched snapshots as terminal frames.

    ``run()`` refreshes every ``interval_s`` seconds (ANSI
    clear-screen between frames when writing to a TTY, plain
    append-frames otherwise) until interrupted or ``frames`` frames
    have been drawn.
    """

    def __init__(self, source, out: TextIO = sys.stdout,
                 interval_s: float = 2.0, width: int = 80,
                 clock: Callable[[], float] = time.time,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.source = source
        self.out = out
        self.interval_s = interval_s
        self.width = width
        self._clock = clock
        self._sleep = sleep

    # ------------------------------------------------------------------
    # Pure rendering
    # ------------------------------------------------------------------

    def render(self, data: Mapping) -> str:
        """One frame for one snapshot; pure, no I/O."""
        varz = data.get("varz") or {}
        alerts = data.get("alerts")
        lines = [self._header(data, varz, alerts)]
        lines.append(self._queries_line(varz, data.get("qps") or []))
        lines.append(self._latency_line(data.get("latency") or {}))
        guard = varz.get("guard")
        if guard:
            lines.append(self._guard_line(guard))
        lines.extend(self._slo_lines(alerts))
        lines.extend(self._shard_lines(varz.get("shards")))
        recorder = varz.get("flight_recorder")
        if recorder:
            lines.append(
                f"recorder  profiles {recorder.get('profiles', 0)}"
                f"  traces {recorder.get('traces', 0)}"
                f"  evicted {recorder.get('evicted', 0)}")
        return "\n".join(line[:self.width] for line in lines if line)

    def _header(self, data: Mapping, varz: Mapping,
                alerts: Optional[Mapping]) -> str:
        uptime = varz.get("uptime_seconds")
        guard = varz.get("guard") or {}
        if guard.get("draining"):
            health = "DRAINING"
        elif (alerts or {}).get("state") == "critical":
            health = "CRITICAL"
        elif varz.get("degraded"):
            health = "DEGRADED"
        elif not varz:
            health = "UNREACHABLE"
        else:
            health = "ok"
        parts = ["repro-search top", str(data.get("target", ""))]
        if uptime is not None:
            parts.append(f"up {uptime:.0f}s")
        parts.append(f"health {health}")
        return "  ·  ".join(part for part in parts if part)

    def _queries_line(self, varz: Mapping, qps: Sequence[float]) -> str:
        total = None
        for record in (varz.get("metrics") or {}).get("metrics", ()):
            if record.get("name") == QUERIES_TOTAL \
                    and not record.get("labels"):
                total = record.get("value")
        now = qps[-1] if qps else None
        strip = sparkline(qps, width=max(8, self.width - 40))
        parts = ["queries"]
        parts.append(f"total {total:g}" if total is not None
                     else "total -")
        parts.append(f"qps {now:.1f}" if now is not None else "qps -")
        if strip:
            parts.append(strip)
        return "  ".join(parts)

    def _latency_line(self, latency: Mapping) -> str:
        p50 = latency.get("p50") or []
        p99 = latency.get("p99") or []
        strip_width = max(8, (self.width - 44) // 2)
        parts = ["latency"]
        parts.append(f"p50 {_ms(_last_present(p50))}ms "
                     f"{sparkline(p50, strip_width)}".rstrip())
        parts.append(f"p99 {_ms(_last_present(p99))}ms "
                     f"{sparkline(p99, strip_width)}".rstrip())
        return "  ".join(parts)

    def _guard_line(self, guard: Mapping) -> str:
        breaker = (guard.get("breaker") or {}).get("state", "-")
        scale = guard.get("admission_scale", 1.0)
        line = (f"guard     queued {guard.get('queued', 0)}"
                f"/{guard.get('max_queue', '-')}"
                f"  in-flight {guard.get('in_flight', 0)}"
                f"/{guard.get('max_concurrency', '-')}"
                f"  breaker {breaker}"
                f"  admission x{scale:.2f}")
        if guard.get("tightenings"):
            line += f" (tightened {guard['tightenings']}x)"
        return line

    def _slo_lines(self, alerts: Optional[Mapping]) -> list[str]:
        if not alerts:
            return []
        if not alerts.get("enabled", True):
            return ["slo       (none configured)"]
        lines = []
        for alert in alerts.get("alerts", ()):
            mark = _STATE_MARKS.get(alert.get("state"), "?")
            lines.append(
                f"slo {mark:<2} [{alert.get('state', '?'):>8}] "
                f"{alert.get('name', '?')}"
                f"  fast {_burn(alert.get('fast_burn'))}"
                f"  slow {_burn(alert.get('slow_burn'))}"
                f"  ({alert.get('expr', '')})")
        return lines

    def _shard_lines(self, shards: Optional[Mapping]) -> list[str]:
        if not shards:
            return []
        breakers = shards.get("breakers") or {}
        history = shards.get("history") or {}
        if not breakers and not history:
            return []
        lines = ["shards    #  breaker    runs failed excl rerouted"
                 "  last-exclusion"]
        for shard in sorted(set(breakers) | set(history), key=int):
            breaker_state = (breakers.get(shard) or {}).get(
                "state", "-")
            entry = history.get(shard) or {}
            sick = (breaker_state != "closed"
                    or entry.get("failed_runs")
                    or entry.get("excluded_runs"))
            lines.append(
                f"  {'!' if sick else ' '}      {shard:>2}"
                f"  {breaker_state:<9}"
                f" {entry.get('runs', 0):>5}"
                f" {entry.get('failed_runs', 0):>6}"
                f" {entry.get('excluded_runs', 0):>4}"
                f" {entry.get('reroutes', 0):>8}"
                f"  {entry.get('last_exclusion') or '-'}")
        return lines

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def frame(self) -> str:
        """Fetch one snapshot and render it."""
        return self.render(self.source.fetch())

    def run(self, frames: Optional[int] = None) -> int:
        """Refresh until ``frames`` frames (or Ctrl-C).  Returns 0."""
        use_ansi = hasattr(self.out, "isatty") and self.out.isatty()
        drawn = 0
        try:
            while frames is None or drawn < frames:
                text = self.frame()
                if use_ansi:
                    self.out.write(CLEAR + text + "\n")
                else:
                    self.out.write(text + "\n\n")
                self.out.flush()
                drawn += 1
                if frames is not None and drawn >= frames:
                    break
                self._sleep(self.interval_s)
        except KeyboardInterrupt:
            pass
        return 0
