"""Unified observability for the query engine (``repro.obs``).

One handle — an :class:`Observability` — bundles the three concerns a
query engine needs to watch itself:

* a **span tracer** (:mod:`repro.obs.tracer`) recording the nested
  phases of each query (parse → plan → optimize → execute → rank) with
  wall time and primitive-operation deltas;
* a **metrics registry** (:mod:`repro.obs.metrics`) with counters,
  gauges and histograms, exportable as JSON or Prometheus text;
* a **structured query log** (:mod:`repro.obs.querylog`) emitting one
  JSON record per query, with a slow-query threshold.

Every engine entry point (``strategies.evaluate``, ``PlanEvaluator``,
``optimize``, collections, the relational engine, the ranker) accepts an
optional ``obs=`` handle and defaults to :data:`NOOP` — a singleton
whose spans and instruments are shared no-op objects, so the disabled
path costs a method call per phase and allocates nothing.

Typical use::

    from repro.obs import Observability
    obs = Observability()
    result = evaluate(document, query, obs=obs)
    print(obs.tracer.render())
    print(obs.metrics.to_prometheus())
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .delta import DELTAS_MERGED, ObsDelta, capture_delta, merge_delta
from .history import (DEFAULT_QUANTILES, HISTORY_SAMPLES, HISTORY_SERIES,
                      MetricsHistory, QuantileSketch)
from .metrics import (COST_ERROR_BUCKETS, DEFAULT_BUCKETS,
                      LATENCY_BUCKETS, LATENCY_LOG_BUCKETS, NULL_METRICS,
                      RATIO_BUCKETS, SIZE_LOG_BUCKETS, Counter, Gauge,
                      Histogram, MetricsRegistry, NullMetrics,
                      exponential_buckets)
from .querylog import QueryLog, QueryRecord
from .slo import (ALERT_STATE_CODES, CRITICAL, FEEDBACK_TIGHTEN_ADMISSION,
                  FEEDBACK_TRIP_BREAKERS, OK, SLO_BURN_RATE, SLO_STATE,
                  WARNING, AlertState, Objective, SLOMonitor, parse_slo)
from .recorder import (COST_ACTUAL, COST_CALIBRATION, COST_ERROR,
                       COST_PREDICTED, PROFILES_EVICTED,
                       PROFILES_RECORDED, RECORDER_LATENCY,
                       RECORDER_RESULT_SIZE, TRACES_DROPPED,
                       TRACES_RETAINED, FlightRecorder, QueryProfile,
                       RecorderConfig)
from .tracer import (NULL_SPAN, NULL_TRACER, NullTracer, Span, SpanTracer)

__all__ = [
    "Observability", "NOOP",
    "SpanTracer", "NullTracer", "Span", "NULL_TRACER", "NULL_SPAN",
    "MetricsRegistry", "NullMetrics", "Counter", "Gauge", "Histogram",
    "NULL_METRICS", "DEFAULT_BUCKETS", "LATENCY_BUCKETS", "RATIO_BUCKETS",
    "exponential_buckets", "LATENCY_LOG_BUCKETS", "SIZE_LOG_BUCKETS",
    "COST_ERROR_BUCKETS",
    "QueryLog", "QueryRecord",
    "FlightRecorder", "QueryProfile", "RecorderConfig",
    "RECORDER_LATENCY", "RECORDER_RESULT_SIZE", "COST_ERROR",
    "COST_CALIBRATION", "COST_PREDICTED", "COST_ACTUAL",
    "PROFILES_RECORDED", "PROFILES_EVICTED", "TRACES_RETAINED",
    "TRACES_DROPPED",
    "ObsDelta", "capture_delta", "merge_delta", "DELTAS_MERGED",
    "MetricsHistory", "QuantileSketch", "DEFAULT_QUANTILES",
    "HISTORY_SAMPLES", "HISTORY_SERIES",
    "SLOMonitor", "Objective", "AlertState", "parse_slo",
    "OK", "WARNING", "CRITICAL", "ALERT_STATE_CODES",
    "SLO_STATE", "SLO_BURN_RATE",
    "FEEDBACK_TIGHTEN_ADMISSION", "FEEDBACK_TRIP_BREAKERS",
]

# Well-known metric names recorded by Observability.record_query().
QUERIES_TOTAL = "repro_queries_total"
QUERIES_BY_STRATEGY = "repro_queries_by_strategy_total"
QUERY_LATENCY = "repro_query_latency_seconds"
QUERY_FRAGMENTS = "repro_query_fragments"
FRAGMENT_JOINS = "repro_fragment_joins_total"
JOIN_CACHE_HITS = "repro_join_cache_hits_total"
PREDICATE_CHECKS = "repro_predicate_checks_total"
SUBSET_CHECKS = "repro_subset_checks_total"
FRAGMENTS_DISCARDED = "repro_fragments_discarded_total"
JOIN_CACHE_HIT_RATIO = "repro_join_cache_hit_ratio"
REDUCTION_FACTOR = "repro_reduction_factor"
FRAGMENTS_RANKED = "repro_fragments_ranked_total"
DOCUMENTS_SKIPPED = "repro_documents_skipped_total"
SLOW_QUERIES = "repro_slow_queries_total"

# Streaming pipeline metrics (recorded by repro.core.streaming and the
# collection/ranked streaming consumers).
STREAM_ROWS = "repro_stream_rows_total"
STREAM_EARLY_EXITS = "repro_stream_early_exits_total"
STREAM_ROUNDS = "repro_stream_rounds_total"
STREAM_SCORES_SKIPPED = "repro_stream_scores_skipped_total"

# JoinCache lifetime memo totals (exported by JoinCache.export_metrics).
JOIN_CACHE_MEMO_HITS = "repro_join_cache_memo_hits"
JOIN_CACHE_MEMO_MISSES = "repro_join_cache_memo_misses"

# Parallel-execution pool metrics (recorded by repro.exec).
POOL_WORKERS = "repro_pool_workers"
POOL_TASKS = "repro_pool_tasks_total"
POOL_CHUNKS = "repro_pool_chunks_total"
POOL_CHUNK_SECONDS = "repro_pool_chunk_seconds"
POOL_DISPATCH_SECONDS = "repro_pool_dispatch_seconds"
BATCH_QUERIES = "repro_batch_queries_total"

# Fault-tolerance metrics (recorded by repro.exec.resilience).
POOL_RESPAWNS = "repro_pool_respawns_total"
CHUNK_RETRIES = "repro_exec_chunk_retries_total"
CHUNK_TIMEOUTS = "repro_exec_chunk_timeouts_total"
WORKER_CRASHES = "repro_exec_worker_crashes_total"
CHUNK_FALLBACKS = "repro_exec_chunk_fallbacks_total"
#: Gauge: 1 while the last parallel run needed the serial fallback,
#: else 0.  Reflected by the /healthz and /varz endpoints.
EXEC_DEGRADED = "repro_exec_degraded"

#: Gauge: resident-set size of the serving process in bytes
#: (refreshed by the /metrics and /varz endpoints).
PROCESS_RSS = "repro_process_rss_bytes"

# Guard-rail metrics (recorded by repro.guard consumers: the collection
# layer, the CLI serve loop and the query-serving endpoint).
GUARD_ADMITTED = "repro_guard_admitted_total"
GUARD_REJECTED = "repro_guard_rejected_total"
GUARD_SHED = "repro_guard_shed_total"
GUARD_BUDGET_EXCEEDED = "repro_guard_budget_exceeded_total"
#: Gauge: circuit-breaker state (0 closed, 1 half-open, 2 open).
GUARD_BREAKER_STATE = "repro_guard_breaker_state"

# Sharded on-disk index metrics (recorded by repro.storage.shards).
SHARD_BUILD_SECONDS = "repro_shard_build_seconds"
SHARD_BYTES_WRITTEN = "repro_shard_bytes_written_total"
SHARD_ATTACH_SECONDS = "repro_shard_attach_seconds"
SHARD_ATTACH_FAILURES = "repro_shard_attach_failures_total"
#: Gauge: shards successfully mapped by this process.
SHARDS_ATTACHED = "repro_shards_attached"
#: Gauge: bytes of shard files currently mapped (mmap or shm).
SHARD_BYTES_MAPPED = "repro_shard_bytes_mapped"
SHARD_DOCS_MATERIALIZED = "repro_shard_documents_materialized_total"
#: Histogram: distinct shards touched per routed query.
SHARD_ROUTER_FANOUT = "repro_shard_router_fanout"
SHARD_ROUTER_SKIPPED = "repro_shard_router_skipped_total"
#: Counter (labelled ``shard=``, ``reason=``): shards excluded from a
#: routed run — breaker-open, attach-failed, or mid-run eviction.
SHARD_ROUTER_EXCLUSIONS = "repro_shard_router_exclusions_total"
#: Counter (labelled ``shard=``): mid-run evictions whose documents
#: were rerouted to the serial fallback.
SHARD_ROUTER_REROUTES = "repro_shard_router_reroutes_total"
#: Gauge (labelled ``shard=``): per-shard breaker state
#: (0 closed, 1 half-open, 2 open), mirroring GUARD_BREAKER_STATE.
SHARD_BREAKER_STATE = "repro_shard_breaker_state"

# Live-mutation metrics (recorded by repro.storage.mutation and the
# epoch re-attach path in repro.exec.parallel).
MUTATION_WAL_RECORDS = "repro_mutation_wal_records_total"
MUTATION_WAL_BYTES = "repro_mutation_wal_bytes_total"
MUTATION_COMMITS = "repro_mutation_commits_total"
#: Gauge: the last committed epoch of the writable index.
MUTATION_EPOCH = "repro_mutation_epoch"
#: Gauge: distinct epochs currently pinned by in-flight readers.
MUTATION_EPOCHS_PINNED = "repro_mutation_epochs_pinned"
MUTATION_EPOCHS_GCED = "repro_mutation_epochs_gced_total"
MUTATION_COMPACTIONS = "repro_mutation_compactions_total"
MUTATION_RECOVERY_SECONDS = "repro_mutation_recovery_seconds"
#: Counter: WAL bytes discarded at recovery (torn or uncommitted tail).
MUTATION_WAL_TAIL_DISCARDED = "repro_mutation_wal_tail_discarded_total"
#: Gauge: documents living in the committed delta segment.
MUTATION_DELTA_DOCUMENTS = "repro_mutation_delta_documents"
#: Counter: pool workers that re-attached after an epoch change
#: (instead of a pool rebuild).
MUTATION_WORKER_REATTACH = "repro_mutation_worker_reattach_total"

# Baseline evaluators (repro.baselines) recorded by record_baseline().
BASELINE_QUERIES = "repro_baseline_queries_total"
BASELINE_LATENCY = "repro_baseline_latency_seconds"
BASELINE_ANSWERS = "repro_baseline_answers"


class Observability:
    """The live observability handle: tracer + metrics + query log.

    Parameters
    ----------
    tracer:
        A :class:`SpanTracer` (default) or :data:`NULL_TRACER` to keep
        metrics without spans.
    metrics:
        A :class:`MetricsRegistry` (default) or :data:`NULL_METRICS`.
    query_log:
        Optional :class:`QueryLog`; per-query records are appended by
        :meth:`record_query`.
    recorder:
        Optional :class:`FlightRecorder`; when present,
        ``strategies.evaluate`` folds a per-query
        :class:`QueryProfile` (resource attribution, §5
        predicted-vs-measured cost, tail-sampled trace) into it.
    """

    enabled = True

    __slots__ = ("tracer", "metrics", "query_log", "recorder")

    def __init__(self, tracer=None, metrics=None,
                 query_log: Optional[QueryLog] = None,
                 recorder: Optional[FlightRecorder] = None) -> None:
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.query_log = query_log
        self.recorder = recorder

    def span(self, name: str, stats=None, **attributes):
        """Open a span on the tracer (context manager)."""
        return self.tracer.span(name, stats=stats, **attributes)

    def record_query(self, *, document: str, terms: Sequence[str],
                     filter: str, strategy: str, answers: int,
                     elapsed: float, stats: Optional[Mapping] = None,
                     plan: Optional[str] = None) -> Optional[QueryRecord]:
        """Fold one finished query into metrics and the query log.

        Called by ``strategies.evaluate`` once per query; ``elapsed`` is
        in seconds, ``stats`` the plain-dict operation counters.
        """
        m = self.metrics
        m.counter(QUERIES_TOTAL, "Queries evaluated.").inc()
        m.counter(QUERIES_BY_STRATEGY, "Queries evaluated per strategy.",
                  labels={"strategy": strategy}).inc()
        m.histogram(QUERY_LATENCY, "End-to-end query latency.",
                    buckets=LATENCY_BUCKETS).observe(elapsed)
        m.histogram(QUERY_FRAGMENTS, "Answer fragments per query."
                    ).observe(answers)
        counters = dict(stats) if stats else {}
        joins = counters.get("fragment_joins", 0)
        cache_hits = counters.get("join_cache_hits", 0)
        discarded = counters.get("fragments_discarded", 0)
        m.counter(FRAGMENT_JOINS, "Fragment joins computed.").inc(joins)
        m.counter(JOIN_CACHE_HITS, "Joins answered from the memo cache."
                  ).inc(cache_hits)
        m.counter(PREDICATE_CHECKS, "Filter evaluations performed."
                  ).inc(counters.get("predicate_checks", 0))
        m.counter(SUBSET_CHECKS, "Fragment containment tests."
                  ).inc(counters.get("subset_checks", 0))
        m.counter(FRAGMENTS_DISCARDED,
                  "Fragments pruned by pushed-down selections."
                  ).inc(discarded)
        if joins + cache_hits:
            m.histogram(JOIN_CACHE_HIT_RATIO,
                        "Per-query join-cache hit ratio.",
                        buckets=RATIO_BUCKETS
                        ).observe(cache_hits / (joins + cache_hits))
        if discarded + answers:
            m.histogram(REDUCTION_FACTOR,
                        "Fraction of candidate fragments pruned early.",
                        buckets=RATIO_BUCKETS
                        ).observe(discarded / (discarded + answers))
        if self.query_log is not None:
            record = self.query_log.record(
                document=document, terms=terms, filter=filter,
                strategy=strategy, answers=answers, elapsed=elapsed,
                stats=counters, plan=plan)
            if record.slow:
                m.counter(SLOW_QUERIES,
                          "Queries at or over the slow threshold.").inc()
            return record
        return None

    def record_baseline(self, *, baseline: str, document: str,
                        terms: Sequence[str], answers: int,
                        elapsed: float) -> None:
        """Fold one finished baseline evaluation into metrics.

        Called by the :mod:`repro.baselines` entry points so
        baseline-vs-algebra bench comparisons share one registry;
        every series carries a ``baseline=`` label.
        """
        m = self.metrics
        labels = {"baseline": baseline}
        m.counter(BASELINE_QUERIES, "Baseline queries evaluated.",
                  labels=labels).inc()
        m.histogram(BASELINE_LATENCY, "Baseline query latency.",
                    buckets=LATENCY_BUCKETS, labels=labels
                    ).observe(elapsed)
        m.histogram(BASELINE_ANSWERS, "Baseline answers per query.",
                    labels=labels).observe(answers)


class _NoopObservability(Observability):
    """Observability disabled: shared null tracer/metrics, no log.

    A singleton (:data:`NOOP`); ``span()`` returns the allocation-free
    shared null span and ``record_query()`` does nothing.
    """

    enabled = False

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(tracer=NULL_TRACER, metrics=NULL_METRICS,
                         query_log=None)

    def span(self, name: str, stats=None, **attributes):
        return NULL_SPAN

    def record_query(self, **kwargs) -> None:
        return None

    def record_baseline(self, **kwargs) -> None:
        return None


#: The shared disabled handle every ``obs=`` parameter defaults to.
NOOP = _NoopObservability()
