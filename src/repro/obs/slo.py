"""Declarative SLOs evaluated as burn rates over the metrics history
(``repro.obs.slo``).

An :class:`Objective` states a bound on a time-series aggregate —
"query p99 < 250 ms", "budget-exceeded ratio < 5%", "degraded gauge
< 1" — and the :class:`SLOMonitor` re-evaluates every objective after
each history sample as two trailing windows:

* the **fast window** (default 60 s) reacts within a couple of sampler
  intervals, so an incident raises an alert quickly;
* the **slow window** (default 300 s) must *also* be burning before an
  alert escalates to critical, which suppresses one-interval blips
  (the classic multi-window burn-rate recipe from SRE practice).

The *burn rate* is ``measured / threshold``: 1.0 means exactly at the
objective, 2.0 means failing twice as fast as allowed.  States move
``ok → warning → critical`` immediately on worsening, but only step
back down after ``clear_intervals`` consecutive clean evaluations
(hysteresis — a flapping series does not flap the alert).

Transitions fan out to listeners; :mod:`repro.obs.server` uses them to
flip ``/healthz`` to degraded and, when feedback is enabled, to
tighten :class:`~repro.guard.AdmissionPolicy` and pre-trip suspect
:class:`~repro.storage.shards.ShardRouter` breakers — the observe →
decide loop.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from .history import MetricsHistory

__all__ = [
    "OK", "WARNING", "CRITICAL", "ALERT_STATE_CODES",
    "FEEDBACK_TIGHTEN_ADMISSION", "FEEDBACK_TRIP_BREAKERS",
    "Objective", "AlertState", "SLOMonitor", "parse_slo",
    "SLO_STATE", "SLO_BURN_RATE",
]

OK = "ok"
WARNING = "warning"
CRITICAL = "critical"

#: Numeric encoding for the ``repro_slo_state`` gauge.
ALERT_STATE_CODES = {OK: 0, WARNING: 1, CRITICAL: 2}

#: Gauge: per-objective alert state (labels: ``slo``).
SLO_STATE = "repro_slo_state"
#: Gauge: per-objective burn rate (labels: ``slo``, ``window``).
SLO_BURN_RATE = "repro_slo_burn_rate"

#: Feedback actions an objective may request on critical.
FEEDBACK_TIGHTEN_ADMISSION = "tighten-admission"
FEEDBACK_TRIP_BREAKERS = "trip-breakers"
_FEEDBACK_ACTIONS = (FEEDBACK_TIGHTEN_ADMISSION, FEEDBACK_TRIP_BREAKERS)

KIND_QUANTILE = "quantile"
KIND_RATIO = "ratio"
KIND_GAUGE = "gauge"
_KINDS = (KIND_QUANTILE, KIND_RATIO, KIND_GAUGE)


@dataclass(frozen=True)
class Objective:
    """One service-level objective over the metrics history.

    ``kind`` selects how ``metric`` is measured per window:

    - ``"quantile"``: the ``q``-quantile of a histogram series must
      stay below ``threshold`` (seconds, bytes, … — the histogram's
      unit).
    - ``"ratio"``: counter movement of ``metric`` divided by that of
      ``total_metric`` must stay below ``threshold`` (a fraction).
    - ``"gauge"``: the worst (max) gauge value in the window must stay
      below ``threshold``.
    """

    name: str
    kind: str
    metric: str
    threshold: float
    q: float = 0.99
    total_metric: Optional[str] = None
    labels: Optional[Mapping[str, str]] = None
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0
    warning_burn: float = 1.0
    critical_burn: float = 2.0
    clear_intervals: int = 3
    feedback: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.kind == KIND_QUANTILE and not 0.0 < self.q < 1.0:
            raise ValueError("q must be in (0, 1)")
        if self.kind == KIND_RATIO and not self.total_metric:
            raise ValueError("ratio objectives need total_metric")
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ValueError("windows must be positive")
        if self.slow_window_s < self.fast_window_s:
            raise ValueError("slow window must cover the fast window")
        if self.clear_intervals < 1:
            raise ValueError("clear_intervals must be >= 1")
        for action in self.feedback:
            if action not in _FEEDBACK_ACTIONS:
                raise ValueError(f"unknown feedback action {action!r}")

    def measure(self, history: MetricsHistory,
                window_s: float) -> Optional[float]:
        """The objective's value over one trailing window, or ``None``
        when the history has no data yet (no-data never alerts)."""
        if self.kind == KIND_QUANTILE:
            return history.quantile(self.metric, self.q,
                                    window_s=window_s,
                                    labels=self.labels)
        if self.kind == KIND_RATIO:
            total = history.delta(self.total_metric, window_s=window_s)
            if not total:
                return None
            bad = history.delta(self.metric, window_s=window_s,
                                labels=self.labels) or 0.0
            return bad / total
        return history.last(self.metric, labels=self.labels,
                            window_s=window_s)

    def describe(self) -> str:
        if self.kind == KIND_QUANTILE:
            expr = f"p{self.q * 100:g}({self.metric})"
        elif self.kind == KIND_RATIO:
            expr = f"ratio({self.metric}/{self.total_metric})"
        else:
            expr = f"gauge({self.metric})"
        return f"{expr} < {self.threshold:g}"

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "metric": self.metric, "threshold": self.threshold,
                "q": self.q, "total_metric": self.total_metric,
                "labels": dict(self.labels) if self.labels else None,
                "fast_window_s": self.fast_window_s,
                "slow_window_s": self.slow_window_s,
                "warning_burn": self.warning_burn,
                "critical_burn": self.critical_burn,
                "clear_intervals": self.clear_intervals,
                "feedback": list(self.feedback),
                "expr": self.describe()}


class AlertState:
    """Mutable evaluation record for one objective."""

    __slots__ = ("objective", "state", "since", "fast_value",
                 "slow_value", "fast_burn", "slow_burn", "transitions",
                 "evaluations", "_clear_streak")

    def __init__(self, objective: Objective) -> None:
        self.objective = objective
        self.state = OK
        self.since: Optional[float] = None
        self.fast_value: Optional[float] = None
        self.slow_value: Optional[float] = None
        self.fast_burn: Optional[float] = None
        self.slow_burn: Optional[float] = None
        self.transitions = 0
        self.evaluations = 0
        self._clear_streak = 0

    def to_dict(self) -> dict:
        return {"name": self.objective.name,
                "expr": self.objective.describe(),
                "state": self.state,
                "state_code": ALERT_STATE_CODES[self.state],
                "since": self.since,
                "fast_window_s": self.objective.fast_window_s,
                "slow_window_s": self.objective.slow_window_s,
                "fast_value": self.fast_value,
                "slow_value": self.slow_value,
                "fast_burn": self.fast_burn,
                "slow_burn": self.slow_burn,
                "transitions": self.transitions,
                "evaluations": self.evaluations,
                "feedback": list(self.objective.feedback)}


class SLOMonitor:
    """Evaluates objectives against a :class:`MetricsHistory` and
    tracks alert states with hysteresis.

    Attach to a history with :meth:`attach` (the sampler then drives
    evaluation), or call :meth:`evaluate` directly from tests with a
    fake clock.  Transition listeners receive ``(alert_state,
    previous_state_str)`` and run outside the monitor lock.
    """

    def __init__(self, history: MetricsHistory,
                 objectives: Sequence[Objective],
                 metrics=None,
                 clock: Callable[[], float] = time.time) -> None:
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        self.history = history
        self._metrics = metrics
        self._clock = clock
        self._lock = threading.Lock()
        self._states = {o.name: AlertState(o) for o in objectives}
        self._listeners: list[Callable[[AlertState, str], None]] = []
        self._evaluations = 0
        self._attached = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    @property
    def objectives(self) -> list[Objective]:
        return [s.objective for s in self._states.values()]

    def add_listener(self, listener: Callable[[AlertState, str],
                                              None]) -> None:
        self._listeners.append(listener)

    def attach(self) -> "SLOMonitor":
        """Evaluate after every history sample (idempotent)."""
        if not self._attached:
            self.history.add_listener(
                lambda _history, now: self.evaluate(now))
            self._attached = True
        return self

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, now: Optional[float] = None) -> dict[str, str]:
        """Re-measure every objective; returns ``{name: state}``.

        Escalation is immediate; de-escalation waits for
        ``clear_intervals`` consecutive evaluations at the lower
        severity.  Critical additionally requires the *slow* window to
        be burning (>= 1.0), so a single hot interval tops out at
        warning.
        """
        now = self._clock() if now is None else float(now)
        transitions: list[tuple[AlertState, str]] = []
        with self._lock:
            for state in self._states.values():
                objective = state.objective
                state.evaluations += 1
                state.fast_value = objective.measure(
                    self.history, objective.fast_window_s)
                state.slow_value = objective.measure(
                    self.history, objective.slow_window_s)
                state.fast_burn = (
                    None if state.fast_value is None
                    else state.fast_value / objective.threshold)
                state.slow_burn = (
                    None if state.slow_value is None
                    else state.slow_value / objective.threshold)
                desired = self._desired(objective, state.fast_burn,
                                        state.slow_burn)
                previous = state.state
                if _severity(desired) > _severity(previous):
                    state.state = desired
                    state.since = now
                    state.transitions += 1
                    state._clear_streak = 0
                    transitions.append((state, previous))
                elif _severity(desired) < _severity(previous):
                    state._clear_streak += 1
                    if state._clear_streak >= objective.clear_intervals:
                        state.state = desired
                        state.since = now
                        state.transitions += 1
                        state._clear_streak = 0
                        transitions.append((state, previous))
                else:
                    state._clear_streak = 0
            self._evaluations += 1
            snapshot = {name: s.state for name, s in self._states.items()}
        self._publish()
        for state, previous in transitions:
            for listener in list(self._listeners):
                listener(state, previous)
        return snapshot

    @staticmethod
    def _desired(objective: Objective, fast_burn: Optional[float],
                 slow_burn: Optional[float]) -> str:
        if fast_burn is None:
            return OK  # no data is not an outage
        if fast_burn >= objective.critical_burn \
                and slow_burn is not None and slow_burn >= 1.0:
            return CRITICAL
        if fast_burn >= objective.warning_burn:
            return WARNING
        return OK

    def _publish(self) -> None:
        if self._metrics is None:
            return
        for state in self._states.values():
            name = state.objective.name
            self._metrics.gauge(
                SLO_STATE, "SLO alert state (0 ok, 1 warning, "
                "2 critical).", labels={"slo": name},
            ).set(ALERT_STATE_CODES[state.state])
            if state.fast_burn is not None:
                self._metrics.gauge(
                    SLO_BURN_RATE, "SLO burn rate (measured / "
                    "threshold).", labels={"slo": name,
                                           "window": "fast"},
                ).set(state.fast_burn)
            if state.slow_burn is not None:
                self._metrics.gauge(
                    SLO_BURN_RATE, "SLO burn rate (measured / "
                    "threshold).", labels={"slo": name,
                                           "window": "slow"},
                ).set(state.slow_burn)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def state_of(self, name: str) -> AlertState:
        return self._states[name]

    @property
    def worst_state(self) -> str:
        with self._lock:
            worst = OK
            for state in self._states.values():
                if _severity(state.state) > _severity(worst):
                    worst = state.state
            return worst

    @property
    def critical(self) -> bool:
        return self.worst_state == CRITICAL

    def snapshot(self) -> dict:
        """The ``GET /alertz`` response document."""
        with self._lock:
            alerts = [s.to_dict() for s in self._states.values()]
        worst = OK
        for alert in alerts:
            if _severity(alert["state"]) > _severity(worst):
                worst = alert["state"]
        return {"enabled": True, "state": worst,
                "evaluations": self._evaluations,
                "objectives": len(alerts), "alerts": alerts}

    def __repr__(self) -> str:
        return (f"SLOMonitor(objectives={len(self._states)}, "
                f"state={self.worst_state!r})")


def _severity(state: str) -> int:
    return ALERT_STATE_CODES[state]


# ----------------------------------------------------------------------
# Compact spec parsing (the --slo CLI flag)
# ----------------------------------------------------------------------

_SPEC_RE = re.compile(
    r"""^\s*
    (?:(?P<name>[A-Za-z0-9_.-]+)\s*:)?\s*
    (?:
        p(?P<q>\d+(?:\.\d+)?)\s*\(\s*(?P<qmetric>[A-Za-z0-9_:]+)\s*\)
      | ratio\s*\(\s*(?P<num>[A-Za-z0-9_:]+)\s*/\s*
              (?P<den>[A-Za-z0-9_:]+)\s*\)
      | gauge\s*\(\s*(?P<gmetric>[A-Za-z0-9_:]+)\s*\)
    )
    \s*<\s*(?P<threshold>[0-9.eE+-]+)\s*
    (?P<options>(?:;[^;]*)*)
    $""", re.VERBOSE)

_OPTION_KEYS = {
    "fast": ("fast_window_s", float),
    "slow": ("slow_window_s", float),
    "warn": ("warning_burn", float),
    "critical": ("critical_burn", float),
    "clear": ("clear_intervals", int),
}


def parse_slo(spec: str) -> Objective:
    """Parse a compact objective spec.

    Grammar (whitespace-insensitive)::

        [name:] p99(metric)        < threshold [; key=value ...]
        [name:] ratio(bad/total)   < threshold [; key=value ...]
        [name:] gauge(metric)      < threshold [; key=value ...]

    Options: ``fast=SECONDS``, ``slow=SECONDS``, ``warn=BURN``,
    ``critical=BURN``, ``clear=N``,
    ``feedback=tighten-admission+trip-breakers``.

    Examples::

        p99(repro_query_latency_seconds) < 0.25
        errors: ratio(repro_guard_budget_exceeded_total /
                      repro_queries_total) < 0.05; fast=30; slow=120
        gauge(repro_exec_degraded) < 1; feedback=trip-breakers
    """
    match = _SPEC_RE.match(spec)
    if not match:
        raise ValueError(f"unparseable SLO spec: {spec!r}")
    groups = match.groupdict()
    kwargs: dict = {}
    if groups["qmetric"]:
        kind = KIND_QUANTILE
        metric = groups["qmetric"]
        kwargs["q"] = float(groups["q"]) / 100.0
        default_name = f"p{groups['q']}-{metric}"
    elif groups["num"]:
        kind = KIND_RATIO
        metric = groups["num"]
        kwargs["total_metric"] = groups["den"]
        default_name = f"ratio-{metric}"
    else:
        kind = KIND_GAUGE
        metric = groups["gmetric"]
        default_name = f"gauge-{metric}"
    try:
        threshold = float(groups["threshold"])
    except ValueError:
        raise ValueError(f"bad threshold in SLO spec: {spec!r}")
    for chunk in (groups["options"] or "").split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(f"bad SLO option {chunk!r} in {spec!r}")
        key, _, value = chunk.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key == "feedback":
            kwargs["feedback"] = tuple(
                part.strip() for part in value.split("+") if part.strip())
        elif key in _OPTION_KEYS:
            attr, cast = _OPTION_KEYS[key]
            kwargs[attr] = cast(value)
        else:
            raise ValueError(f"unknown SLO option {key!r} in {spec!r}")
    return Objective(name=groups["name"] or default_name, kind=kind,
                     metric=metric, threshold=threshold, **kwargs)
