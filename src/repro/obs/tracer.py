"""Span tracing for the query lifecycle.

A :class:`SpanTracer` records a tree of named, timed *spans* — one per
lifecycle phase (parse, plan, optimize, execute, rank) or per interesting
sub-step inside a phase.  Each span carries free-form attributes and,
when given an :class:`~repro.core.stats.OperationStats` tally, the
*delta* of primitive-operation counters accumulated while the span was
open, so logical work lands next to wall time in the same tree.

Spans are context managers::

    tracer = SpanTracer()
    with tracer.span("execute", strategy="pushdown", stats=stats) as sp:
        with tracer.span("scan", stats=stats):
            ...
        sp.set(answers=4)
    print(tracer.render())

Tracing off is the common case, so the disabled path is a shared
:data:`NULL_SPAN` singleton: entering/exiting it allocates nothing and
records nothing.  Code that takes an observability handle never needs an
``if tracing:`` branch.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.stats import OperationStats

__all__ = ["Span", "SpanTracer", "NullTracer", "NULL_SPAN", "NULL_TRACER"]


class Span:
    """One timed, attributed node of the trace tree.

    Created by :meth:`SpanTracer.span`; becomes live between
    ``__enter__`` and ``__exit__``.  ``work`` holds the non-zero
    primitive-operation deltas measured over the span's lifetime when an
    ``OperationStats`` tally was attached.
    """

    __slots__ = ("name", "attributes", "children", "started", "ended",
                 "work", "_tracer", "_stats", "_before")

    def __init__(self, tracer: "SpanTracer", name: str,
                 attributes: dict, stats: Optional["OperationStats"]) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.started = 0.0
        self.ended = 0.0
        self.work: dict = {}
        self._tracer = tracer
        self._stats = stats
        self._before: Optional["OperationStats"] = None

    def set(self, **attributes) -> "Span":
        """Attach or overwrite attributes on a live (or closed) span."""
        self.attributes.update(attributes)
        return self

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit."""
        return max(0.0, self.ended - self.started)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        parent = tracer._stack[-1] if tracer._stack else None
        if parent is not None:
            parent.children.append(self)
        else:
            tracer.roots.append(self)
        tracer._stack.append(self)
        if self._stats is not None:
            self._before = self._stats.snapshot()
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.ended = time.perf_counter()
        if self._before is not None:
            delta = self._stats.delta(self._before)
            self.work = {key: value for key, value
                         in delta.as_dict().items() if value}
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        return False

    def walk(self, depth: int = 0):
        """Yield ``(span, depth)`` pairs, preorder."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self, epoch: Optional[float] = None) -> dict:
        """Nested-dict form (children inline).

        With ``epoch`` (a ``perf_counter`` reference, usually the root
        span's own ``started``), each node also records ``start_ms`` —
        its start offset from the epoch — so rehydration and timeline
        exports (Chrome trace events) keep real intra-tree timing
        instead of laying siblings out end-to-end.
        """
        record = {"name": self.name, "duration_ms": self.duration * 1000}
        if epoch is not None and self.started:
            record["start_ms"] = max(0.0, (self.started - epoch) * 1000)
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.work:
            record["work"] = dict(self.work)
        if self.children:
            record["children"] = [c.to_dict(epoch=epoch)
                                  for c in self.children]
        return record

    @classmethod
    def from_dict(cls, data: dict, tracer: "SpanTracer") -> "Span":
        """Rehydrate a closed span (tree) from its :meth:`to_dict` form.

        The reverse direction of serialization: a pool worker ships its
        span trees as plain dicts and the parent rebuilds real
        :class:`Span` objects so rendering, walking and JSONL export
        treat remote spans exactly like local ones.  Rehydrated spans
        are already closed — ``started`` is pinned to the recorded
        ``start_ms`` offset (0 when the dump predates offsets) so
        ``duration`` reproduces the recorded wall time and relative
        positions survive when present.
        """
        span = cls(tracer, data["name"],
                   dict(data.get("attributes", ())), stats=None)
        span.started = float(data.get("start_ms", 0.0)) / 1000.0
        span.ended = span.started + \
            float(data.get("duration_ms", 0.0)) / 1000.0
        span.work = dict(data.get("work", ()))
        span.children = [cls.from_dict(child, tracer)
                         for child in data.get("children", ())]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span(name={self.name!r}, "
                f"duration_ms={self.duration * 1000:.3f}, "
                f"children={len(self.children)})")


class _NullSpan:
    """The disabled span: a reusable, allocation-free context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes) -> "_NullSpan":
        return self


#: Shared no-op span; every disabled ``span()`` call returns this object.
NULL_SPAN = _NullSpan()


class SpanTracer:
    """Collects a forest of spans for one traced run.

    Attributes
    ----------
    roots:
        Top-level spans, in start order.  Nested ``span()`` calls attach
        to the innermost open span instead.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, stats: Optional["OperationStats"] = None,
             **attributes) -> Span:
        """A new span; use as a context manager to open/close it."""
        return Span(self, name, attributes, stats)

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        """Drop every recorded span."""
        self.roots.clear()
        self._stack.clear()

    def attach(self, span: Span) -> None:
        """Graft an already-closed span (tree) into the current position.

        The span becomes a child of the innermost open span, or a new
        root when no span is open — how rehydrated worker span trees
        land inside the parent's ``parallel-search`` span.
        """
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)

    def adopt(self, dicts, **attributes) -> list[Span]:
        """Rehydrate serialized span trees and :meth:`attach` each one.

        ``attributes`` (e.g. ``worker="3"``) are stamped onto every
        adopted root so remote spans stay distinguishable in the merged
        tree.  Returns the adopted root spans.
        """
        adopted = []
        for data in dicts:
            span = Span.from_dict(data, self)
            if attributes:
                span.attributes.update(attributes)
            self.attach(span)
            adopted.append(span)
        return adopted

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------

    def walk(self):
        """Yield ``(span, depth)`` over the whole forest, preorder."""
        for root in self.roots:
            yield from root.walk()

    def render(self, indent: str = "  ") -> str:
        """Human-readable tree, one span per line.

        Example::

            execute strategy=pushdown          2.13ms  joins=14
              scan                             0.21ms
              strategy:pushdown                1.80ms  joins=14
        """
        entries = []
        for span, depth in self.walk():
            attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
            label = f"{indent * depth}{span.name}" + (f" {attrs}" if attrs
                                                      else "")
            entries.append((label, span))
        width = max((len(label) for label, _ in entries), default=0) + 2
        lines = []
        for label, span in entries:
            work = "  ".join(f"{k}={v}" for k, v in span.work.items())
            line = (f"{label.ljust(width)}{span.duration * 1000:8.2f}ms"
                    + (f"  {work}" if work else ""))
            lines.append(line)
        return "\n".join(lines)

    def to_dicts(self) -> list[dict]:
        """Nested-dict form of every root span."""
        return [root.to_dict() for root in self.roots]

    def to_jsonl(self) -> str:
        """One flat JSON object per span (``depth`` preserves nesting)."""
        lines = []
        for span, depth in self.walk():
            record = {"name": span.name, "depth": depth,
                      "duration_ms": span.duration * 1000}
            if span.attributes:
                record["attributes"] = dict(span.attributes)
            if span.work:
                record["work"] = dict(span.work)
            lines.append(json.dumps(record, sort_keys=True, default=str))
        return "\n".join(lines)


class NullTracer:
    """Tracing disabled: ``span()`` hands back the shared null span."""

    enabled = False
    roots: tuple = ()

    __slots__ = ()

    def span(self, name: str, stats: Optional["OperationStats"] = None,
             **attributes) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def clear(self) -> None:
        pass

    def attach(self, span) -> None:
        pass

    def adopt(self, dicts, **attributes) -> list:
        return []

    def walk(self):
        return iter(())

    def render(self, indent: str = "  ") -> str:
        return ""

    def to_dicts(self) -> list:
        return []

    def to_jsonl(self) -> str:
        return ""


#: Shared disabled tracer.
NULL_TRACER = NullTracer()
