"""Query flight recorder (``repro.obs.recorder``).

A :class:`FlightRecorder` keeps an always-on, bounded post-mortem
record of every evaluated query — the observability gap the metrics
registry and the query log leave open: counters aggregate away the one
bad request, and full span trees for *all* traffic would be O(traffic)
memory.  The recorder is O(ring size) by construction:

* every query becomes one :class:`QueryProfile` in a bounded ring —
  wall and CPU seconds, join ops / cache hits / budget checkpoints,
  the chosen strategy, the Section-5 *predicted* plan cost next to the
  *measured* operation count, and (opt-in) the ``tracemalloc``
  high-water mark;
* **tail-based trace sampling**: the full span tree is retained only
  for queries that are slow, budget-aborted, errored, or randomly
  head-sampled at a configurable rate.  Everything else contributes to
  the latency / result-size / cost-error histograms and is dropped;
* retained traces are stored pre-converted to **Chrome trace-event**
  JSON (load the export in ``chrome://tracing`` or Perfetto);
* profiles produced inside pool workers ship in-band through
  :mod:`repro.obs.delta` and are folded into the parent recorder with
  ``worker=N`` provenance, so one ring covers the whole process tree.

The recorder deliberately owns no metrics registry: callers pass the
one they want populated (``observe(..., metrics=obs.metrics)``), which
keeps worker-side recorders additive under the delta merge — workers
feed histograms and the predicted/actual cost *counters* (both merge
additively); only the parent publishes the non-additive
``repro_cost_calibration_ratio`` gauge, recomputed from its running
sums (:meth:`FlightRecorder.publish_calibration`).
"""

from __future__ import annotations

import atexit
import io
import json
import os
import signal
import threading
import time
import tracemalloc
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional, Sequence

from .metrics import (COST_ERROR_BUCKETS, LATENCY_LOG_BUCKETS,
                      SIZE_LOG_BUCKETS)

__all__ = ["RecorderConfig", "QueryProfile", "FlightRecorder",
           "load_dump", "span_to_events",
           "RECORDER_LATENCY", "RECORDER_RESULT_SIZE", "COST_ERROR",
           "COST_CALIBRATION", "COST_PREDICTED", "COST_ACTUAL",
           "PROFILES_RECORDED", "PROFILES_EVICTED", "TRACES_RETAINED",
           "TRACES_DROPPED"]

# Metric names owned by the recorder (re-exported by repro.obs).
RECORDER_LATENCY = "repro_recorder_latency_seconds"
RECORDER_RESULT_SIZE = "repro_recorder_result_size"
COST_ERROR = "repro_cost_error_ratio"
COST_CALIBRATION = "repro_cost_calibration_ratio"
COST_PREDICTED = "repro_cost_predicted_total"
COST_ACTUAL = "repro_cost_actual_total"
PROFILES_RECORDED = "repro_recorder_profiles_total"
PROFILES_EVICTED = "repro_recorder_profiles_evicted_total"
TRACES_RETAINED = "repro_recorder_traces_retained_total"
TRACES_DROPPED = "repro_recorder_traces_dropped_total"

#: Stats counters summed into a profile's *measured* cost — the same
#: "primitive operations" currency the Section-5 ``CostEstimate`` prices
#: (keyword probes, join pair work, filter checks), so the calibration
#: ratio compares like with like.
_COST_COUNTERS = ("fragment_joins", "join_cache_hits",
                  "predicate_checks", "subset_checks",
                  "fragments_discarded")

# Retention reasons, in the order they are tried.
RETAIN_BUDGET = "budget-exceeded"
RETAIN_ERROR = "error"
RETAIN_SLOW = "slow"
RETAIN_HEAD = "head-sample"


@dataclass(frozen=True)
class RecorderConfig:
    """Tuning knobs for one :class:`FlightRecorder`.

    Parameters
    ----------
    ring_size:
        Profiles retained in the ring (oldest evicted first).
    max_traces:
        Full span trees retained; beyond it the oldest trace is
        dropped (the profile keeps its ``trace_id`` but the trace body
        is gone — ``repro_recorder_traces_dropped_total`` counts this).
    slow_ms:
        Tail-sampling threshold: queries at or over this latency keep
        their trace.  ``None`` disables the slow rule.
    sample_rate:
        Head-sampling probability in ``[0, 1]``: this fraction of
        *healthy, fast* queries also keeps a trace, so the recorder
        sees normal traffic too, not just the tail.
    track_memory:
        Opt-in ``tracemalloc`` high-water tracking per query.  Starts
        ``tracemalloc`` lazily; meaningful for one query at a time
        (the peak is process-wide) and costs real time — keep it off
        on hot serving paths.
    seed:
        Seed for the head-sampling RNG (deterministic tests).
    """

    ring_size: int = 512
    max_traces: int = 32
    slow_ms: Optional[float] = 100.0
    sample_rate: float = 0.0
    track_memory: bool = False
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        if self.max_traces < 0:
            raise ValueError("max_traces must be >= 0")
        if self.slow_ms is not None and self.slow_ms < 0:
            raise ValueError("slow_ms must be >= 0")
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")

    def to_dict(self) -> dict:
        return {"ring_size": self.ring_size,
                "max_traces": self.max_traces,
                "slow_ms": self.slow_ms,
                "sample_rate": self.sample_rate,
                "track_memory": self.track_memory,
                "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Mapping) -> "RecorderConfig":
        return cls(ring_size=int(data.get("ring_size", 512)),
                   max_traces=int(data.get("max_traces", 32)),
                   slow_ms=data.get("slow_ms", 100.0),
                   sample_rate=float(data.get("sample_rate", 0.0)),
                   track_memory=bool(data.get("track_memory", False)),
                   seed=data.get("seed"))


@dataclass(slots=True)
class QueryProfile:
    """Per-query resource attribution — one ring entry.

    Not frozen: one is built per query on the hot path, and the
    frozen-dataclass ``object.__setattr__`` init costs ~3x a plain
    one.  Treat instances as read-only records all the same; `ingest`
    is the single sanctioned mutation point (worker provenance).
    """

    ts: float
    query_id: str
    document: str
    terms: tuple[str, ...]
    filter: str
    strategy: str
    answers: int
    wall_ms: float
    cpu_ms: float
    outcome: str = "ok"
    reason: Optional[str] = None
    join_ops: int = 0
    cache_hits: int = 0
    checkpoints: int = 0
    stats: dict = field(default_factory=dict)
    predicted_cost: Optional[float] = None
    actual_cost: Optional[float] = None
    peak_memory_bytes: Optional[int] = None
    worker: Optional[str] = None
    shard: Optional[int] = None
    trace_id: Optional[str] = None
    retained: Optional[str] = None

    @property
    def cost_ratio(self) -> Optional[float]:
        """Measured / predicted cost, the per-query calibration sample."""
        if self.predicted_cost and self.actual_cost is not None:
            return self.actual_cost / self.predicted_cost
        return None

    def to_dict(self) -> dict:
        record = {
            "ts": round(self.ts, 6),
            "query_id": self.query_id,
            "document": self.document,
            "terms": list(self.terms),
            "filter": self.filter,
            "strategy": self.strategy,
            "answers": self.answers,
            "wall_ms": round(self.wall_ms, 4),
            "cpu_ms": round(self.cpu_ms, 4),
            "outcome": self.outcome,
            "join_ops": self.join_ops,
            "cache_hits": self.cache_hits,
            "checkpoints": self.checkpoints,
            "stats": dict(self.stats),
        }
        for key in ("reason", "predicted_cost", "actual_cost",
                    "peak_memory_bytes", "worker", "shard", "trace_id",
                    "retained"):
            value = getattr(self, key)
            if value is not None:
                record[key] = value
        ratio = self.cost_ratio
        if ratio is not None:
            record["cost_ratio"] = round(ratio, 6)
        return record

    @classmethod
    def from_dict(cls, data: Mapping) -> "QueryProfile":
        return cls(
            ts=float(data.get("ts", 0.0)),
            query_id=str(data.get("query_id", "?")),
            document=data.get("document", "?"),
            terms=tuple(data.get("terms", ())),
            filter=data.get("filter", ""),
            strategy=data.get("strategy", "?"),
            answers=int(data.get("answers", 0)),
            wall_ms=float(data.get("wall_ms", 0.0)),
            cpu_ms=float(data.get("cpu_ms", 0.0)),
            outcome=data.get("outcome", "ok"),
            reason=data.get("reason"),
            join_ops=int(data.get("join_ops", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            checkpoints=int(data.get("checkpoints", 0)),
            stats=dict(data.get("stats", ())),
            predicted_cost=data.get("predicted_cost"),
            actual_cost=data.get("actual_cost"),
            peak_memory_bytes=data.get("peak_memory_bytes"),
            worker=data.get("worker"),
            shard=data.get("shard"),
            trace_id=data.get("trace_id"),
            retained=data.get("retained"))


def span_to_events(span, *, pid: int = 0, tid: int = 0,
                   origin: Optional[float] = None,
                   offset_us: float = 0.0) -> list[dict]:
    """Flatten one closed span (tree) into Chrome trace events.

    Live spans carry real ``perf_counter`` start times, so nested
    events land at their true offsets; rehydrated spans (``started``
    pinned, see :meth:`~repro.obs.tracer.Span.from_dict`) fall back to
    laying siblings out end-to-end.  Events are complete (``"ph": "X"``)
    with microsecond ``ts``/``dur`` — the units ``chrome://tracing``
    and Perfetto expect.
    """
    if origin is None:
        if span.started:
            origin = span.started
        elif any(child.started for child in span.children):
            # Rehydrated tree: root pinned to 0 but children carry
            # real start offsets (see Span.from_dict).
            origin = 0.0
    if origin is not None and span.started:
        ts_us = (span.started - origin) * 1e6
    else:
        ts_us = offset_us
    duration_us = max(0.0, span.duration * 1e6)
    args: dict = dict(span.attributes)
    if span.work:
        args["work"] = dict(span.work)
    event = {"name": span.name, "ph": "X", "pid": pid, "tid": tid,
             "ts": round(ts_us, 3), "dur": round(duration_us, 3)}
    if args:
        event["args"] = args
    events = [event]
    child_offset = ts_us
    for child in span.children:
        child_events = span_to_events(child, pid=pid, tid=tid,
                                      origin=origin,
                                      offset_us=child_offset)
        events.extend(child_events)
        child_offset = child_events[0]["ts"] + child_events[0]["dur"]
    return events


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class FlightRecorder:
    """Bounded per-query post-mortem ring with tail-sampled traces.

    Thread safety: all mutation and snapshots hold one lock; snapshots
    return copies, so the ``/debug/flightrecorder`` endpoint can read
    the ring from HTTP server threads while queries keep landing.
    """

    def __init__(self, config: Optional[RecorderConfig] = None,
                 worker_mode: bool = False,
                 clock: Callable[[], float] = time.time) -> None:
        self.config = config if config is not None else RecorderConfig()
        self.worker_mode = worker_mode
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque[QueryProfile] = deque(
            maxlen=self.config.ring_size)
        self._traces: "OrderedDict[str, dict]" = OrderedDict()
        self._seq = 0
        self.recorded = 0
        self.evicted = 0
        self.traces_retained = 0
        self.traces_dropped = 0
        # Per-strategy running sums: strategy -> [predicted, actual, n].
        self._cost_sums: dict[str, list[float]] = {}
        # Small memo for Section-5 plan costs (keyed by the caller).
        self._cost_cache: dict[tuple, float] = {}
        # Resolved metric instruments for the one registry this
        # recorder aggregates into; registry lookups take an RLock per
        # call, which dominates sub-millisecond queries.
        self._instr_for: Optional[object] = None
        self._instr: dict = {}
        import random
        self._rng = random.Random(self.config.seed)
        self._memory_on = False
        self._id_prefix = f"q{os.getpid():x}-"
        # Ambient attribution set by routing layers (e.g. which shard
        # the queries now being observed are running against).
        self._context: dict = {}

    def set_context(self, **fields) -> None:
        """Set ambient profile fields for subsequent :meth:`observe` calls.

        The shard router (and the sharded executor's workers) tag the
        queries they evaluate with ``shard=N`` this way; passing
        ``None`` clears a field.  Unknown keys are rejected to catch
        typos early.
        """
        for key, value in fields.items():
            if key not in ("shard",):
                raise ValueError(f"unknown recorder context field {key!r}")
            if value is None:
                self._context.pop(key, None)
            else:
                self._context[key] = value

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _next_id(self) -> str:
        self._seq += 1
        return self._id_prefix + format(self._seq, "06d")

    def _retain_reason(self, outcome: str,
                       wall_ms: float) -> Optional[str]:
        if outcome == "budget-exceeded":
            return RETAIN_BUDGET
        if outcome != "ok":
            return RETAIN_ERROR
        if self.config.slow_ms is not None \
                and wall_ms >= self.config.slow_ms:
            return RETAIN_SLOW
        if self.config.sample_rate > 0 \
                and self._rng.random() < self.config.sample_rate:
            return RETAIN_HEAD
        return None

    def measured_cost(self, stats: Mapping, answers: int) -> float:
        """A query's measured cost in Section-5 operation units."""
        total = float(answers)
        for key in _COST_COUNTERS:
            total += stats.get(key, 0)
        return max(1.0, total)

    def observe(self, *, metrics, document: str, terms: Sequence[str],
                filter: str, strategy: str, answers: int,
                elapsed: float, cpu_s: float = 0.0,
                stats: Optional[Mapping] = None, outcome: str = "ok",
                reason: Optional[str] = None,
                predicted_cost: Optional[float] = None,
                peak_memory: Optional[int] = None,
                checkpoints: int = 0,
                span=None) -> QueryProfile:
        """Fold one finished (or aborted) query into the recorder.

        ``metrics`` is the registry the aggregates land in (histograms
        always; the predicted/actual cost counters when a calibration
        sample exists).  ``span`` is the query's *closed* root span,
        serialized to Chrome events only if the tail/head sampling
        decision retains it.
        """
        if stats is None:
            counters = {}
        elif type(stats) is dict:
            counters = stats  # callers pass a fresh as_dict() snapshot
        else:
            counters = dict(stats)
        wall_ms = elapsed * 1000.0
        actual = (self.measured_cost(counters, answers)
                  if predicted_cost is not None else None)
        retained = self._retain_reason(outcome, wall_ms)
        with self._lock:
            query_id = self._next_id()
            trace_id = None
            if retained is not None and span is not None \
                    and self.config.max_traces > 0:
                trace_id = query_id
            profile = QueryProfile(
                ts=self._clock(), query_id=query_id, document=document,
                terms=tuple(terms), filter=filter, strategy=strategy,
                answers=answers, wall_ms=wall_ms, cpu_ms=cpu_s * 1000.0,
                outcome=outcome, reason=reason,
                join_ops=counters.get("fragment_joins", 0),
                cache_hits=counters.get("join_cache_hits", 0),
                checkpoints=checkpoints, stats=counters,
                predicted_cost=predicted_cost, actual_cost=actual,
                peak_memory_bytes=peak_memory,
                shard=self._context.get("shard"), trace_id=trace_id,
                retained=retained)
            self._append(profile)
            if trace_id is not None:
                self._retain_trace(trace_id, span, metrics)
            if predicted_cost:
                sums = self._cost_sums.setdefault(strategy,
                                                  [0.0, 0.0, 0])
                sums[0] += predicted_cost
                sums[1] += actual
                sums[2] += 1
        self._aggregate(metrics, profile)
        return profile

    def _append(self, profile: QueryProfile) -> None:
        """Ring append under the lock, counting evictions."""
        if len(self._ring) == self._ring.maxlen:
            self.evicted += 1
        self._ring.append(profile)
        self.recorded += 1

    def _retain_trace(self, trace_id: str, span, metrics) -> None:
        """Store one retained trace (Chrome events + tree) under the
        lock, evicting the oldest past ``max_traces``."""
        try:
            events = span_to_events(span, pid=os.getpid())
            tree = span.to_dict()
        except Exception:  # a half-broken span must not kill the query
            return
        self._traces[trace_id] = {"events": events, "spans": [tree]}
        self.traces_retained += 1
        while len(self._traces) > self.config.max_traces:
            self._traces.popitem(last=False)
            self.traces_dropped += 1
        if metrics.enabled:
            metrics.counter(
                TRACES_RETAINED,
                "Span trees retained by tail/head sampling.").inc()
            if self.traces_dropped:
                dropped = metrics.counter(
                    TRACES_DROPPED,
                    "Retained traces evicted past max_traces.")
                if dropped.value < self.traces_dropped:
                    dropped.inc(self.traces_dropped - dropped.value)

    def _instruments(self, metrics) -> dict:
        """Resolved instrument handles for *metrics* (memoized).

        A recorder aggregates into one registry for its lifetime (the
        parent's, or the worker's per-chunk one); re-resolving each
        instrument per query would pay the registry's get-or-create
        lock six times on the hot path.
        """
        if self._instr_for is not metrics:
            self._instr = {
                "recorded": metrics.counter(
                    PROFILES_RECORDED,
                    "Queries folded into the flight recorder."),
                "latency": metrics.histogram(
                    RECORDER_LATENCY,
                    "Per-query wall latency (flight recorder, "
                    "log buckets).",
                    buckets=LATENCY_LOG_BUCKETS),
                "size": metrics.histogram(
                    RECORDER_RESULT_SIZE,
                    "Answer fragments per query (log buckets).",
                    buckets=SIZE_LOG_BUCKETS),
                "cost": {},
            }
            self._instr_for = metrics
        return self._instr

    def _cost_instruments(self, metrics, strategy: str) -> tuple:
        cost = self._instruments(metrics)["cost"]
        found = cost.get(strategy)
        if found is None:
            labels = {"strategy": strategy}
            found = (
                metrics.histogram(
                    COST_ERROR,
                    "Measured/predicted Section-5 cost ratio per "
                    "query.",
                    buckets=COST_ERROR_BUCKETS, labels=labels),
                metrics.counter(
                    COST_PREDICTED,
                    "Summed Section-5 predicted plan cost.",
                    labels=labels),
                metrics.counter(
                    COST_ACTUAL,
                    "Summed measured operation cost.",
                    labels=labels),
            )
            cost[strategy] = found
        return found

    def _aggregate(self, metrics, profile: QueryProfile) -> None:
        """Histogram + counter aggregates for one profile.

        These land in whatever registry the caller serves; inside a
        pool worker that is the worker's registry, whose increments
        merge additively into the parent — so the parent must *not*
        re-aggregate ingested worker profiles (see :meth:`ingest`).
        """
        if not metrics.enabled:
            return
        instr = self._instruments(metrics)
        instr["recorded"].inc()
        instr["latency"].observe(profile.wall_ms / 1000)
        instr["size"].observe(profile.answers)
        ratio = profile.cost_ratio
        if ratio is not None:
            error, predicted, actual = self._cost_instruments(
                metrics, profile.strategy)
            error.observe(ratio)
            predicted.inc(profile.predicted_cost)
            actual.inc(profile.actual_cost)

    def publish_calibration(self, metrics) -> dict[str, float]:
        """Recompute and export the per-strategy calibration gauges.

        Returns ``{strategy: measured/predicted}`` over every sample
        this recorder has seen (its own and ingested worker ones).
        Called by parents only — the gauge is a ratio and must never
        travel through the additive delta merge.
        """
        with self._lock:
            sums = {s: list(v) for s, v in self._cost_sums.items()}
        ratios = {}
        for strategy, (predicted, actual, _) in sums.items():
            if predicted <= 0:
                continue
            ratio = actual / predicted
            ratios[strategy] = ratio
            if metrics is not None and metrics.enabled:
                metrics.gauge(
                    COST_CALIBRATION,
                    "Measured/predicted cost ratio per strategy "
                    "(running).",
                    labels={"strategy": strategy}).set(round(ratio, 6))
        return ratios

    # -- Section-5 plan-cost memo -------------------------------------

    def cached_cost(self, key: tuple,
                    compute: Callable[[], float]) -> float:
        """Memoized predicted plan cost (the estimate is deterministic
        per (document, query, strategy), and serve loops repeat)."""
        found = self._cost_cache.get(key)
        if found is None:
            found = compute()
            if len(self._cost_cache) >= 1024:
                self._cost_cache.clear()
            self._cost_cache[key] = found
        return found

    # -- opt-in memory high-water -------------------------------------

    def begin_memory(self) -> bool:
        """Arm the per-query ``tracemalloc`` peak; returns whether
        tracking is live (pass the token to :meth:`end_memory`)."""
        if not self.config.track_memory:
            return False
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._memory_on = True
        tracemalloc.reset_peak()
        return True

    def end_memory(self, token: bool) -> Optional[int]:
        """The peak traced bytes since :meth:`begin_memory`."""
        if not token or not tracemalloc.is_tracing():
            return None
        return tracemalloc.get_traced_memory()[1]

    def close(self) -> None:
        """Stop ``tracemalloc`` if this recorder started it."""
        if self._memory_on and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._memory_on = False

    # ------------------------------------------------------------------
    # Cross-process shipping (repro.obs.delta)
    # ------------------------------------------------------------------

    def drain(self) -> tuple[list[dict], dict]:
        """Remove and return ``(profile dicts, retained traces)``.

        Pool workers drain after each chunk so profiles and traces
        ship to the parent exactly once.
        """
        with self._lock:
            profiles = [p.to_dict() for p in self._ring]
            self._ring.clear()
            traces = dict(self._traces)
            self._traces.clear()
        return profiles, traces

    def ingest(self, profiles: Sequence[Mapping], traces: Mapping,
               worker: Optional[str] = None, metrics=None) -> None:
        """Fold a worker's drained profiles and traces into this ring.

        Histograms and cost counters are *not* re-aggregated — the
        worker already counted them into its own registry, whose delta
        merges additively next to this call.  Running calibration sums
        (and the gauges) are parent business and are updated here.
        """
        with self._lock:
            for data in profiles:
                profile = QueryProfile.from_dict(data)
                if worker is not None and profile.worker is None:
                    profile = replace(profile, worker=worker)
                self._append(profile)
                if profile.predicted_cost and \
                        profile.actual_cost is not None:
                    sums = self._cost_sums.setdefault(
                        profile.strategy, [0.0, 0.0, 0])
                    sums[0] += profile.predicted_cost
                    sums[1] += profile.actual_cost
                    sums[2] += 1
            for trace_id, body in traces.items():
                self._traces[trace_id] = body
                self.traces_retained += 1
                while len(self._traces) > self.config.max_traces:
                    self._traces.popitem(last=False)
                    self.traces_dropped += 1
        if metrics is not None:
            self.publish_calibration(metrics)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    @property
    def profiles(self) -> list[QueryProfile]:
        """Retained profiles, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._ring)

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def chrome_trace(self, trace_id: str) -> Optional[dict]:
        """One retained trace as a Chrome trace-event document."""
        with self._lock:
            body = self._traces.get(trace_id)
        if body is None:
            return None
        return {"traceEvents": list(body.get("events", ())),
                "displayTimeUnit": "ms",
                "metadata": {"trace_id": trace_id,
                             "recorder": "repro.obs.recorder"}}

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p90/p99 wall latency (ms) over the current ring."""
        values = sorted(p.wall_ms for p in self.profiles)
        return {"p50_ms": round(_percentile(values, 0.50), 4),
                "p90_ms": round(_percentile(values, 0.90), 4),
                "p99_ms": round(_percentile(values, 0.99), 4),
                "samples": len(values)}

    def snapshot(self, limit: int = 50) -> dict:
        """The ``/debug/flightrecorder`` document."""
        with self._lock:
            profiles = list(self._ring)[-limit:]
            trace_ids = list(self._traces)
            counts = {"recorded": self.recorded,
                      "evicted": self.evicted,
                      "in_ring": len(self._ring),
                      "traces_retained": self.traces_retained,
                      "traces_dropped": self.traces_dropped,
                      "traces_in_store": len(trace_ids)}
        outcomes: dict[str, int] = {}
        for profile in profiles:
            outcomes[profile.outcome] = outcomes.get(profile.outcome,
                                                     0) + 1
        return {"config": self.config.to_dict(),
                "counts": counts,
                "latency": self.latency_percentiles(),
                "calibration": self.publish_calibration(None),
                "outcomes": outcomes,
                "traces": trace_ids,
                "profiles": [p.to_dict() for p in profiles]}

    def to_jsonl(self) -> str:
        """The whole ring + retained traces, one JSON object per line."""
        with self._lock:
            profiles = list(self._ring)
            traces = dict(self._traces)
        buffer = io.StringIO()
        for profile in profiles:
            record = {"type": "profile"}
            record.update(profile.to_dict())
            buffer.write(json.dumps(record, sort_keys=False,
                                    default=str) + "\n")
        for trace_id, body in traces.items():
            buffer.write(json.dumps(
                {"type": "trace", "id": trace_id,
                 "events": body.get("events", []),
                 "spans": body.get("spans", [])},
                sort_keys=False, default=str) + "\n")
        return buffer.getvalue()

    def dump(self, path) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns lines written."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return text.count("\n")

    # ------------------------------------------------------------------
    # On-abort dump hook
    # ------------------------------------------------------------------

    def install_dump_hook(self, path,
                          signals: Sequence[int] = (signal.SIGTERM,)
                          ) -> Callable[[], None]:
        """Dump the ring to ``path`` on interpreter exit or a signal.

        Registers an :mod:`atexit` hook plus handlers for ``signals``
        that write the JSONL dump and then re-deliver the signal's
        previous disposition, so a crashed or killed ``serve`` process
        leaves a post-mortem artifact behind.  Returns an uninstaller
        (idempotent) that also removes the atexit hook.

        Idempotent and re-registration-safe: all hooks share one
        process-wide registry, so installing again for the *same*
        recorder (a long-lived process invoking ``serve`` repeatedly)
        replaces the previous registration instead of stacking a
        second dump, distinct recorders coexist and each dumps exactly
        once, the atexit hook and each signal handler are installed at
        most once per process, and uninstalling the last hook restores
        the original signal dispositions.
        """
        return _DUMP_HOOKS.install(self, path, signals)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return (f"FlightRecorder(ring={len(self)}/"
                f"{self.config.ring_size}, "
                f"traces={len(self.trace_ids())}, "
                f"recorded={self.recorded})")


class _DumpHookRegistry:
    """Process-wide ledger behind :meth:`FlightRecorder.install_dump_hook`.

    One atexit hook and one handler per signal are ever installed, no
    matter how many times hooks are (re)registered; each registered
    recorder dumps at most once; re-registering the same recorder
    replaces its previous entry (path and all); removing the last entry
    restores the original signal dispositions and unregisters the
    atexit hook, so a fresh install later re-arms cleanly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_token = 0
        #: token -> (recorder, dump path)
        self._entries: dict[int, tuple] = {}
        self._dumped: set[int] = set()
        #: id(recorder) -> its current token (re-registration replaces)
        self._token_by_recorder: dict[int, int] = {}
        self._atexit_armed = False
        #: signum -> the handler that was installed before ours
        self._previous: dict[int, object] = {}

    def install(self, recorder: FlightRecorder, path,
                signals: Sequence[int]) -> Callable[[], None]:
        with self._lock:
            stale = self._token_by_recorder.pop(id(recorder), None)
            if stale is not None:
                self._entries.pop(stale, None)
                self._dumped.discard(stale)
            token = self._next_token
            self._next_token += 1
            self._entries[token] = (recorder, path)
            self._token_by_recorder[id(recorder)] = token
            if not self._atexit_armed:
                atexit.register(self._dump_all)
                self._atexit_armed = True
            for signum in signals:
                if signum in self._previous:
                    continue  # one dispatcher per signal, ever
                try:
                    self._previous[signum] = signal.signal(
                        signum, self._on_signal)
                except (ValueError, OSError):  # non-main thread
                    pass

        def uninstall() -> None:
            self._uninstall(token)

        return uninstall

    def _dump_all(self) -> None:
        with self._lock:
            pending = [(token, recorder, path)
                       for token, (recorder, path)
                       in sorted(self._entries.items())
                       if token not in self._dumped]
            self._dumped.update(token for token, _, _ in pending)
        for _token, recorder, path in pending:
            try:
                recorder.dump(path)
            except OSError:
                pass

    def _on_signal(self, signum, frame) -> None:
        self._dump_all()
        handler = self._previous.get(signum)
        signal.signal(signum, handler if callable(handler)
                      or handler in (signal.SIG_IGN, signal.SIG_DFL)
                      else signal.SIG_DFL)
        signal.raise_signal(signum)

    def _uninstall(self, token: int) -> None:
        with self._lock:
            entry = self._entries.pop(token, None)
            self._dumped.discard(token)
            if entry is not None:
                recorder_id = id(entry[0])
                if self._token_by_recorder.get(recorder_id) == token:
                    del self._token_by_recorder[recorder_id]
            if not self._entries:
                self._disarm_locked()

    def _disarm_locked(self) -> None:
        if self._atexit_armed:
            atexit.unregister(self._dump_all)
            self._atexit_armed = False
        for signum, handler in self._previous.items():
            try:
                if signal.getsignal(signum) == self._on_signal:
                    signal.signal(signum, handler)
            except (ValueError, OSError, TypeError):
                pass
        self._previous.clear()

    def stats(self) -> dict:
        """Registry introspection (tests and debugging)."""
        with self._lock:
            return {"entries": len(self._entries),
                    "atexit_armed": self._atexit_armed,
                    "signals": sorted(self._previous)}


#: The process-wide dump-hook registry.
_DUMP_HOOKS = _DumpHookRegistry()


def load_dump(path) -> tuple[list[QueryProfile], dict[str, dict]]:
    """Read a :meth:`FlightRecorder.dump` JSONL file back.

    Returns ``(profiles, traces)``; malformed lines are skipped so a
    truncated crash dump still loads.
    """
    profiles: list[QueryProfile] = []
    traces: dict[str, dict] = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            kind = record.get("type")
            if kind == "profile":
                profiles.append(QueryProfile.from_dict(record))
            elif kind == "trace" and record.get("id"):
                traces[record["id"]] = {
                    "events": record.get("events", []),
                    "spans": record.get("spans", [])}
    return profiles, traces
