"""Structured per-query logging with a slow-query threshold.

Every evaluated query becomes one :class:`QueryRecord` — terms, filter,
strategy, answer count, latency, and the primitive-operation counters —
kept in a bounded in-memory ring and, when a sink is configured, written
out as one JSON line per query (JSONL).  A configurable
``slow_query_ms`` threshold marks (or, with ``slow_only``, exclusively
emits) the queries worth a second look::

    log = QueryLog(sink=open("queries.jsonl", "a"), slow_query_ms=50)
    log.record(document="article", terms=("xquery", "optimization"),
               filter="size<=3", strategy="pushdown", answers=4,
               elapsed=0.0021, stats=result.stats)
    log.slow_queries()   # records at or over the threshold

Thread safety: mutation (``record`` / ``ingest`` / ``drain``) and
snapshots (``records`` / ``slow_queries`` / iteration) hold one lock,
and snapshots return *copies* — so the live ``/slow`` and ``/varz``
endpoints can read the log from HTTP server threads while the query
thread keeps appending (see :mod:`repro.obs.server`).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Union

__all__ = ["QueryRecord", "QueryLog"]

Sink = Union[Callable[[str], object], "SupportsWrite", None]


@dataclass(frozen=True)
class QueryRecord:
    """One evaluated query, ready for structured logging."""

    timestamp: float
    document: str
    terms: tuple[str, ...]
    filter: str
    strategy: str
    answers: int
    elapsed_ms: float
    slow: bool
    stats: dict = field(default_factory=dict)
    plan: Optional[str] = None
    worker: Optional[str] = None

    def to_dict(self) -> dict:
        record = {
            "ts": round(self.timestamp, 6),
            "document": self.document,
            "terms": list(self.terms),
            "filter": self.filter,
            "strategy": self.strategy,
            "answers": self.answers,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "slow": self.slow,
            "stats": dict(self.stats),
        }
        if self.plan is not None:
            record["plan"] = self.plan
        if self.worker is not None:
            record["worker"] = self.worker
        return record

    @classmethod
    def from_dict(cls, data: Mapping) -> "QueryRecord":
        """Rebuild a record from its :meth:`to_dict` form."""
        return cls(
            timestamp=float(data.get("ts", 0.0)),
            document=data.get("document", "?"),
            terms=tuple(data.get("terms", ())),
            filter=data.get("filter", ""),
            strategy=data.get("strategy", "?"),
            answers=int(data.get("answers", 0)),
            elapsed_ms=float(data.get("elapsed_ms", 0.0)),
            slow=bool(data.get("slow", False)),
            stats=dict(data.get("stats", ())),
            plan=data.get("plan"),
            worker=data.get("worker"))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False, default=str)


class QueryLog:
    """Bounded in-memory query log with an optional JSONL sink.

    Parameters
    ----------
    sink:
        Where emitted lines go: a file-like object (``write`` is called
        with one line including the trailing newline) or a callable
        receiving the line without a newline.  ``None`` keeps records
        in memory only.
    slow_query_ms:
        Queries with latency >= this many milliseconds are marked
        ``slow``.  ``None`` disables the distinction (nothing is slow).
    slow_only:
        When true, only slow queries are written to the sink (all
        records still enter the in-memory ring).
    max_records:
        Size of the in-memory ring buffer.
    clock:
        Timestamp source (epoch seconds); injectable for tests.
    """

    def __init__(self, sink: Sink = None,
                 slow_query_ms: Optional[float] = None,
                 slow_only: bool = False,
                 max_records: int = 1000,
                 clock: Callable[[], float] = time.time) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        if slow_query_ms is not None and slow_query_ms < 0:
            raise ValueError("slow_query_ms must be >= 0")
        self._sink = sink
        self.slow_query_ms = slow_query_ms
        self.slow_only = slow_only
        self._records: deque[QueryRecord] = deque(maxlen=max_records)
        self._clock = clock
        self._lock = threading.Lock()
        self.emitted = 0
        self.evicted = 0

    @property
    def max_records(self) -> int:
        """The ring capacity (surfaced by ``/varz`` under ``serve``)."""
        return self._records.maxlen or 0

    def _append(self, record: QueryRecord) -> None:
        """Retain + emit one record under the lock (single choke
        point, so the ring, the sink, ``emitted`` and ``evicted`` stay
        coherent across threads).  Appends past the cap evict the
        oldest record and count it — the same ring discipline as the
        flight recorder, so a long ``serve`` session stays bounded and
        the loss is visible."""
        with self._lock:
            if len(self._records) == self._records.maxlen:
                self.evicted += 1
            self._records.append(record)
            if self._sink is not None \
                    and (record.slow or not self.slow_only):
                line = record.to_json()
                if callable(self._sink):
                    self._sink(line)
                else:
                    self._sink.write(line + "\n")
                self.emitted += 1

    def record(self, *, document: str, terms: Sequence[str],
               filter: str, strategy: str, answers: int,
               elapsed: float, stats: Optional[Mapping] = None,
               plan: Optional[str] = None) -> QueryRecord:
        """Add one query to the log; returns the record.

        ``elapsed`` is in seconds (matching ``QueryResult.elapsed``);
        the record stores milliseconds.
        """
        elapsed_ms = elapsed * 1000.0
        slow = (self.slow_query_ms is not None
                and elapsed_ms >= self.slow_query_ms)
        record = QueryRecord(
            timestamp=self._clock(), document=document,
            terms=tuple(terms), filter=filter, strategy=strategy,
            answers=answers, elapsed_ms=elapsed_ms, slow=slow,
            stats=dict(stats) if stats else {}, plan=plan)
        self._append(record)
        return record

    def ingest(self, data: Mapping,
               worker: Optional[str] = None) -> QueryRecord:
        """Adopt a record produced elsewhere (a pool worker's log).

        The record keeps its original timestamp, latency and counters
        but ``slow`` is re-derived from *this* log's threshold — workers
        run without one, so the parent's ``slow_query_ms`` stays the
        single source of truth at any worker count.  ``worker`` labels
        the record's origin.  The record passes through the normal sink
        path (respecting ``slow_only``).
        """
        record = QueryRecord.from_dict(data)
        slow = (self.slow_query_ms is not None
                and record.elapsed_ms >= self.slow_query_ms)
        if slow != record.slow or worker is not None:
            record = QueryRecord(
                timestamp=record.timestamp, document=record.document,
                terms=record.terms, filter=record.filter,
                strategy=record.strategy, answers=record.answers,
                elapsed_ms=record.elapsed_ms, slow=slow,
                stats=record.stats, plan=record.plan,
                worker=worker if worker is not None else record.worker)
        self._append(record)
        return record

    def drain(self) -> list[QueryRecord]:
        """Remove and return every retained record, oldest first.

        Pool workers drain their log after each chunk so records ship
        exactly once.
        """
        with self._lock:
            drained = list(self._records)
            self._records.clear()
        return drained

    @property
    def records(self) -> list[QueryRecord]:
        """Every retained record, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._records)

    def slow_queries(self) -> list[QueryRecord]:
        """Retained records at or over the slow threshold (a copy)."""
        with self._lock:
            return [r for r in self._records if r.slow]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self):
        return iter(self.records)
