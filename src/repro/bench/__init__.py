"""Benchmark harness utilities (timing, comparisons, table printing)."""

from .plots import bar_chart, log_bar_chart
from .reporting import banner, format_kv, format_table
from .runner import Measurement, compare, measure

__all__ = [
    "format_table",
    "format_kv",
    "banner",
    "bar_chart",
    "log_bar_chart",
    "Measurement",
    "measure",
    "compare",
]
