"""Plain-text reporting for the benchmark harness.

The benchmarks print paper-style tables and series to stdout (and the
same strings go into EXPERIMENTS.md).  No plotting dependencies: shapes
are conveyed by aligned columns and simple ratio annotations.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["format_table", "format_kv", "banner"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table.

    Floats are shown with 4 significant digits; everything else via
    ``str``.  Columns are left-aligned for text, right-aligned for
    numbers.
    """
    def cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    materialised = [[cell(v) for v in row] for row in rows]
    numeric = [all(_is_number(row[i]) for row in materialised if row)
               for i in range(len(headers))]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def fmt_row(values: Sequence[str]) -> str:
        parts = []
        for i, value in enumerate(values):
            if numeric[i] if i < len(numeric) else False:
                parts.append(value.rjust(widths[i]))
            else:
                parts.append(value.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in materialised)
    return "\n".join(lines)


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def format_kv(pairs: Iterable[tuple[str, object]],
              title: Optional[str] = None) -> str:
    """Render key/value pairs as an aligned block."""
    items = [(key, value) for key, value in pairs]
    width = max((len(key) for key, _ in items), default=0)
    lines = []
    if title:
        lines.append(title)
    for key, value in items:
        shown = f"{value:.4g}" if isinstance(value, float) else str(value)
        lines.append(f"  {key.ljust(width)}  {shown}")
    return "\n".join(lines)


def banner(text: str, char: str = "=") -> str:
    """A section banner for bench output."""
    line = char * max(len(text), 8)
    return f"{line}\n{text}\n{line}"
