"""Experiment running: timed, repeated measurements with medians.

pytest-benchmark handles the per-benchmark timing in ``benchmarks/``;
this runner exists for the *comparative* experiments (S1, S2, S6…)
where one bench prints a whole table sweeping a parameter across
several strategies — something a single pytest-benchmark fixture call
cannot express.

Measurements carry more than wall time: when the measured callable
returns something with operation counters (a ``QueryResult`` or an
``OperationStats``), the counters are captured on the
:class:`Measurement` so comparative tables can put *logical* work next
to median latency, and optionally folded into a
:class:`~repro.obs.metrics.MetricsRegistry` for cross-bench
aggregation.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..obs.metrics import LATENCY_BUCKETS, MetricsRegistry

__all__ = ["Measurement", "measure", "compare"]

#: Counters shown by :meth:`_Comparison.work_table`, in column order.
WORK_COUNTERS = ("fragment_joins", "join_cache_hits",
                 "predicate_checks", "fragments_discarded")


@dataclass(frozen=True)
class Measurement:
    """Repeated-timing outcome of one callable.

    Attributes
    ----------
    label:
        What was measured.
    seconds:
        Median wall-clock seconds over the repetitions.
    spread:
        Max−min over the repetitions (a cheap stability indicator).
    value:
        The callable's return value from the last repetition — used to
        cross-check that compared strategies agree.
    repetitions:
        Number of timed runs.
    stats:
        Operation counters extracted from ``value`` (from a
        ``QueryResult.stats`` dict or an ``OperationStats``), or
        ``None`` when the return value carries none.
    """

    label: str
    seconds: float
    spread: float
    value: object
    repetitions: int
    stats: Optional[dict] = None


def _extract_stats(value: object) -> Optional[dict]:
    """Operation counters carried by a measured return value, if any."""
    stats = getattr(value, "stats", None)
    if isinstance(stats, dict):
        return dict(stats)
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        snapshot = as_dict()
        if isinstance(snapshot, dict):
            return snapshot
    return None


def measure(label: str, func: Callable[[], object],
            repetitions: int = 3,
            registry: Optional[MetricsRegistry] = None) -> Measurement:
    """Time ``func`` ``repetitions`` times; report the median.

    With a ``registry``, the median latency goes into a
    ``bench_seconds`` histogram and any extracted operation counters
    into ``bench_<counter>_total`` counters, labelled by ``case`` so a
    whole bench session aggregates into one exportable registry.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    times = []
    value: object = None
    for _ in range(repetitions):
        started = time.perf_counter()
        value = func()
        times.append(time.perf_counter() - started)
    median = statistics.median(times)
    stats = _extract_stats(value)
    if registry is not None:
        registry.histogram("bench_seconds", "Median bench latency.",
                           buckets=LATENCY_BUCKETS,
                           labels={"case": label}).observe(median)
        if stats:
            for key, count in stats.items():
                if isinstance(count, (int, float)):
                    registry.counter(f"bench_{key}_total",
                                     f"Summed {key} across repetitions.",
                                     labels={"case": label}).inc(count)
    return Measurement(label=label, seconds=median,
                       spread=max(times) - min(times), value=value,
                       repetitions=repetitions, stats=stats)


@dataclass
class _Comparison:
    measurements: list[Measurement] = field(default_factory=list)

    def fastest(self) -> Measurement:
        return min(self.measurements, key=lambda m: m.seconds)

    def speedup_over(self, baseline_label: str) -> dict[str, float]:
        baseline = next(m for m in self.measurements
                        if m.label == baseline_label)
        return {m.label: baseline.seconds / m.seconds
                for m in self.measurements if m.seconds > 0}

    def work_table(self,
                   counters: Sequence[str] = WORK_COUNTERS) -> str:
        """Median wall time and logical-work counters, one row per case.

        Counters absent from every measurement are dropped, so tables
        stay tight for callables that return plain values.
        """
        from .reporting import format_table
        present = [name for name in counters
                   if any(m.stats and name in m.stats
                          for m in self.measurements)]
        headers = ["case", "median ms"] + present
        rows = []
        for m in self.measurements:
            row: list[object] = [m.label, m.seconds * 1000]
            for name in present:
                row.append((m.stats or {}).get(name, 0))
            rows.append(row)
        return format_table(headers, rows)


def compare(cases: Sequence[tuple[str, Callable[[], object]]],
            repetitions: int = 3,
            registry: Optional[MetricsRegistry] = None) -> _Comparison:
    """Measure several labelled callables under identical conditions."""
    comparison = _Comparison()
    for label, func in cases:
        comparison.measurements.append(
            measure(label, func, repetitions=repetitions,
                    registry=registry))
    return comparison
