"""Experiment running: timed, repeated measurements with medians.

pytest-benchmark handles the per-benchmark timing in ``benchmarks/``;
this runner exists for the *comparative* experiments (S1, S2, S6…)
where one bench prints a whole table sweeping a parameter across
several strategies — something a single pytest-benchmark fixture call
cannot express.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = ["Measurement", "measure", "compare"]


@dataclass(frozen=True)
class Measurement:
    """Repeated-timing outcome of one callable.

    Attributes
    ----------
    label:
        What was measured.
    seconds:
        Median wall-clock seconds over the repetitions.
    spread:
        Max−min over the repetitions (a cheap stability indicator).
    value:
        The callable's return value from the last repetition — used to
        cross-check that compared strategies agree.
    repetitions:
        Number of timed runs.
    """

    label: str
    seconds: float
    spread: float
    value: object
    repetitions: int


def measure(label: str, func: Callable[[], object],
            repetitions: int = 3) -> Measurement:
    """Time ``func`` ``repetitions`` times; report the median."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    times = []
    value: object = None
    for _ in range(repetitions):
        started = time.perf_counter()
        value = func()
        times.append(time.perf_counter() - started)
    return Measurement(label=label, seconds=statistics.median(times),
                       spread=max(times) - min(times), value=value,
                       repetitions=repetitions)


@dataclass
class _Comparison:
    measurements: list[Measurement] = field(default_factory=list)

    def fastest(self) -> Measurement:
        return min(self.measurements, key=lambda m: m.seconds)

    def speedup_over(self, baseline_label: str) -> dict[str, float]:
        baseline = next(m for m in self.measurements
                        if m.label == baseline_label)
        return {m.label: baseline.seconds / m.seconds
                for m in self.measurements if m.seconds > 0}


def compare(cases: Sequence[tuple[str, Callable[[], object]]],
            repetitions: int = 3) -> _Comparison:
    """Measure several labelled callables under identical conditions."""
    comparison = _Comparison()
    for label, func in cases:
        comparison.measurements.append(
            measure(label, func, repetitions=repetitions))
    return comparison
