"""Dependency-free ASCII charts for benchmark series.

The sweep benches (S1, S5, S6, S10) produce series whose *shape* is the
reproduction target; a bar chart next to the table makes the shape
visible in plain terminal output without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = ["bar_chart", "log_bar_chart"]

_BAR = "█"
_HALF = "▌"


def bar_chart(labels: Sequence[object], values: Sequence[float],
              width: int = 40, title: Optional[str] = None,
              unit: str = "") -> str:
    """Horizontal bar chart with linear scaling.

    >>> print(bar_chart(["a", "b"], [1.0, 2.0], width=4))
    a  ██    1
    b  ████  2
    """
    return _chart(labels, values, width, title, unit, logarithmic=False)


def log_bar_chart(labels: Sequence[object], values: Sequence[float],
                  width: int = 40, title: Optional[str] = None,
                  unit: str = "") -> str:
    """Horizontal bar chart with log10 scaling.

    The right choice for exponential sweeps (brute-force join counts):
    linear bars would render everything but the last point invisible.
    """
    return _chart(labels, values, width, title, unit, logarithmic=True)


def _chart(labels: Sequence[object], values: Sequence[float],
           width: int, title: Optional[str], unit: str,
           logarithmic: bool) -> str:
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if width < 1:
        raise ValueError("width must be >= 1")
    if any(v < 0 for v in values):
        raise ValueError("bar charts need non-negative values")

    def transform(value: float) -> float:
        if not logarithmic:
            return value
        return math.log10(value + 1.0)

    scaled = [transform(v) for v in values]
    peak = max(scaled, default=0.0)
    label_texts = [str(lb) for lb in labels]
    label_width = max((len(t) for t in label_texts), default=0)

    lines = []
    if title:
        lines.append(title)
    for text, value, mass in zip(label_texts, values, scaled):
        if peak > 0:
            cells = mass / peak * width
            full = int(cells)
            bar = _BAR * full + (_HALF if cells - full >= 0.5 else "")
        else:
            bar = ""
        shown = f"{value:.4g}{unit}"
        lines.append(f"{text.rjust(label_width)}  "
                     f"{bar.ljust(width)}  {shown}")
    return "\n".join(lines)
