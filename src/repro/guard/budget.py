"""Cooperative query budgets.

The paper's powerset semantics (Definition 6) can blow up
combinatorially, and even the polynomial strategies walk data whose
size the caller does not control.  A :class:`QueryBudget` puts a lid on
a single query's resource use *cooperatively*: the evaluation hot loops
in :mod:`repro.core` call the budget's cheap checkpoint methods
(:meth:`QueryBudget.tick` / :meth:`QueryBudget.poll`) as they work, and
the budget raises a structured
:class:`~repro.errors.BudgetExceeded` the moment a limit is crossed.

Design notes
------------
* **Amortised deadline checks.**  ``time.monotonic()`` is cheap but not
  free; calling it per joined pair would dominate small joins.  The
  budget only consults the clock every ``check_interval`` charged
  operations (default 256), so the steady-state cost of a checkpoint is
  one integer add and one compare.
* **No effect when absent.**  Every hot loop guards its checkpoint with
  ``if budget is not None``; with no budget the evaluation path is
  byte-for-byte the pre-guard code, which keeps results bit-identical
  and overhead at a single ``None`` test.
* **Cross-process composition.**  Deadlines are stored as *absolute*
  ``time.monotonic()`` timestamps.  On Linux ``CLOCK_MONOTONIC`` is
  system-wide, so a started budget can ship to a forked/spawned pool
  worker (:meth:`QueryBudget.fresh_item`) and the remaining wall time
  is honoured there without clock translation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import BudgetExceeded

__all__ = ["QueryBudget", "effective_budget"]

#: How many charged operations may pass between wall-clock checks.
DEFAULT_CHECK_INTERVAL = 256


@dataclass
class QueryBudget:
    """Resource limits for one query evaluation.

    Parameters
    ----------
    deadline_s:
        Wall-clock budget in seconds, measured from :meth:`start`.
        ``None`` disables the deadline.
    max_join_ops:
        Ceiling on charged join operations (fragment joins, pair
        probes).  ``None`` disables the limit.
    max_live_fragments:
        Ceiling on the size of any intermediate fragment set the
        evaluator materialises.  ``None`` disables the limit.
    max_candidates:
        Ceiling on the size of a candidate set admitted into powerset
        or fixed-point machinery (where cost is superlinear in the
        candidate count).  ``None`` disables the limit.
    check_interval:
        Operations between amortised wall-clock checks.
    """

    deadline_s: float | None = None
    max_join_ops: int | None = None
    max_live_fragments: int | None = None
    max_candidates: int | None = None
    check_interval: int = DEFAULT_CHECK_INTERVAL

    # Runtime state — excluded from equality so two budgets with the
    # same limits compare equal regardless of progress.
    started_at: float | None = field(default=None, compare=False)
    join_ops: int = field(default=0, compare=False)
    #: Wall-clock checkpoints actually taken (amortised ticks/polls
    #: that consulted the clock) — surfaced in flight-recorder
    #: profiles as a measure of how often the query yielded control.
    checkpoints: int = field(default=0, compare=False)
    _deadline_at: float | None = field(default=None, compare=False,
                                       repr=False)
    _since_check: int = field(default=0, compare=False, repr=False)
    _stats: object = field(default=None, compare=False, repr=False)

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "QueryBudget":
        """Stamp the start time (idempotent) and return ``self``."""
        if self.started_at is None:
            self.started_at = time.monotonic()
            if self.deadline_s is not None:
                self._deadline_at = self.started_at + self.deadline_s
        return self

    def bind_stats(self, stats) -> None:
        """Attach an ``OperationStats`` to enrich abort progress."""
        self._stats = stats

    def fresh_item(self) -> "QueryBudget":
        """A budget for one more unit of work under the same limits.

        Per-operation counters reset, but an already-started deadline
        is inherited as the same *absolute* monotonic timestamp — the
        clone sees only the wall time the original has left.  Used for
        per-query budgets in batches and per-item budgets in pool
        workers.
        """
        clone = QueryBudget(deadline_s=self.deadline_s,
                           max_join_ops=self.max_join_ops,
                           max_live_fragments=self.max_live_fragments,
                           max_candidates=self.max_candidates,
                           check_interval=self.check_interval)
        if self.started_at is not None:
            clone.started_at = self.started_at
            clone._deadline_at = self._deadline_at
        return clone

    # -- checkpoints --------------------------------------------------

    def tick(self, ops: int = 1) -> None:
        """Charge ``ops`` join operations; cheap amortised checkpoint.

        Raises :class:`BudgetExceeded` when the join-operation budget
        is spent or (every ``check_interval`` ops) the deadline passed.
        """
        self.join_ops += ops
        if (self.max_join_ops is not None
                and self.join_ops > self.max_join_ops):
            raise self._exceeded(
                "join-ops",
                f"join-operation budget of {self.max_join_ops} spent")
        self._since_check += ops
        if self._since_check >= self.check_interval:
            self._since_check = 0
            self.check_deadline()

    def poll(self, ops: int = 1) -> None:
        """Amortised deadline check that does *not* charge join ops.

        For loops that do real work without joining (subset checks,
        fragment enumeration).
        """
        self._since_check += ops
        if self._since_check >= self.check_interval:
            self._since_check = 0
            self.check_deadline()

    def check_deadline(self) -> None:
        """Unconditional wall-clock check."""
        self.checkpoints += 1
        if (self._deadline_at is not None
                and time.monotonic() > self._deadline_at):
            raise self._exceeded(
                "deadline",
                f"deadline of {self.deadline_s:g}s passed")

    def admit_live(self, count: int) -> None:
        """Check an intermediate fragment-set size against the ceiling."""
        if (self.max_live_fragments is not None
                and count > self.max_live_fragments):
            raise self._exceeded(
                "live-fragments",
                f"{count} live fragments exceed the ceiling of "
                f"{self.max_live_fragments}")

    def admit_candidates(self, count: int) -> None:
        """Check a candidate-set size against the ceiling."""
        if (self.max_candidates is not None
                and count > self.max_candidates):
            raise self._exceeded(
                "candidates",
                f"candidate set of {count} exceeds the ceiling of "
                f"{self.max_candidates}")

    # -- introspection ------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since :meth:`start`; 0.0 if never started."""
        if self.started_at is None:
            return 0.0
        return time.monotonic() - self.started_at

    def remaining_s(self) -> float | None:
        """Wall time left, or ``None`` when no deadline is armed."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - time.monotonic())

    def progress(self) -> dict:
        """Partial-progress snapshot shipped inside ``BudgetExceeded``."""
        snapshot = {"join_ops": self.join_ops,
                    "checkpoints": self.checkpoints}
        if self._stats is not None and hasattr(self._stats, "as_dict"):
            snapshot["stats"] = self._stats.as_dict()
        return snapshot

    def _exceeded(self, reason: str, detail: str) -> BudgetExceeded:
        return BudgetExceeded(f"query aborted: {detail}", reason=reason,
                              elapsed=self.elapsed(),
                              progress=self.progress())


def effective_budget(budget: QueryBudget | None = None,
                     deadline_ms: float | None = None,
                     ) -> QueryBudget | None:
    """Combine an explicit budget with a convenience ``deadline_ms``.

    ``deadline_ms`` tightens (never loosens) the budget's own deadline;
    with neither argument the result is ``None`` — the unguarded path.
    """
    if deadline_ms is None:
        return budget
    deadline_s = deadline_ms / 1000.0
    if budget is None:
        return QueryBudget(deadline_s=deadline_s)
    if budget.deadline_s is None or deadline_s < budget.deadline_s:
        budget.deadline_s = deadline_s
        if budget.started_at is not None:
            budget._deadline_at = budget.started_at + deadline_s
    return budget
