"""Pre-admission cost screening.

Before any evaluation work runs, a query can be screened against a
configurable cost ceiling using the Section-5
:class:`~repro.core.cost.CostModel`: the logical plan the requested
strategy would execute (:func:`repro.core.strategies.plan_for`) is
costed per document and summed over the collection.  A query over the
ceiling is either *downgraded* to a cheaper strategy (by default the
§4.3 push-down strategy, whose plan prunes earliest) when that fits, or
*rejected* with a structured
:class:`~repro.errors.AdmissionRejected` — the database-style admission
control the ROADMAP's serving goal needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..core.cost import CostModel
from ..core.query import Query
from ..core.strategies import Strategy, plan_for
from ..errors import AdmissionRejected

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..index.inverted import InvertedIndex
    from ..xmltree.document import Document

__all__ = ["AdmissionPolicy", "AdmissionDecision", "screen",
           "plan_cost"]

ADMIT = "admit"
DOWNGRADE = "downgrade"
REJECT = "reject"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Ceiling + downgrade rule for the pre-admission screen.

    Parameters
    ----------
    max_cost:
        Maximum summed :class:`~repro.core.cost.CostEstimate` cost a
        query's plan may carry over the screened documents.
    downgrade_to:
        Strategy to fall back to when the requested strategy is over
        the ceiling but this one is not; ``None`` disables downgrading
        (over-ceiling queries are rejected outright).
    """

    max_cost: float
    downgrade_to: Optional[Strategy] = Strategy.PUSHDOWN

    def __post_init__(self) -> None:
        if self.max_cost <= 0:
            raise ValueError("max_cost must be positive")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of the screen: admit, downgrade or reject.

    ``strategy`` is the strategy the query should actually run with
    (the requested one when admitted, the policy's ``downgrade_to``
    when downgraded).  ``estimated_cost`` prices that strategy;
    ``requested_cost`` always prices the *requested* strategy.
    """

    decision: str
    strategy: Strategy
    estimated_cost: float
    requested_cost: float
    max_cost: float

    @property
    def admitted(self) -> bool:
        return self.decision != REJECT

    @property
    def downgraded(self) -> bool:
        return self.decision == DOWNGRADE

    def raise_if_rejected(self) -> "AdmissionDecision":
        """Raise :class:`AdmissionRejected` for a rejecting decision."""
        if self.decision == REJECT:
            raise AdmissionRejected(
                f"query rejected by admission control: estimated cost "
                f"{self.estimated_cost:.0f} exceeds the ceiling of "
                f"{self.max_cost:.0f}",
                estimated_cost=self.estimated_cost,
                max_cost=self.max_cost)
        return self

    def to_dict(self) -> dict:
        return {"decision": self.decision,
                "strategy": self.strategy.value,
                "estimated_cost": self.estimated_cost,
                "requested_cost": self.requested_cost,
                "max_cost": self.max_cost}


def plan_cost(query: Query, strategy: Strategy, document: "Document",
              index: Optional["InvertedIndex"] = None) -> float:
    """The Section-5 predicted cost of running ``strategy`` for
    ``query`` against one ``document``.

    The single costing primitive shared by admission control and the
    flight recorder's predicted-vs-measured calibration, so both read
    the same number for the same plan.
    """
    plan = plan_for(query, strategy)
    return CostModel(document, index=index).estimate(plan).cost


def _collection_cost(query: Query, strategy: Strategy,
                     documents: Iterable["Document"],
                     index_for: Optional[Callable]) -> float:
    """Summed plan cost of ``strategy`` over ``documents``."""
    total = 0.0
    for document in documents:
        index = index_for(document) if index_for is not None else None
        total += plan_cost(query, strategy, document, index=index)
    return total


def screen(policy: AdmissionPolicy, query: Query, strategy: Strategy,
           documents: Iterable["Document"],
           index_for: Optional[Callable[["Document"],
                                        Optional["InvertedIndex"]]] = None
           ) -> AdmissionDecision:
    """Screen ``query`` against ``policy`` before running any work.

    Parameters
    ----------
    policy:
        Ceiling and downgrade rule.
    query / strategy:
        The query and the strategy the caller wants to run.
    documents:
        The documents the query would be evaluated against.  The
        iterable is consumed up to twice (requested + downgrade
        costing); pass a list.
    index_for:
        Optional ``document -> InvertedIndex | None`` lookup; with an
        index the cost model uses exact term frequencies.
    """
    documents = list(documents)
    requested_cost = _collection_cost(query, strategy, documents,
                                      index_for)
    if requested_cost <= policy.max_cost:
        return AdmissionDecision(ADMIT, strategy, requested_cost,
                                 requested_cost, policy.max_cost)
    downgrade = policy.downgrade_to
    if downgrade is not None and downgrade is not strategy:
        downgraded_cost = _collection_cost(query, downgrade, documents,
                                           index_for)
        if downgraded_cost <= policy.max_cost:
            return AdmissionDecision(DOWNGRADE, downgrade,
                                     downgraded_cost, requested_cost,
                                     policy.max_cost)
    return AdmissionDecision(REJECT, strategy, requested_cost,
                             requested_cost, policy.max_cost)
