"""Per-collection circuit breaker.

A thin, thread-safe implementation of the classic pattern: after ``K``
consecutive failures (budget aborts, worker crashes) the breaker
*opens* and the serving layer fails fast instead of queueing more
doomed work; after a cooldown it lets exactly one *half-open* probe
through, and the probe's outcome decides between closing again and
re-opening for another cooldown.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN",
           "BREAKER_STATE_CODES"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding for the ``repro_guard_breaker_state`` metric.
BREAKER_STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Closed → open after K consecutive failures → half-open probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_s:
        Cooldown before an open breaker admits a half-open probe.
    clock:
        Injectable monotonic clock (tests pass a fake).
    """

    def __init__(self, failure_threshold: int = 5, reset_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_s < 0:
            raise ValueError("reset_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_s = reset_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_at = 0.0
        self.trips = 0

    # -- state transitions --------------------------------------------

    def allow(self) -> bool:
        """May a request proceed right now?

        Closed: always.  Open: only once the cooldown has elapsed, in
        which case the breaker moves to half-open and admits this
        single probe.  Half-open: the in-flight probe has the slot; a
        probe that never reports back (e.g. its thread died) is
        assumed lost after another cooldown and the slot is re-issued.
        """
        with self._lock:
            now = self._clock()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if now - self._opened_at >= self.reset_s:
                    self._state = HALF_OPEN
                    self._probe_at = now
                    return True
                return False
            # HALF_OPEN: one probe at a time, with stale-probe recovery.
            if now - self._probe_at >= self.reset_s:
                self._probe_at = now
                return True
            return False

    def record_success(self) -> None:
        """A request finished cleanly: close and reset the count."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        """A request failed (budget abort, crash): count / trip."""
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open.
                self._trip()
            elif (self._state == CLOSED
                    and self._failures >= self.failure_threshold):
                self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self.trips += 1

    def trip(self) -> bool:
        """Force the breaker open immediately, regardless of the
        failure count — the SLO feedback path pre-trips suspect
        breakers when a burn-rate alert goes critical.  Returns
        ``True`` if this call changed the state."""
        with self._lock:
            if self._state == OPEN:
                return False
            self._trip()
            return True

    # -- introspection ------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def state_code(self) -> int:
        """Numeric encoding for the breaker-state gauge."""
        return BREAKER_STATE_CODES[self.state]

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def to_dict(self) -> dict:
        with self._lock:
            return {"state": self._state,
                    "consecutive_failures": self._failures,
                    "failure_threshold": self.failure_threshold,
                    "reset_s": self.reset_s,
                    "trips": self.trips}
