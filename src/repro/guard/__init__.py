"""Query guard rails: budgets, admission control, circuit breaking.

Three layers, composable and each independently optional:

* :class:`QueryBudget` — cooperative per-query resource limits (wall
  deadline, join-operation budget, live-fragment and candidate-set
  ceilings) enforced by cheap amortised checkpoints inside the core
  evaluation loops; aborts raise a structured
  :class:`~repro.errors.BudgetExceeded` with partial progress.
* :func:`screen` / :class:`AdmissionPolicy` — pre-admission cost
  screening with the Section-5 cost model: reject or downgrade a query
  whose estimated plan cost exceeds a ceiling *before* any work runs.
* :class:`CircuitBreaker` — per-collection fail-fast once consecutive
  failures pass a threshold, with a half-open recovery probe.

The serving layer (:mod:`repro.obs.server`) wires all three behind a
``POST /query`` endpoint with load shedding and graceful drain.
"""

from ..errors import AdmissionRejected, BudgetExceeded
from .admission import AdmissionDecision, AdmissionPolicy, screen
from .breaker import (BREAKER_STATE_CODES, CLOSED, HALF_OPEN, OPEN,
                      CircuitBreaker)
from .budget import QueryBudget, effective_budget

__all__ = [
    "QueryBudget",
    "effective_budget",
    "BudgetExceeded",
    "AdmissionPolicy",
    "AdmissionDecision",
    "AdmissionRejected",
    "screen",
    "CircuitBreaker",
    "BREAKER_STATE_CODES",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]
