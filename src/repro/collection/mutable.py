"""A writable :class:`DocumentCollection` over a crash-safe mutable index.

``MutableDocumentCollection`` pairs the collection search API with
:class:`repro.storage.mutation.MutableIndex`: documents can be added,
replaced and removed while searches run, every write is WAL-durable
before it is visible, and every search runs against one epoch-pinned
:class:`~repro.storage.mutation.Snapshot` — a query started before a
commit never sees half of it.

* ``add`` / ``remove`` append to the WAL and (by default) commit a new
  epoch; ``commit=False`` batches, :meth:`commit` publishes.
* ``search`` / ``ranked_search`` / ``explain_analyze`` pin the current
  epoch (or an explicit ``epoch=``) for their whole run — streaming
  iterators keep the pin until drained or closed.
* ``workers=`` searches reuse one pooled executor across commits:
  workers re-attach the chunk's epoch on demand instead of the pool
  being rebuilt per write (contrast the in-memory collection, whose
  ``add`` must invalidate the pool).

Open one with :meth:`DocumentCollection.open_mutable`, or create a new
index with :meth:`MutableDocumentCollection.create`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping, Optional, Union

from ..errors import DocumentError, WALError
from ..obs import NOOP, Observability
from ..ranking.scoring import FragmentScorer
from ..storage.mutation import MutableIndex, Snapshot
from ..xmltree.document import Document
from .collection import DocumentCollection

__all__ = ["MutableDocumentCollection"]


class _SnapshotDocuments(Mapping):
    """Mapping facade over a :class:`Snapshot`: name -> Document.

    Lookups materialise lazily (delta segment or mapped shard);
    iteration yields visible names in sorted order.
    """

    __slots__ = ("_snapshot",)

    def __init__(self, snapshot: Snapshot) -> None:
        self._snapshot = snapshot

    def __getitem__(self, name: str) -> Document:
        try:
            return self._snapshot.document(name)
        except WALError:
            raise KeyError(name)

    def __iter__(self):
        return iter(self._snapshot.names())

    def __len__(self) -> int:
        return len(self._snapshot.names())

    def __contains__(self, name: object) -> bool:
        return name in self._snapshot


class _BoundExecutor:
    """A pooled executor with an epoch-pinned snapshot bound in.

    The wrapped :class:`~repro.exec.ParallelExecutor` is the parent
    collection's long-lived pool (mutable-index mode); binding happens
    per search so concurrent searches on different epochs share it.
    ``supports_hints`` marks the streaming early-stop path as safe.
    """

    __slots__ = ("_executor", "_snapshot")

    supports_hints = True

    def __init__(self, executor, snapshot: Snapshot) -> None:
        self._executor = executor
        self._snapshot = snapshot

    def search(self, query, **options):
        return self._executor.search(query, snapshot=self._snapshot,
                                     **options)

    def run(self, queries, **options):
        return self._executor.run(queries, snapshot=self._snapshot,
                                  **options)


class _SnapshotCollection(DocumentCollection):
    """One search's consistent view: a collection bound to one epoch.

    Shares the parent's :class:`~repro.core.algebra.JoinCache` (join
    memos are content-addressed, so they survive epoch changes) and its
    per-epoch scorer cache; everything name-addressed (documents,
    indexes, term probes) goes through the pinned snapshot.
    """

    def __init__(self, parent: "MutableDocumentCollection",
                 snapshot: Snapshot) -> None:
        super().__init__(name=parent.name)
        self._parent = parent
        self._snapshot = snapshot
        self._documents = _SnapshotDocuments(snapshot)
        self._cache = parent._cache

    def add(self, document: Document,
            name: Optional[str] = None) -> str:
        raise DocumentError(
            "an epoch-pinned view is read-only; write through the "
            "MutableDocumentCollection")

    def index(self, name: str):
        return self._snapshot.inverted_index(name)

    def has_terms(self, name: str, terms: Iterable[str]) -> bool:
        return all(self._snapshot.contains(name, term)
                   for term in terms)

    def _shard_of(self, name: str) -> Optional[int]:
        return self._snapshot.shard_of(name)

    @property
    def total_nodes(self) -> int:
        return sum(self._snapshot.node_count(name)
                   for name in self._snapshot.names())

    def document_frequency(self, term: str) -> int:
        needle = term.casefold()
        return sum(1 for name in self._snapshot.names()
                   if self._snapshot.contains(name, needle))

    def scorer(self, name: str) -> FragmentScorer:
        return self._parent._scorer_for(self._snapshot, name)

    def _parallel_executor(self, workers: int):
        return _BoundExecutor(self._parent._pool_executor(workers),
                              self._snapshot)


class MutableDocumentCollection(DocumentCollection):
    """A searchable collection whose corpus mutates crash-safely.

    Parameters
    ----------
    path:
        Directory of an existing mutable index (from :meth:`create` or
        ``repro-search index ingest``), or an already-open
        :class:`MutableIndex` handle (not closed by :meth:`close`).
    faults:
        Optional :class:`~repro.exec.faults.CrashPlan` forwarded to the
        storage layer (crash-point testing).
    """

    def __init__(self,
                 path: Union[str, "os.PathLike[str]", MutableIndex],
                 name: Optional[str] = None, *,
                 obs: Optional[Observability] = None,
                 faults=None,
                 cache_limit: Optional[int] = 64) -> None:
        if isinstance(path, MutableIndex):
            self.mutable = path
            self._owns_handle = False
        else:
            self.mutable = MutableIndex.open(
                path, faults=faults,
                obs=obs if obs is not None else NOOP,
                cache_limit=cache_limit)
            self._owns_handle = True
        super().__init__(name=name if name is not None else
                         os.path.basename(os.path.normpath(
                             self.mutable.path)) or "mutable")
        # Scorers are corpus-derived, so they cache per epoch: a commit
        # naturally invalidates them without racing in-flight searches.
        self._scorer_epoch: Optional[int] = None
        self._epoch_scorers: dict[str, FragmentScorer] = {}

    @classmethod
    def create(cls, path, documents=None, *, shards: int = 4,
               name: Optional[str] = None,
               obs: Optional[Observability] = None,
               faults=None,
               cache_limit: Optional[int] = 64
               ) -> "MutableDocumentCollection":
        """Create a new mutable index at ``path`` and open it.

        ``documents`` (``{name: Document}``, optional) seeds the base
        generation through the ordinary shard builder.
        """
        handle = MutableIndex.create(
            path, documents, shards=shards, faults=faults,
            obs=obs if obs is not None else NOOP,
            cache_limit=cache_limit)
        collection = cls(handle, name=name, obs=obs)
        collection._owns_handle = True
        return collection

    # ------------------------------------------------------------------
    # Population (durable: WAL append + epoch commit)
    # ------------------------------------------------------------------

    def add(self, document: Document, name: Optional[str] = None, *,
            commit: bool = True) -> str:
        """Add or replace a document (upsert), durably.

        With ``commit=True`` (default) the write is fsynced and
        published as a new epoch before returning; ``commit=False``
        appends to the WAL only — invisible to searches until
        :meth:`commit`, and rolled back (not replayed) if the process
        dies first: recovery exposes exactly the last committed epoch.
        """
        return self.mutable.add(document, name, commit=commit)

    def remove(self, name: str, *, commit: bool = True) -> None:
        """Remove a document durably (tombstone in the delta segment)."""
        self.mutable.remove(name, commit=commit)

    def commit(self) -> int:
        """Publish pending writes as one new epoch; returns the epoch."""
        return self.mutable.commit()

    def compact(self) -> int:
        """Fold the delta segment into a new base generation."""
        return self.mutable.compact()

    @property
    def epoch(self) -> int:
        """The last committed epoch (what a new search will pin)."""
        return self.mutable.epoch

    # ------------------------------------------------------------------
    # Introspection (each call pins the current epoch briefly)
    # ------------------------------------------------------------------

    @contextmanager
    def _pinned(self, epoch: Optional[int] = None):
        snapshot = self.mutable.snapshot(epoch)
        try:
            yield snapshot
        finally:
            snapshot.close()

    def __len__(self) -> int:
        return len(self.mutable)

    def __contains__(self, name: str) -> bool:
        return name in self.mutable

    def __iter__(self) -> Iterator[str]:
        return iter(self.mutable.names())

    def names(self) -> list[str]:
        return self.mutable.names()

    def document(self, name: str) -> Document:
        with self._pinned() as snapshot:
            try:
                return snapshot.document(name)
            except WALError:
                raise KeyError(name)

    def index(self, name: str):
        with self._pinned() as snapshot:
            return snapshot.inverted_index(name)

    def has_terms(self, name: str, terms: Iterable[str]) -> bool:
        with self._pinned() as snapshot:
            return all(snapshot.contains(name, term) for term in terms)

    @property
    def total_nodes(self) -> int:
        with self._pinned() as snapshot:
            return sum(snapshot.node_count(name)
                       for name in snapshot.names())

    def document_frequency(self, term: str) -> int:
        needle = term.casefold()
        with self._pinned() as snapshot:
            return sum(1 for name in snapshot.names()
                       if snapshot.contains(name, needle))

    def vocabulary(self) -> frozenset[str]:
        with self._pinned() as snapshot:
            vocab: set[str] = set()
            for name in snapshot.names():
                vocab |= snapshot.inverted_index(name).vocabulary()
            return frozenset(vocab)

    # ------------------------------------------------------------------
    # Search: pin an epoch, delegate to a consistent view
    # ------------------------------------------------------------------

    def _scorer_for(self, snapshot: Snapshot,
                    name: str) -> FragmentScorer:
        """Per-epoch scorer cache shared by concurrent same-epoch
        searches; a commit moves the epoch and drops stale entries."""
        with self._lock:
            if self._scorer_epoch != snapshot.epoch:
                self._scorer_epoch = snapshot.epoch
                self._epoch_scorers = {}
            scorer = self._epoch_scorers.get(name)
        if scorer is None:
            scorer = FragmentScorer(snapshot.inverted_index(name))
            with self._lock:
                if self._scorer_epoch == snapshot.epoch:
                    scorer = self._epoch_scorers.setdefault(name, scorer)
        return scorer

    def _pool_executor(self, workers: int):
        """The long-lived mutable-mode pool — survives commits.

        Workers ship only the index *path*; each chunk carries its
        snapshot's epoch and workers re-attach when it moves, so
        ``add`` never has to invalidate this executor.
        """
        from ..exec.parallel import ParallelExecutor
        with self._lock:
            if self._executor is None \
                    or self._executor_workers != workers:
                self._shutdown_executor()
                self._executor = ParallelExecutor(
                    mutable_index=self.mutable.path, workers=workers)
                self._executor_workers = workers
            return self._executor

    @staticmethod
    def _drain_with_pin(hits, snapshot: Snapshot):
        try:
            yield from hits
        finally:
            snapshot.close()

    def search(self, query, *args, epoch: Optional[int] = None,
               **options):
        """Evaluate ``query`` against one epoch-pinned snapshot.

        Accepts every :meth:`DocumentCollection.search` option, plus
        ``epoch=`` to read a historical (still-pinned) epoch.  With
        ``stream=True`` the returned iterator holds the epoch pin until
        it is drained or closed.
        """
        snapshot = self.mutable.snapshot(epoch)
        view = _SnapshotCollection(self, snapshot)
        try:
            result = view.search(query, *args, **options)
        except BaseException:
            snapshot.close()
            raise
        if options.get("stream"):
            return self._drain_with_pin(result, snapshot)
        snapshot.close()
        return result

    def ranked_search(self, query, *args,
                      epoch: Optional[int] = None, **options):
        with self._pinned(epoch) as snapshot:
            view = _SnapshotCollection(self, snapshot)
            return view.ranked_search(query, *args, **options)

    def explain_analyze(self, query, *args,
                        epoch: Optional[int] = None, **options):
        with self._pinned(epoch) as snapshot:
            view = _SnapshotCollection(self, snapshot)
            return view.explain_analyze(query, *args, **options)

    def screen(self, policy, query, *args,
               epoch: Optional[int] = None, **options):
        with self._pinned(epoch) as snapshot:
            view = _SnapshotCollection(self, snapshot)
            return view.screen(policy, query, *args, **options)

    # ------------------------------------------------------------------
    # Health / lifecycle
    # ------------------------------------------------------------------

    def shard_stats(self) -> dict:
        """JSON-ready index snapshot (served under ``/varz``)."""
        return self.mutable.stats()

    def close(self) -> None:
        """Shut the pool down and (if owned) close the index handle."""
        super().close()
        if self._owns_handle:
            self.mutable.close()

    def __repr__(self) -> str:
        return (f"MutableDocumentCollection(name={self.name!r}, "
                f"path={self.mutable.path!r}, epoch={self.epoch}, "
                f"documents={len(self)})")
