"""Multi-document collections (paper §7: "a very large collection of
XML documents").

A :class:`DocumentCollection` manages many documents with per-document
inverted indexes (built lazily, cached), evaluates one query across the
whole collection, and merges the per-document answers — optionally
ranked across documents with :class:`repro.ranking.FragmentScorer`.

Fragments never span documents: the algebra is defined within one tree,
so a collection search is a fan-out of per-document evaluations plus a
merge, exactly the shape a relational deployment of the model would
execute per ref [13].
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Union

from ..core.algebra import JoinCache
from ..core.filters import SizeAtMost
from ..core.fragment import Fragment
from ..core.query import Query, QueryResult
from ..core.strategies import Strategy, evaluate
from ..core.streaming import (TopKHeap, hit_order_key, ranked_order_key,
                              stream_evaluate)
from ..errors import BudgetExceeded, DocumentError
from ..guard.admission import AdmissionDecision, AdmissionPolicy, screen
from ..guard.budget import QueryBudget, effective_budget
from ..index.inverted import InvertedIndex
from ..obs import (DOCUMENTS_SKIPPED, FRAGMENTS_RANKED,
                   GUARD_BUDGET_EXCEEDED, NOOP, Observability,
                   STREAM_EARLY_EXITS, STREAM_ROUNDS,
                   STREAM_SCORES_SKIPPED)
from ..ranking.scoring import FragmentScorer, ScoredFragment
from ..xmltree.document import Document
from ..xmltree.parser import parse, parse_file

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.evaluator import PlanAnalysis

__all__ = ["DocumentCollection", "CollectionResult", "CollectionHit"]


@dataclass(frozen=True)
class CollectionHit:
    """One answer fragment with its source document's name."""

    document_name: str
    fragment: Fragment

    def label(self) -> str:
        return f"{self.document_name}:{self.fragment.label()}"


@dataclass(frozen=True)
class CollectionResult:
    """Merged outcome of evaluating a query over a collection."""

    query: Query
    per_document: dict[str, QueryResult]

    @property
    def hits(self) -> list[CollectionHit]:
        """Every answer across the collection, smallest first."""
        all_hits = [CollectionHit(name, fragment)
                    for name, result in self.per_document.items()
                    for fragment in result.fragments]
        all_hits.sort(key=lambda h: (h.fragment.size, h.document_name,
                                     sorted(h.fragment.nodes)))
        return all_hits

    def __len__(self) -> int:
        return sum(len(r.fragments) for r in self.per_document.values())

    @property
    def matched_documents(self) -> list[str]:
        """Names of documents contributing at least one answer."""
        return sorted(name for name, r in self.per_document.items()
                      if r.fragments)

    @property
    def total_elapsed(self) -> float:
        """Summed per-document evaluation time in seconds."""
        return sum(r.elapsed for r in self.per_document.values())


class DocumentCollection:
    """An ordered set of named documents, searchable as one corpus."""

    def __init__(self, name: str = "collection") -> None:
        self.name = name
        self._documents: dict[str, Document] = {}
        self._indexes: dict[str, InvertedIndex] = {}
        self._cache = JoinCache()
        self._scorers: dict[str, FragmentScorer] = {}
        self._executor = None  # cached repro.exec.ParallelExecutor
        self._executor_workers: Optional[int] = None
        # Guards mutation of the shared caches above against concurrent
        # searches: add() swaps/invalidate them under this lock, and the
        # lazy get-or-create paths (index / scorer / executor) take it
        # so a reader mid-search never observes a half-built entry.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def add(self, document: Document,
            name: Optional[str] = None) -> str:
        """Add a document; returns the name it is registered under.

        Raises
        ------
        DocumentError
            If the name is already taken.
        """
        key = name if name is not None else document.name
        with self._lock:
            if key in self._documents:
                raise DocumentError(f"collection already contains a "
                                    f"document named {key!r}")
            # Copy-on-write: searches running concurrently iterate the
            # mapping they started with; swapping a new dict in (rather
            # than mutating in place) keeps their view stable.
            documents = dict(self._documents)
            documents[key] = document
            self._documents = documents
            # Derived state is now stale: any pooled executor holds a
            # snapshot of the old corpus, and cached scorers must not
            # outlive corpus changes.
            self._scorers = {}
            self._shutdown_executor()
        return key

    def _shutdown_executor(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown()
                self._executor = None
                self._executor_workers = None

    def close(self) -> None:
        """Release pooled resources (the lazy parallel executor).

        Safe to call repeatedly; the collection remains usable and
        recreates the pool on the next ``workers=`` search.
        """
        self._shutdown_executor()

    def __enter__(self) -> "DocumentCollection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def add_xml(self, xml_text: str, name: str) -> str:
        """Parse and add an XML string."""
        return self.add(parse(xml_text, name=name))

    @classmethod
    def from_directory(cls, path: Union[str, "os.PathLike[str]"],
                       pattern: str = ".xml",
                       name: Optional[str] = None,
                       on_error=None) -> "DocumentCollection":
        """Load every ``*.xml`` file of a directory into a collection.

        ``on_error`` controls what happens when one file is malformed
        or unreadable: ``None`` (default) re-raises, aborting the load;
        a callable receives ``(path, exception)`` and the file is
        skipped, so one corrupt document cannot take down a whole
        corpus run.
        """
        base = os.fspath(path)
        collection = cls(name=name if name is not None
                         else os.path.basename(base) or "collection")
        for entry in sorted(os.listdir(base)):
            if entry.endswith(pattern):
                full = os.path.join(base, entry)
                try:
                    collection.add(parse_file(full))
                except (DocumentError, OSError) as exc:
                    if on_error is None:
                        raise
                    on_error(full, exc)
        return collection

    @classmethod
    def open_index(cls, path: Union[str, "os.PathLike[str]"],
                   **options) -> "DocumentCollection":
        """Open a persistent shard index built by ``repro.storage.shards``.

        Returns a read-only :class:`ShardedDocumentCollection` that
        serves the same search API over ``mmap``-attached shard files:
        documents materialise lazily on first match, the index early
        exit probes the mapped postings without decoding, and
        ``workers=`` searches route through a scatter-gather
        :class:`~repro.storage.shards.ShardRouter` with per-shard
        circuit breakers.  ``options`` are forwarded to the
        ``ShardedDocumentCollection`` constructor.
        """
        from .sharded import ShardedDocumentCollection
        return ShardedDocumentCollection(path, **options)

    @classmethod
    def open_mutable(cls, path: Union[str, "os.PathLike[str]"],
                     **options) -> "DocumentCollection":
        """Open a crash-safe *writable* index (``repro.storage.mutation``).

        Returns a :class:`MutableDocumentCollection`: ``add``/``remove``
        are WAL-durable and epoch-committed, every search runs against
        one epoch-pinned snapshot, and ``workers=`` pools survive
        commits (workers re-attach epochs on demand).  ``options`` are
        forwarded to the ``MutableDocumentCollection`` constructor.
        """
        from .mutable import MutableDocumentCollection
        return MutableDocumentCollection(path, **options)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, name: str) -> bool:
        return name in self._documents

    def __iter__(self) -> Iterator[str]:
        return iter(self._documents)

    def document(self, name: str) -> Document:
        """The document registered under ``name`` (KeyError if absent)."""
        return self._documents[name]

    def names(self) -> list[str]:
        """Registered document names, in insertion order."""
        return list(self._documents)

    def index(self, name: str) -> InvertedIndex:
        """The (lazily built, cached) inverted index of one document."""
        index = self._indexes.get(name)
        if index is None:
            # Build outside any lock (it walks the whole document);
            # publish under it so concurrent builders agree on one
            # winner and readers never see a half-inserted entry.
            index = InvertedIndex(self._documents[name])
            with self._lock:
                index = self._indexes.setdefault(name, index)
        return index

    def has_terms(self, name: str, terms: Iterable[str]) -> bool:
        """Early-exit probe: does the document contain every term?

        The serial search paths consult this before materialising any
        evaluation state.  Subclasses backed by an on-disk index
        override it with a probe that avoids decoding the document at
        all (see ``ShardedDocumentCollection``).
        """
        index = self.index(name)
        return all(index.contains(term) for term in terms)

    def _shard_of(self, name: str) -> Optional[int]:
        """Shard number of a document, for profile attribution.

        ``None`` for in-memory collections; sharded collections return
        the owning shard so serial-path query profiles carry the same
        ``shard`` field the pooled scatter-gather path records.
        """
        return None

    @property
    def total_nodes(self) -> int:
        """Node count summed over all documents."""
        return sum(d.size for d in self._documents.values())

    def document_frequency(self, term: str) -> int:
        """Number of *documents* containing ``term`` somewhere."""
        needle = term.casefold()
        return sum(1 for name in self._documents
                   if self.index(name).contains(needle))

    def vocabulary(self) -> frozenset[str]:
        """Union of all documents' vocabularies."""
        vocab: set[str] = set()
        for name in self._documents:
            vocab |= self.index(name).vocabulary()
        return frozenset(vocab)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _parallel_executor(self, workers: int):
        """The cached :class:`repro.exec.ParallelExecutor` for ``workers``.

        Rebuilt when the requested pool size changes; invalidated by
        :meth:`add` (the pool snapshots the corpus at creation).
        """
        from ..exec.parallel import ParallelExecutor
        with self._lock:
            if self._executor is None \
                    or self._executor_workers != workers:
                self._shutdown_executor()
                self._executor = ParallelExecutor(self._documents,
                                                  workers=workers)
                self._executor_workers = workers
            return self._executor

    def screen(self, policy: AdmissionPolicy, query: Query,
               strategy: Strategy = Strategy.PUSHDOWN,
               documents: Optional[Iterable[str]] = None
               ) -> AdmissionDecision:
        """Pre-admission cost screen of ``query`` over this collection.

        Estimates the plan cost of the requested strategy summed over
        the (subset of) the collection with each document's inverted
        index, and returns the :class:`~repro.guard.AdmissionDecision`
        — admit, downgrade to the policy's cheaper strategy, or
        reject.  No evaluation work runs.
        """
        targets = (list(documents) if documents is not None
                   else self.names())
        docs = [self._documents[name] for name in targets]
        indexes = {id(self._documents[name]): self.index(name)
                   for name in targets}
        return screen(policy, query, strategy, docs,
                      index_for=lambda d: indexes.get(id(d)))

    def _count_budget_exceeded(self, ob: Observability) -> None:
        if ob.enabled:
            ob.metrics.counter(
                GUARD_BUDGET_EXCEEDED,
                "Queries aborted by a spent QueryBudget.").inc()

    def search(self, query: Query,
               strategy: Strategy = Strategy.PUSHDOWN,
               documents: Optional[Iterable[str]] = None,
               obs: Optional[Observability] = None,
               workers: Optional[int] = None,
               kernel: Optional[str] = None,
               resilience=None, faults=None,
               budget: Optional[QueryBudget] = None,
               deadline_ms: Optional[float] = None,
               admission: Optional[AdmissionPolicy] = None,
               limit: Optional[int] = None,
               stream: bool = False):
        """Evaluate ``query`` over (a subset of) the collection.

        Documents whose indexes show a missing query term are skipped
        without evaluation — the collection-level analogue of the
        conjunctive early exit.  With an enabled ``obs`` handle the
        fan-out is wrapped in a ``collection-search`` span (one
        ``execute`` child span per evaluated document) and skipped
        documents are counted in ``repro_documents_skipped_total``.

        ``workers=N`` fans the per-document evaluations out over a
        process pool (:mod:`repro.exec`) with results guaranteed
        identical to the serial path; ``None`` stays in-process.
        ``kernel`` selects the join kernel (``"bitset"`` for the
        integer-arithmetic fast path) in either mode.  ``resilience``
        (a :class:`~repro.exec.resilience.RetryPolicy`) and ``faults``
        (a :class:`~repro.exec.faults.FaultPlan`) tune the pooled
        path's fault tolerance; both are ignored without ``workers``.

        Guard rails: ``budget`` (a :class:`~repro.guard.QueryBudget`)
        and/or ``deadline_ms`` bound the whole search — the deadline is
        end-to-end and join-operation charges accumulate across
        documents (and propagate into pool workers on the parallel
        path).  A spent budget aborts with
        :class:`~repro.errors.BudgetExceeded` and increments
        ``repro_guard_budget_exceeded_total``.  ``admission`` runs the
        pre-admission cost screen first: the query is rejected
        (:class:`~repro.errors.AdmissionRejected`) or transparently
        downgraded to the policy's cheaper strategy before any
        evaluation work.

        Streaming: ``stream=True`` returns an *iterator* of
        :class:`CollectionHit` in the exact order ``CollectionResult.hits``
        would produce, materialised incrementally via adaptive β rounds
        (:mod:`repro.core.streaming`) — abandon the iterator to stop the
        evaluation.  ``limit=N`` (with or without ``stream``) bounds the
        result to the first ``N`` hits of that order and bounds the
        evaluation work accordingly; without ``stream`` it returns the
        list directly.  Both compose with every other option, including
        ``workers=`` (rounds fan out through the pool with an early-stop
        :class:`~repro.exec.hints.ChunkHint` once the candidate heap
        saturates).
        """
        ob = obs if obs is not None else NOOP
        budget = effective_budget(budget, deadline_ms)
        if admission is not None:
            decision = self.screen(admission, query, strategy,
                                   documents=documents)
            decision.raise_if_rejected()
            strategy = decision.strategy
        if budget is not None:
            budget.start()
        if limit is not None:
            if isinstance(limit, bool) or not isinstance(limit, int):
                raise ValueError(f"limit must be an int >= 1, "
                                 f"got {limit!r}")
            if limit < 1:
                raise ValueError(f"limit must be >= 1, got {limit}")
        if stream or limit is not None:
            hits = self._stream_hits(query, strategy=strategy,
                                     documents=documents, ob=ob,
                                     workers=workers, kernel=kernel,
                                     resilience=resilience, faults=faults,
                                     budget=budget, limit=limit)
            return hits if stream else list(hits)
        if workers is not None:
            # Worker deltas already carry the per-worker JoinCache memo
            # totals; exporting the parent's (unused) cache here would
            # overwrite the merged gauges with zeros.
            try:
                return self._parallel_executor(workers).search(
                    query, strategy=strategy, documents=documents,
                    kernel=kernel, obs=ob, resilience=resilience,
                    faults=faults, budget=budget)
            except BudgetExceeded:
                self._count_budget_exceeded(ob)
                raise
        targets = (list(documents) if documents is not None
                   else self.names())
        per_document: dict[str, QueryResult] = {}
        recorder = (getattr(ob, "recorder", None) if ob.enabled
                    else None)
        with ob.span("collection-search", collection=self.name,
                     documents=len(targets)) as span:
            skipped = 0
            try:
                for name in targets:
                    if not self.has_terms(name, query.terms):
                        skipped += 1
                        continue
                    if recorder is not None:
                        recorder.set_context(shard=self._shard_of(name))
                    per_document[name] = evaluate(
                        self._documents[name], query, strategy=strategy,
                        index=self.index(name), cache=self._cache,
                        obs=ob, kernel=kernel, budget=budget)
            except BudgetExceeded:
                self._count_budget_exceeded(ob)
                raise
            finally:
                if recorder is not None:
                    recorder.set_context(shard=None)
            if ob.enabled:
                span.set(evaluated=len(per_document), skipped=skipped)
                ob.metrics.counter(
                    DOCUMENTS_SKIPPED,
                    "Documents skipped by the index early exit."
                ).inc(skipped)
                self._cache.export_metrics(ob.metrics)
                if getattr(ob, "recorder", None) is not None:
                    # The gauge is a ratio, so it is recomputed here
                    # (and at merge/export time) rather than bumped in
                    # the per-query hot path.
                    ob.recorder.publish_calibration(ob.metrics)
        return CollectionResult(query=query, per_document=per_document)

    def _stream_hits(self, query: Query, strategy: Strategy,
                     documents: Optional[Iterable[str]],
                     ob: Observability, workers: Optional[int],
                     kernel: Optional[str], resilience, faults,
                     budget: Optional[QueryBudget],
                     limit: Optional[int],
                     initial_beta: int = 4
                     ) -> Iterator[CollectionHit]:
        """Generator behind ``search(stream=True / limit=)``.

        Adaptive β rounds: round *r* evaluates every live document under
        ``size <= β_r`` (anti-monotonic, so pushed below the joins —
        Theorem 3 guarantees the round holds *exactly* the answers of
        size ≤ β_r), emits the hits with ``β_{r-1} < size ≤ β_r`` in
        canonical :func:`~repro.core.streaming.hit_order_key` order —
        which, size being the primary key, extends the global order —
        then doubles β.  Everything yielded is final, so hitting
        ``limit`` (or the consumer walking away) stops the search with
        work bounded by the last β instead of the answer-set size.  A
        shared budget spans all rounds (its deadline is absolute); a
        mid-round :class:`~repro.errors.BudgetExceeded` propagates
        *between* emissions, so consumers always hold a consistent
        prefix of the full hit list.
        """
        targets = (list(documents) if documents is not None
                   else self.names())
        if workers is not None:
            yield from self._stream_hits_parallel(
                query, strategy, targets, ob, workers, kernel,
                resilience, faults, budget, limit, initial_beta)
            return
        live = []
        skipped = 0
        for name in targets:
            if self.has_terms(name, query.terms):
                live.append(name)
            else:
                skipped += 1
        if ob.enabled and skipped:
            ob.metrics.counter(
                DOCUMENTS_SKIPPED,
                "Documents skipped by the index early exit."
            ).inc(skipped)
        if not live:
            return
        max_size = max(self.document(name).size for name in live)
        recorder = (getattr(ob, "recorder", None) if ob.enabled
                    else None)
        beta = min(initial_beta, max_size)
        prev_beta = 0
        emitted = 0
        rounds = 0
        try:
            while True:
                rounds += 1
                round_hits: list[CollectionHit] = []
                for name in live:
                    if recorder is not None:
                        recorder.set_context(shard=self._shard_of(name))
                    for fragment in stream_evaluate(
                            self.document(name), query, strategy,
                            index=self.index(name), cache=self._cache,
                            kernel=kernel, obs=ob, budget=budget,
                            extra_predicate=SizeAtMost(beta)):
                        if fragment.size > prev_beta:
                            round_hits.append(CollectionHit(name, fragment))
                round_hits.sort(key=lambda h: hit_order_key(
                    h.document_name, h.fragment))
                for hit in round_hits:
                    yield hit
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        if ob.enabled and beta < max_size:
                            ob.metrics.counter(
                                STREAM_EARLY_EXITS,
                                "Streaming evaluations stopped before "
                                "the full answer set existed.",
                                labels={"stage": "limit"}).inc()
                        return
                if beta >= max_size:
                    return
                prev_beta, beta = beta, min(beta * 2, max_size)
        except BudgetExceeded:
            self._count_budget_exceeded(ob)
            raise
        finally:
            if recorder is not None:
                recorder.set_context(shard=None)
            if ob.enabled:
                ob.metrics.counter(
                    STREAM_ROUNDS,
                    "Adaptive β rounds run by streaming top-k."
                ).inc(rounds)
                self._cache.export_metrics(ob.metrics)

    def _stream_hits_parallel(self, query: Query, strategy: Strategy,
                              targets: list[str], ob: Observability,
                              workers: int, kernel: Optional[str],
                              resilience, faults,
                              budget: Optional[QueryBudget],
                              limit: Optional[int],
                              initial_beta: int = 4
                              ) -> Iterator[CollectionHit]:
        """Pooled β rounds with early-stop chunk hints.

        Each round ships the size-bounded query through the (cached)
        executor.  With a ``limit``, a parent-side candidate heap
        watches raw chunk rows as they land and tightens a per-chunk
        ``SizeAtMost`` hint once it saturates: later chunks then prove
        only fragments that can still matter.  The round's reliably
        complete size region is bounded by the *tightest* filter any
        chunk ran under (filters only ever tighten), so emission stays
        bit-identical to the serial stream.
        """
        from ..exec.parallel import ParallelExecutor
        runner = self._parallel_executor(workers)
        supports_hint = (isinstance(runner, ParallelExecutor)
                         or getattr(runner, "supports_hints", False))
        max_size = max(self.document(name).size for name in targets)
        beta = min(initial_beta, max_size)
        prev_beta = 0
        emitted = 0
        rounds = 0
        try:
            while True:
                rounds += 1
                bounded = Query(query.terms,
                                query.predicate & SizeAtMost(beta))
                hint = None
                if supports_hint and limit is not None:
                    from ..exec.hints import ChunkHint
                    heap = TopKHeap(limit)

                    def _feed(rows, heap=heap):
                        changed = False
                        for name, _qi, payload in rows:
                            if not isinstance(payload, tuple):
                                continue
                            for nodes in payload[0]:
                                if heap.offer(None, (len(nodes), name,
                                                     nodes)):
                                    changed = True
                        if changed and heap.full:
                            hint.set_filter(SizeAtMost(heap.bound()[0]))

                    hint = ChunkHint(on_rows=_feed)
                if hint is not None:
                    result = runner.search(
                        bounded, strategy=strategy, documents=targets,
                        kernel=kernel, obs=ob, resilience=resilience,
                        faults=faults, budget=budget, hint=hint)
                else:
                    result = runner.search(
                        bounded, strategy=strategy, documents=targets,
                        kernel=kernel, obs=ob, resilience=resilience,
                        faults=faults, budget=budget)
                effective = beta
                if hint is not None and hint.filter is not None:
                    effective = min(beta, hint.filter.limit)
                    if ob.enabled and hint.skipped_chunks:
                        ob.metrics.counter(
                            STREAM_EARLY_EXITS,
                            "Streaming evaluations stopped before the "
                            "full answer set existed.",
                            labels={"stage": "hint"}
                        ).inc(hint.skipped_chunks)
                round_hits = [
                    CollectionHit(name, fragment)
                    for name, doc_result in result.per_document.items()
                    for fragment in doc_result.fragments
                    if prev_beta < fragment.size <= effective]
                round_hits.sort(key=lambda h: hit_order_key(
                    h.document_name, h.fragment))
                for hit in round_hits:
                    yield hit
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        if ob.enabled and beta < max_size:
                            ob.metrics.counter(
                                STREAM_EARLY_EXITS,
                                "Streaming evaluations stopped before "
                                "the full answer set existed.",
                                labels={"stage": "limit"}).inc()
                        return
                if effective >= max_size:
                    return
                # A hint-tightened round is complete only up to the
                # tightest bound; the next round re-covers from there.
                prev_beta = effective
                beta = min(max(beta * 2, effective + 1), max_size)
        except BudgetExceeded:
            self._count_budget_exceeded(ob)
            raise
        finally:
            if ob.enabled:
                ob.metrics.counter(
                    STREAM_ROUNDS,
                    "Adaptive β rounds run by streaming top-k."
                ).inc(rounds)

    def explain_analyze(self, query: Query,
                        strategy: Strategy = Strategy.PUSHDOWN,
                        documents: Optional[Iterable[str]] = None,
                        obs: Optional[Observability] = None,
                        kernel: Optional[str] = None
                        ) -> tuple[CollectionResult, "PlanAnalysis"]:
        """EXPLAIN ANALYZE over the collection — one shared plan.

        Builds the strategy's plan once, executes it against every
        document (honouring the index early exit, like :meth:`search`),
        and accumulates per-operator runtime statistics across all
        executions into a single :class:`~repro.core.PlanAnalysis`
        (``calls`` counts documents evaluated per operator).  Returns
        ``(result, analysis)``; render with
        ``explain(analysis.plan, analyze=analysis)``.
        """
        from ..core.evaluator import PlanAnalysis
        from ..core.strategies import explain_analyze, plan_for
        ob = obs if obs is not None else NOOP
        plan = plan_for(query, strategy)
        analysis = PlanAnalysis(plan)
        targets = (list(documents) if documents is not None
                   else self.names())
        per_document: dict[str, QueryResult] = {}
        with ob.span("collection-analyze", collection=self.name,
                     documents=len(targets)) as span:
            skipped = 0
            for name in targets:
                if not self.has_terms(name, query.terms):
                    skipped += 1
                    continue
                per_document[name], _ = explain_analyze(
                    self._documents[name], query, strategy=strategy,
                    index=self.index(name), cache=self._cache, obs=ob,
                    kernel=kernel, plan=plan, analysis=analysis)
            if ob.enabled:
                span.set(evaluated=len(per_document), skipped=skipped)
                ob.metrics.counter(
                    DOCUMENTS_SKIPPED,
                    "Documents skipped by the index early exit."
                ).inc(skipped)
                self._cache.export_metrics(ob.metrics)
        return (CollectionResult(query=query, per_document=per_document),
                analysis)

    def scorer(self, name: str) -> FragmentScorer:
        """The (cached) :class:`FragmentScorer` of one document.

        Built once per document and reused across ranked searches —
        cleared by :meth:`add`, since corpus changes may accompany
        re-indexing.  Observability is passed per :meth:`rank` call, so
        the cache is independent of ``obs`` handles.
        """
        scorer = self._scorers.get(name)
        if scorer is None:
            scorer = FragmentScorer(self.index(name))
            with self._lock:
                scorer = self._scorers.setdefault(name, scorer)
        return scorer

    def ranked_search(self, query: Query, limit: int = 10,
                      strategy: Strategy = Strategy.PUSHDOWN,
                      obs: Optional[Observability] = None,
                      workers: Optional[int] = None,
                      kernel: Optional[str] = None,
                      resilience=None, faults=None,
                      budget: Optional[QueryBudget] = None,
                      deadline_ms: Optional[float] = None,
                      admission: Optional[AdmissionPolicy] = None,
                      stream: bool = False
                      ) -> list[tuple[str, ScoredFragment]]:
        """Search and rank answers across documents, best first.

        Scores are comparable across documents because every signal is
        normalised to [0, 1] per document.  Ranking always happens in
        the parent process, over the (possibly pool-computed) merged
        answer set, so ``workers=N`` cannot perturb the ordering —
        and the pooled path's fault tolerance (``resilience``,
        ``faults``) cannot either.  ``budget``/``deadline_ms``/
        ``admission`` guard the underlying :meth:`search` (ranking
        itself is linear in the answer count and runs unguarded).

        Scoring work is bounded by ``limit``: candidates are folded
        into a ``limit``-sized heap under the canonical
        :func:`~repro.core.streaming.ranked_order_key`, and a fragment
        whose cheap score upper bound
        (:meth:`~repro.ranking.FragmentScorer.score_upper_bound`)
        provably cannot enter the heap is never fully scored (counted
        in ``repro_stream_scores_skipped_total``).  ``stream=True``
        additionally bounds the *evaluation*: adaptive β rounds stop as
        soon as the k-th held score meets the anti-monotonic
        size-score threshold
        (:meth:`~repro.ranking.FragmentScorer.size_score_bound`) — no
        unseen fragment can enter the heap — instead of materialising
        the full answer set first.  Both paths return the identical
        ranked list.
        """
        ob = obs if obs is not None else NOOP
        if isinstance(limit, bool) or not isinstance(limit, int):
            raise ValueError(f"limit must be an int >= 1, got {limit!r}")
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if stream:
            return self._ranked_stream(query, limit, strategy, ob,
                                       workers, kernel, resilience,
                                       faults, budget, deadline_ms,
                                       admission)
        result = self.search(query, strategy=strategy, obs=ob,
                             workers=workers, kernel=kernel,
                             resilience=resilience, faults=faults,
                             budget=budget, deadline_ms=deadline_ms,
                             admission=admission)
        heap: TopKHeap = TopKHeap(limit)
        scored_count = 0
        cheap_skips = 0
        with ob.span("rank", fragments=len(result)):
            for name, doc_result in result.per_document.items():
                scorer = self.scorer(name)
                for fragment in doc_result.fragments:
                    bound = heap.bound()
                    if bound is not None and \
                            -scorer.score_upper_bound(fragment) > bound[0]:
                        cheap_skips += 1
                        continue
                    scored = scorer.score(fragment, query.terms)
                    scored_count += 1
                    heap.offer((name, scored),
                               ranked_order_key(name, scored.score,
                                                scored.fragment))
            if ob.enabled:
                ob.metrics.counter(
                    FRAGMENTS_RANKED, "Fragments scored by the ranker."
                ).inc(scored_count)
                if cheap_skips:
                    ob.metrics.counter(
                        STREAM_SCORES_SKIPPED,
                        "Fragments skipped by the cheap score upper "
                        "bound.").inc(cheap_skips)
        return heap.items_sorted()

    def _ranked_stream(self, query: Query, limit: int,
                       strategy: Strategy, ob: Observability,
                       workers: Optional[int], kernel: Optional[str],
                       resilience, faults,
                       budget: Optional[QueryBudget],
                       deadline_ms: Optional[float],
                       admission: Optional[AdmissionPolicy],
                       initial_beta: int = 4
                       ) -> list[tuple[str, ScoredFragment]]:
        """Ranked top-k with threshold early termination over β rounds.

        Round *r* evaluates under ``size <= β_r`` and scores only the
        round's *new* fragments (``size > β_{r-1}``).  Every unseen
        fragment has size ≥ β_r + 1, so its score is at most
        ``max_d size_score_bound(β_r + 1)`` over the live documents'
        scorers; once the heap is full and its k-th score meets that
        threshold, no unseen fragment can displace anything — ties are
        safe because equal scores break by smaller size and every
        unseen fragment is strictly larger than every held one.
        """
        budget = effective_budget(budget, deadline_ms)
        if admission is not None:
            decision = self.screen(admission, query, strategy)
            decision.raise_if_rejected()
            strategy = decision.strategy
        if budget is not None:
            budget.start()
        live = [name for name in self.names()
                if self.has_terms(name, query.terms)]
        if not live:
            return []
        max_size = max(self.document(name).size for name in live)
        heap: TopKHeap = TopKHeap(limit)
        beta = min(initial_beta, max_size)
        prev_beta = 0
        rounds = 0
        scored_count = 0
        cheap_skips = 0
        while True:
            rounds += 1
            bounded = Query(query.terms,
                            query.predicate & SizeAtMost(beta))
            result = self.search(bounded, strategy=strategy,
                                 documents=live, obs=ob,
                                 workers=workers, kernel=kernel,
                                 resilience=resilience, faults=faults,
                                 budget=budget)
            for name, doc_result in result.per_document.items():
                scorer = self.scorer(name)
                for fragment in doc_result.fragments:
                    if fragment.size <= prev_beta:
                        continue
                    bound = heap.bound()
                    if bound is not None and \
                            -scorer.score_upper_bound(fragment) > bound[0]:
                        cheap_skips += 1
                        continue
                    scored = scorer.score(fragment, query.terms)
                    scored_count += 1
                    heap.offer((name, scored),
                               ranked_order_key(name, scored.score,
                                                scored.fragment))
            if beta >= max_size:
                break
            bound = heap.bound()
            if bound is not None:
                threshold = max(self.scorer(name).size_score_bound(beta + 1)
                                for name in live)
                if -bound[0] >= threshold:
                    if ob.enabled:
                        ob.metrics.counter(
                            STREAM_EARLY_EXITS,
                            "Streaming evaluations stopped before the "
                            "full answer set existed.",
                            labels={"stage": "threshold"}).inc()
                    break
            prev_beta, beta = beta, min(beta * 2, max_size)
        if ob.enabled:
            ob.metrics.counter(
                STREAM_ROUNDS,
                "Adaptive β rounds run by streaming top-k."
            ).inc(rounds)
            ob.metrics.counter(
                FRAGMENTS_RANKED, "Fragments scored by the ranker."
            ).inc(scored_count)
            if cheap_skips:
                ob.metrics.counter(
                    STREAM_SCORES_SKIPPED,
                    "Fragments skipped by the cheap score upper bound."
                ).inc(cheap_skips)
        return heap.items_sorted()

    def __repr__(self) -> str:
        return (f"DocumentCollection(name={self.name!r}, "
                f"documents={len(self)}, nodes={self.total_nodes})")
