"""Multi-document collections (paper §7: "a very large collection of
XML documents").

A :class:`DocumentCollection` manages many documents with per-document
inverted indexes (built lazily, cached), evaluates one query across the
whole collection, and merges the per-document answers — optionally
ranked across documents with :class:`repro.ranking.FragmentScorer`.

Fragments never span documents: the algebra is defined within one tree,
so a collection search is a fan-out of per-document evaluations plus a
merge, exactly the shape a relational deployment of the model would
execute per ref [13].
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Union

from ..core.algebra import JoinCache
from ..core.fragment import Fragment
from ..core.query import Query, QueryResult
from ..core.strategies import Strategy, evaluate
from ..errors import BudgetExceeded, DocumentError
from ..guard.admission import AdmissionDecision, AdmissionPolicy, screen
from ..guard.budget import QueryBudget, effective_budget
from ..index.inverted import InvertedIndex
from ..obs import (DOCUMENTS_SKIPPED, GUARD_BUDGET_EXCEEDED, NOOP,
                   Observability)
from ..ranking.scoring import FragmentScorer, ScoredFragment
from ..xmltree.document import Document
from ..xmltree.parser import parse, parse_file

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.evaluator import PlanAnalysis

__all__ = ["DocumentCollection", "CollectionResult", "CollectionHit"]


@dataclass(frozen=True)
class CollectionHit:
    """One answer fragment with its source document's name."""

    document_name: str
    fragment: Fragment

    def label(self) -> str:
        return f"{self.document_name}:{self.fragment.label()}"


@dataclass(frozen=True)
class CollectionResult:
    """Merged outcome of evaluating a query over a collection."""

    query: Query
    per_document: dict[str, QueryResult]

    @property
    def hits(self) -> list[CollectionHit]:
        """Every answer across the collection, smallest first."""
        all_hits = [CollectionHit(name, fragment)
                    for name, result in self.per_document.items()
                    for fragment in result.fragments]
        all_hits.sort(key=lambda h: (h.fragment.size, h.document_name,
                                     sorted(h.fragment.nodes)))
        return all_hits

    def __len__(self) -> int:
        return sum(len(r.fragments) for r in self.per_document.values())

    @property
    def matched_documents(self) -> list[str]:
        """Names of documents contributing at least one answer."""
        return sorted(name for name, r in self.per_document.items()
                      if r.fragments)

    @property
    def total_elapsed(self) -> float:
        """Summed per-document evaluation time in seconds."""
        return sum(r.elapsed for r in self.per_document.values())


class DocumentCollection:
    """An ordered set of named documents, searchable as one corpus."""

    def __init__(self, name: str = "collection") -> None:
        self.name = name
        self._documents: dict[str, Document] = {}
        self._indexes: dict[str, InvertedIndex] = {}
        self._cache = JoinCache()
        self._scorers: dict[str, FragmentScorer] = {}
        self._executor = None  # cached repro.exec.ParallelExecutor
        self._executor_workers: Optional[int] = None

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def add(self, document: Document,
            name: Optional[str] = None) -> str:
        """Add a document; returns the name it is registered under.

        Raises
        ------
        DocumentError
            If the name is already taken.
        """
        key = name if name is not None else document.name
        if key in self._documents:
            raise DocumentError(f"collection already contains a "
                                f"document named {key!r}")
        self._documents[key] = document
        # Derived state is now stale: any pooled executor holds a
        # snapshot of the old corpus, and cached scorers must not
        # outlive corpus changes.
        self._scorers.clear()
        self._shutdown_executor()
        return key

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._executor_workers = None

    def close(self) -> None:
        """Release pooled resources (the lazy parallel executor).

        Safe to call repeatedly; the collection remains usable and
        recreates the pool on the next ``workers=`` search.
        """
        self._shutdown_executor()

    def __enter__(self) -> "DocumentCollection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def add_xml(self, xml_text: str, name: str) -> str:
        """Parse and add an XML string."""
        return self.add(parse(xml_text, name=name))

    @classmethod
    def from_directory(cls, path: Union[str, "os.PathLike[str]"],
                       pattern: str = ".xml",
                       name: Optional[str] = None,
                       on_error=None) -> "DocumentCollection":
        """Load every ``*.xml`` file of a directory into a collection.

        ``on_error`` controls what happens when one file is malformed
        or unreadable: ``None`` (default) re-raises, aborting the load;
        a callable receives ``(path, exception)`` and the file is
        skipped, so one corrupt document cannot take down a whole
        corpus run.
        """
        base = os.fspath(path)
        collection = cls(name=name if name is not None
                         else os.path.basename(base) or "collection")
        for entry in sorted(os.listdir(base)):
            if entry.endswith(pattern):
                full = os.path.join(base, entry)
                try:
                    collection.add(parse_file(full))
                except (DocumentError, OSError) as exc:
                    if on_error is None:
                        raise
                    on_error(full, exc)
        return collection

    @classmethod
    def open_index(cls, path: Union[str, "os.PathLike[str]"],
                   **options) -> "DocumentCollection":
        """Open a persistent shard index built by ``repro.storage.shards``.

        Returns a read-only :class:`ShardedDocumentCollection` that
        serves the same search API over ``mmap``-attached shard files:
        documents materialise lazily on first match, the index early
        exit probes the mapped postings without decoding, and
        ``workers=`` searches route through a scatter-gather
        :class:`~repro.storage.shards.ShardRouter` with per-shard
        circuit breakers.  ``options`` are forwarded to the
        ``ShardedDocumentCollection`` constructor.
        """
        from .sharded import ShardedDocumentCollection
        return ShardedDocumentCollection(path, **options)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, name: str) -> bool:
        return name in self._documents

    def __iter__(self) -> Iterator[str]:
        return iter(self._documents)

    def document(self, name: str) -> Document:
        """The document registered under ``name`` (KeyError if absent)."""
        return self._documents[name]

    def names(self) -> list[str]:
        """Registered document names, in insertion order."""
        return list(self._documents)

    def index(self, name: str) -> InvertedIndex:
        """The (lazily built, cached) inverted index of one document."""
        if name not in self._indexes:
            self._indexes[name] = InvertedIndex(self._documents[name])
        return self._indexes[name]

    def has_terms(self, name: str, terms: Iterable[str]) -> bool:
        """Early-exit probe: does the document contain every term?

        The serial search paths consult this before materialising any
        evaluation state.  Subclasses backed by an on-disk index
        override it with a probe that avoids decoding the document at
        all (see ``ShardedDocumentCollection``).
        """
        index = self.index(name)
        return all(index.contains(term) for term in terms)

    def _shard_of(self, name: str) -> Optional[int]:
        """Shard number of a document, for profile attribution.

        ``None`` for in-memory collections; sharded collections return
        the owning shard so serial-path query profiles carry the same
        ``shard`` field the pooled scatter-gather path records.
        """
        return None

    @property
    def total_nodes(self) -> int:
        """Node count summed over all documents."""
        return sum(d.size for d in self._documents.values())

    def document_frequency(self, term: str) -> int:
        """Number of *documents* containing ``term`` somewhere."""
        needle = term.casefold()
        return sum(1 for name in self._documents
                   if self.index(name).contains(needle))

    def vocabulary(self) -> frozenset[str]:
        """Union of all documents' vocabularies."""
        vocab: set[str] = set()
        for name in self._documents:
            vocab |= self.index(name).vocabulary()
        return frozenset(vocab)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _parallel_executor(self, workers: int):
        """The cached :class:`repro.exec.ParallelExecutor` for ``workers``.

        Rebuilt when the requested pool size changes; invalidated by
        :meth:`add` (the pool snapshots the corpus at creation).
        """
        from ..exec.parallel import ParallelExecutor
        if self._executor is None or self._executor_workers != workers:
            self._shutdown_executor()
            self._executor = ParallelExecutor(self._documents,
                                              workers=workers)
            self._executor_workers = workers
        return self._executor

    def screen(self, policy: AdmissionPolicy, query: Query,
               strategy: Strategy = Strategy.PUSHDOWN,
               documents: Optional[Iterable[str]] = None
               ) -> AdmissionDecision:
        """Pre-admission cost screen of ``query`` over this collection.

        Estimates the plan cost of the requested strategy summed over
        the (subset of) the collection with each document's inverted
        index, and returns the :class:`~repro.guard.AdmissionDecision`
        — admit, downgrade to the policy's cheaper strategy, or
        reject.  No evaluation work runs.
        """
        targets = (list(documents) if documents is not None
                   else self.names())
        docs = [self._documents[name] for name in targets]
        indexes = {id(self._documents[name]): self.index(name)
                   for name in targets}
        return screen(policy, query, strategy, docs,
                      index_for=lambda d: indexes.get(id(d)))

    def _count_budget_exceeded(self, ob: Observability) -> None:
        if ob.enabled:
            ob.metrics.counter(
                GUARD_BUDGET_EXCEEDED,
                "Queries aborted by a spent QueryBudget.").inc()

    def search(self, query: Query,
               strategy: Strategy = Strategy.PUSHDOWN,
               documents: Optional[Iterable[str]] = None,
               obs: Optional[Observability] = None,
               workers: Optional[int] = None,
               kernel: Optional[str] = None,
               resilience=None, faults=None,
               budget: Optional[QueryBudget] = None,
               deadline_ms: Optional[float] = None,
               admission: Optional[AdmissionPolicy] = None
               ) -> CollectionResult:
        """Evaluate ``query`` over (a subset of) the collection.

        Documents whose indexes show a missing query term are skipped
        without evaluation — the collection-level analogue of the
        conjunctive early exit.  With an enabled ``obs`` handle the
        fan-out is wrapped in a ``collection-search`` span (one
        ``execute`` child span per evaluated document) and skipped
        documents are counted in ``repro_documents_skipped_total``.

        ``workers=N`` fans the per-document evaluations out over a
        process pool (:mod:`repro.exec`) with results guaranteed
        identical to the serial path; ``None`` stays in-process.
        ``kernel`` selects the join kernel (``"bitset"`` for the
        integer-arithmetic fast path) in either mode.  ``resilience``
        (a :class:`~repro.exec.resilience.RetryPolicy`) and ``faults``
        (a :class:`~repro.exec.faults.FaultPlan`) tune the pooled
        path's fault tolerance; both are ignored without ``workers``.

        Guard rails: ``budget`` (a :class:`~repro.guard.QueryBudget`)
        and/or ``deadline_ms`` bound the whole search — the deadline is
        end-to-end and join-operation charges accumulate across
        documents (and propagate into pool workers on the parallel
        path).  A spent budget aborts with
        :class:`~repro.errors.BudgetExceeded` and increments
        ``repro_guard_budget_exceeded_total``.  ``admission`` runs the
        pre-admission cost screen first: the query is rejected
        (:class:`~repro.errors.AdmissionRejected`) or transparently
        downgraded to the policy's cheaper strategy before any
        evaluation work.
        """
        ob = obs if obs is not None else NOOP
        budget = effective_budget(budget, deadline_ms)
        if admission is not None:
            decision = self.screen(admission, query, strategy,
                                   documents=documents)
            decision.raise_if_rejected()
            strategy = decision.strategy
        if budget is not None:
            budget.start()
        if workers is not None:
            # Worker deltas already carry the per-worker JoinCache memo
            # totals; exporting the parent's (unused) cache here would
            # overwrite the merged gauges with zeros.
            try:
                return self._parallel_executor(workers).search(
                    query, strategy=strategy, documents=documents,
                    kernel=kernel, obs=ob, resilience=resilience,
                    faults=faults, budget=budget)
            except BudgetExceeded:
                self._count_budget_exceeded(ob)
                raise
        targets = (list(documents) if documents is not None
                   else self.names())
        per_document: dict[str, QueryResult] = {}
        recorder = (getattr(ob, "recorder", None) if ob.enabled
                    else None)
        with ob.span("collection-search", collection=self.name,
                     documents=len(targets)) as span:
            skipped = 0
            try:
                for name in targets:
                    if not self.has_terms(name, query.terms):
                        skipped += 1
                        continue
                    if recorder is not None:
                        recorder.set_context(shard=self._shard_of(name))
                    per_document[name] = evaluate(
                        self._documents[name], query, strategy=strategy,
                        index=self.index(name), cache=self._cache,
                        obs=ob, kernel=kernel, budget=budget)
            except BudgetExceeded:
                self._count_budget_exceeded(ob)
                raise
            finally:
                if recorder is not None:
                    recorder.set_context(shard=None)
            if ob.enabled:
                span.set(evaluated=len(per_document), skipped=skipped)
                ob.metrics.counter(
                    DOCUMENTS_SKIPPED,
                    "Documents skipped by the index early exit."
                ).inc(skipped)
                self._cache.export_metrics(ob.metrics)
                if getattr(ob, "recorder", None) is not None:
                    # The gauge is a ratio, so it is recomputed here
                    # (and at merge/export time) rather than bumped in
                    # the per-query hot path.
                    ob.recorder.publish_calibration(ob.metrics)
        return CollectionResult(query=query, per_document=per_document)

    def explain_analyze(self, query: Query,
                        strategy: Strategy = Strategy.PUSHDOWN,
                        documents: Optional[Iterable[str]] = None,
                        obs: Optional[Observability] = None,
                        kernel: Optional[str] = None
                        ) -> tuple[CollectionResult, "PlanAnalysis"]:
        """EXPLAIN ANALYZE over the collection — one shared plan.

        Builds the strategy's plan once, executes it against every
        document (honouring the index early exit, like :meth:`search`),
        and accumulates per-operator runtime statistics across all
        executions into a single :class:`~repro.core.PlanAnalysis`
        (``calls`` counts documents evaluated per operator).  Returns
        ``(result, analysis)``; render with
        ``explain(analysis.plan, analyze=analysis)``.
        """
        from ..core.evaluator import PlanAnalysis
        from ..core.strategies import explain_analyze, plan_for
        ob = obs if obs is not None else NOOP
        plan = plan_for(query, strategy)
        analysis = PlanAnalysis(plan)
        targets = (list(documents) if documents is not None
                   else self.names())
        per_document: dict[str, QueryResult] = {}
        with ob.span("collection-analyze", collection=self.name,
                     documents=len(targets)) as span:
            skipped = 0
            for name in targets:
                if not self.has_terms(name, query.terms):
                    skipped += 1
                    continue
                per_document[name], _ = explain_analyze(
                    self._documents[name], query, strategy=strategy,
                    index=self.index(name), cache=self._cache, obs=ob,
                    kernel=kernel, plan=plan, analysis=analysis)
            if ob.enabled:
                span.set(evaluated=len(per_document), skipped=skipped)
                ob.metrics.counter(
                    DOCUMENTS_SKIPPED,
                    "Documents skipped by the index early exit."
                ).inc(skipped)
                self._cache.export_metrics(ob.metrics)
        return (CollectionResult(query=query, per_document=per_document),
                analysis)

    def scorer(self, name: str) -> FragmentScorer:
        """The (cached) :class:`FragmentScorer` of one document.

        Built once per document and reused across ranked searches —
        cleared by :meth:`add`, since corpus changes may accompany
        re-indexing.  Observability is passed per :meth:`rank` call, so
        the cache is independent of ``obs`` handles.
        """
        if name not in self._scorers:
            self._scorers[name] = FragmentScorer(self.index(name))
        return self._scorers[name]

    def ranked_search(self, query: Query, limit: int = 10,
                      strategy: Strategy = Strategy.PUSHDOWN,
                      obs: Optional[Observability] = None,
                      workers: Optional[int] = None,
                      kernel: Optional[str] = None,
                      resilience=None, faults=None,
                      budget: Optional[QueryBudget] = None,
                      deadline_ms: Optional[float] = None,
                      admission: Optional[AdmissionPolicy] = None
                      ) -> list[tuple[str, ScoredFragment]]:
        """Search and rank answers across documents, best first.

        Scores are comparable across documents because every signal is
        normalised to [0, 1] per document.  Ranking always happens in
        the parent process, over the (possibly pool-computed) merged
        answer set, so ``workers=N`` cannot perturb the ordering —
        and the pooled path's fault tolerance (``resilience``,
        ``faults``) cannot either.  ``budget``/``deadline_ms``/
        ``admission`` guard the underlying :meth:`search` (ranking
        itself is linear in the answer count and runs unguarded).
        """
        ob = obs if obs is not None else NOOP
        result = self.search(query, strategy=strategy, obs=ob,
                             workers=workers, kernel=kernel,
                             resilience=resilience, faults=faults,
                             budget=budget, deadline_ms=deadline_ms,
                             admission=admission)
        ranked: list[tuple[str, ScoredFragment]] = []
        with ob.span("rank", fragments=len(result)):
            for name, doc_result in result.per_document.items():
                scorer = self.scorer(name)
                for scored in scorer.rank(doc_result.fragments,
                                          query.terms, obs=ob):
                    ranked.append((name, scored))
            ranked.sort(key=lambda pair: (-pair[1].score,
                                          pair[1].fragment.size, pair[0]))
        return ranked[:limit]

    def __repr__(self) -> str:
        return (f"DocumentCollection(name={self.name!r}, "
                f"documents={len(self)}, nodes={self.total_nodes})")
