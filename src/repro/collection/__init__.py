"""Multi-document collections: fan-out search over many XML documents."""

from .collection import CollectionHit, CollectionResult, DocumentCollection

__all__ = ["DocumentCollection", "CollectionResult", "CollectionHit",
           "ShardedDocumentCollection", "MutableDocumentCollection"]


def __getattr__(name):
    # Lazy: the on-disk collections pull in repro.storage, which
    # in-memory users never need.
    if name == "ShardedDocumentCollection":
        from .sharded import ShardedDocumentCollection
        return ShardedDocumentCollection
    if name == "MutableDocumentCollection":
        from .mutable import MutableDocumentCollection
        return MutableDocumentCollection
    raise AttributeError(name)
