"""Multi-document collections: fan-out search over many XML documents."""

from .collection import CollectionHit, CollectionResult, DocumentCollection

__all__ = ["DocumentCollection", "CollectionResult", "CollectionHit",
           "ShardedDocumentCollection"]


def __getattr__(name):
    # Lazy: the sharded collection pulls in repro.storage.shards, which
    # in-memory users never need.
    if name == "ShardedDocumentCollection":
        from .sharded import ShardedDocumentCollection
        return ShardedDocumentCollection
    raise AttributeError(name)
