"""Multi-document collections: fan-out search over many XML documents."""

from .collection import CollectionHit, CollectionResult, DocumentCollection

__all__ = ["DocumentCollection", "CollectionResult", "CollectionHit"]
