"""A read-only :class:`DocumentCollection` over a persistent shard index.

``ShardedDocumentCollection`` serves the whole collection search API —
``search`` / ``ranked_search`` / ``explain_analyze`` / guard rails —
without holding the corpus in memory.  Documents live in ``mmap``-ed
shard files (:mod:`repro.storage.shards`); the collection:

* probes query terms against the *mapped* postings section, so the
  index early exit never decodes a non-matching document;
* materialises matching documents lazily, into a bounded LRU;
* routes ``workers=`` searches through a scatter-gather
  :class:`~repro.storage.shards.ShardRouter` (per-shard circuit
  breakers, skip-and-degrade on corrupt shards);
* stays bit-identical to an in-memory collection over the same
  documents, on every evaluation strategy.

Open one with :meth:`DocumentCollection.open_index`.  The collection is
read-only: :meth:`add` raises, because the on-disk index is immutable
once built (rebuild with ``repro-search index build`` to change it).
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping, Optional, Union

from ..errors import DocumentError
from ..index.inverted import InvertedIndex
from ..obs import NOOP, Observability
from ..storage.shards.reader import ShardIndex
from ..xmltree.document import Document
from .collection import DocumentCollection

__all__ = ["ShardedDocumentCollection"]


class _IndexDocuments(Mapping):
    """Mapping facade over a :class:`ShardIndex`: name -> Document.

    Lookups materialise lazily through the index's LRU; iteration
    yields only servable names (healthy shards), in sorted order.
    """

    __slots__ = ("_index",)

    def __init__(self, index: ShardIndex) -> None:
        self._index = index

    def __getitem__(self, name: str) -> Document:
        return self._index.document(name)

    def __iter__(self):
        return iter(self._index.names())

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, name: object) -> bool:
        return name in self._index


class ShardedDocumentCollection(DocumentCollection):
    """A collection whose corpus is a ``mmap``-attached shard index.

    Parameters
    ----------
    path:
        Index directory (from :func:`repro.storage.shards.build_index`)
        or an already-attached :class:`ShardIndex`.  Paths are attached
        with ``on_error="skip"``: a partially corrupt index serves the
        healthy shards and reports the rest (see :meth:`shard_stats`).
    cache_limit:
        Maximum materialised documents kept per attached handle.
    workers-path tuning (``start_method``, ``shared_memory``,
    ``resilience``, ``breaker_failures``, ``breaker_reset_s``) is
    forwarded to the :class:`~repro.storage.shards.ShardRouter` built
    lazily on the first ``workers=`` search.
    """

    def __init__(self, path: Union[str, "os.PathLike[str]", ShardIndex],
                 name: Optional[str] = None, *,
                 cache_limit: Optional[int] = 64,
                 obs: Optional[Observability] = None,
                 start_method: Optional[str] = None,
                 shared_memory: Optional[bool] = None,
                 resilience=None,
                 breaker_failures: int = 3,
                 breaker_reset_s: float = 30.0) -> None:
        if isinstance(path, ShardIndex):
            self.index_handle = path
            self._owns_index = False
        else:
            self.index_handle = ShardIndex.attach(
                path, on_error="skip", cache_limit=cache_limit,
                obs=obs if obs is not None else NOOP)
            self._owns_index = True
        super().__init__(name=name if name is not None else
                         os.path.basename(os.path.normpath(
                             self.index_handle.path)) or "index")
        self._documents = _IndexDocuments(self.index_handle)
        self._router_options = {
            "start_method": start_method,
            "shared_memory": shared_memory,
            "resilience": resilience,
            "breaker_failures": breaker_failures,
            "breaker_reset_s": breaker_reset_s,
        }

    # ------------------------------------------------------------------
    # Population (disabled: the on-disk index is immutable)
    # ------------------------------------------------------------------

    def add(self, document: Document,
            name: Optional[str] = None) -> str:
        raise DocumentError(
            "a sharded collection is read-only; rebuild the index "
            "('repro-search index build') to change the corpus")

    # ------------------------------------------------------------------
    # Introspection over the mapped index (no materialisation)
    # ------------------------------------------------------------------

    def index(self, name: str) -> InvertedIndex:
        """The document's inverted index, adopted from mapped postings."""
        return self.index_handle.inverted_index(name)

    def has_terms(self, name: str, terms: Iterable[str]) -> bool:
        """Early-exit probe straight against the mapped postings blob."""
        return all(self.index_handle.contains(name, term)
                   for term in terms)

    def _shard_of(self, name: str) -> Optional[int]:
        return self.index_handle.shard_of(name)

    @property
    def total_nodes(self) -> int:
        """Node count over servable documents, read from shard headers."""
        return sum(self.index_handle.node_count(name)
                   for name in self.index_handle.names())

    def document_frequency(self, term: str) -> int:
        needle = term.casefold()
        return sum(1 for name in self.index_handle.names()
                   if self.index_handle.contains(name, needle))

    # ------------------------------------------------------------------
    # Parallel path: route through the shard router
    # ------------------------------------------------------------------

    def _parallel_executor(self, workers: int):
        """A (cached) :class:`ShardRouter` instead of a plain executor.

        The router shares this collection's attached index handle, so
        parent-side serial fallbacks reuse the same mapped bytes and
        document LRU.
        """
        from ..storage.shards.router import ShardRouter
        with self._lock:
            if self._executor is None \
                    or self._executor_workers != workers:
                self._shutdown_executor()
                self._executor = ShardRouter(self.index_handle,
                                             workers=workers,
                                             **self._router_options)
                self._executor_workers = workers
            return self._executor

    @property
    def router(self):
        """The live :class:`ShardRouter`, or ``None`` before the first
        ``workers=`` search."""
        return self._executor

    # ------------------------------------------------------------------
    # Health / lifecycle
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when shards failed to attach or routing is degraded."""
        if self.index_handle.degraded:
            return True
        return bool(self._executor is not None
                    and self._executor.degraded)

    def shard_stats(self) -> dict:
        """JSON-ready shard health snapshot (served under ``/varz``)."""
        if self._executor is not None:
            return self._executor.stats()
        return {"index": self.index_handle.stats(), "breakers": {},
                "history": {}, "last_run": None,
                "degraded": self.index_handle.degraded}

    def close(self) -> None:
        """Shut the router down and detach owned shard handles."""
        super().close()
        if self._owns_index:
            self.index_handle.close()

    def __repr__(self) -> str:
        return (f"ShardedDocumentCollection(name={self.name!r}, "
                f"path={self.index_handle.path!r}, "
                f"documents={len(self)}, "
                f"shards={self.index_handle.shards})")
